#include "hypothesis/grammar_hypotheses.h"

namespace deepbase {

namespace {
// Strips the trailing padding ("~") appended by Dataset::Add; grammar text
// never contains the pad token.
std::string UnpaddedText(const Record& rec) {
  std::string text = rec.Text();
  size_t end = text.size();
  while (end > 0 && text[end - 1] == '~') --end;
  return text.substr(0, end);
}
}  // namespace

const ParseTree* ParseCache::Get(const std::string& text) {
  // Parsing runs under the lock: concurrent callers for one text parse it
  // once, and EarleyParser keeps per-parse scratch that must not be
  // shared. Trees are immutable after insertion, so the returned pointer
  // outlives the lock.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(text);
  if (it != cache_.end()) return it->second.get();
  ++parse_calls_;
  Result<ParseTree> parsed = parser_.Parse(text);
  std::unique_ptr<ParseTree> tree;
  if (parsed.ok()) {
    tree = std::make_unique<ParseTree>(std::move(parsed).ValueOrDie());
  }
  const ParseTree* out = tree.get();
  cache_.emplace(text, std::move(tree));
  return out;
}

size_t ParseCache::parse_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parse_calls_;
}

void ParseCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

GrammarRuleHypothesis::GrammarRuleHypothesis(
    const Cfg* cfg, std::shared_ptr<ParseCache> cache, SymbolId symbol,
    GrammarHypothesisMode mode)
    : HypothesisFn(
          cfg->Name(symbol) +
          (mode == GrammarHypothesisMode::kTimeDomain
               ? ":time"
               : mode == GrammarHypothesisMode::kSignal ? ":signal"
                                                        : ":depth")),
      cfg_(cfg),
      cache_(std::move(cache)),
      symbol_(symbol),
      mode_(mode) {}

std::vector<float> GrammarRuleHypothesis::Eval(const Record& rec) const {
  std::vector<float> out(rec.size(), 0.0f);
  const std::string text = UnpaddedText(rec);
  if (text.empty()) return out;
  const ParseTree* tree = cache_->Get(text);
  if (tree == nullptr) return out;  // unparseable: inactive everywhere
  for (const auto& [begin, end] : tree->SpansOf(symbol_)) {
    if (begin >= end) continue;
    switch (mode_) {
      case GrammarHypothesisMode::kTimeDomain:
        for (size_t i = begin; i < end && i < out.size(); ++i) out[i] = 1.0f;
        break;
      case GrammarHypothesisMode::kSignal:
        if (begin < out.size()) out[begin] = 1.0f;
        if (end - 1 < out.size()) out[end - 1] = 1.0f;
        break;
      case GrammarHypothesisMode::kDepth:
        for (size_t i = begin; i < end && i < out.size(); ++i) out[i] += 1.0f;
        break;
    }
  }
  return out;
}

std::vector<HypothesisPtr> MakeGrammarHypotheses(const Cfg* cfg) {
  auto cache = std::make_shared<ParseCache>(cfg);
  std::vector<HypothesisPtr> out;
  for (SymbolId nt : cfg->Nonterminals()) {
    out.push_back(std::make_shared<GrammarRuleHypothesis>(
        cfg, cache, nt, GrammarHypothesisMode::kTimeDomain));
    out.push_back(std::make_shared<GrammarRuleHypothesis>(
        cfg, cache, nt, GrammarHypothesisMode::kSignal));
  }
  return out;
}

std::vector<HypothesisPtr> MakeTimeDomainHypotheses(const Cfg* cfg) {
  auto cache = std::make_shared<ParseCache>(cfg);
  std::vector<HypothesisPtr> out;
  for (SymbolId nt : cfg->Nonterminals()) {
    out.push_back(std::make_shared<GrammarRuleHypothesis>(
        cfg, cache, nt, GrammarHypothesisMode::kTimeDomain));
  }
  return out;
}

}  // namespace deepbase
