// Finite-state-machine hypotheses (paper §4.2): an FSM consumes one input
// symbol per transition; wrapping it as a hypothesis function emits the
// current state (or a one-hot per state) after reading each symbol.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hypothesis/hypothesis.h"

namespace deepbase {

/// \brief A deterministic finite automaton over characters.
///
/// Transitions default to state 0 unless overridden; this makes keyword
/// matchers easy to express (KMP-style failure to the start state is
/// approximated by reset-to-0, which is exact for keywords with no
/// self-overlap — true of SQL keywords).
class Dfa {
 public:
  explicit Dfa(int num_states) : transitions_(num_states) {}

  int num_states() const { return static_cast<int>(transitions_.size()); }

  void AddTransition(int from, char symbol, int to) {
    transitions_[from][symbol] = to;
  }

  int Next(int state, char symbol) const {
    auto it = transitions_[state].find(symbol);
    return it == transitions_[state].end() ? 0 : it->second;
  }

  /// \brief State sequence after reading each character (starting at 0).
  std::vector<int> Run(const std::string& text) const;

  /// \brief DFA that walks through `keyword` character by character; state
  /// k means "the last k characters matched the keyword prefix", and the
  /// final state (len) loops on re-entry via the keyword's first char.
  static Dfa KeywordMatcher(const std::string& keyword);

 private:
  std::vector<std::map<char, int>> transitions_;
};

/// \brief Emits 1 whenever the DFA is in `state` after reading the symbol,
/// 0 otherwise (the paper's hot-one encoding of FSM states).
class FsmStateHypothesis : public HypothesisFn {
 public:
  FsmStateHypothesis(std::string name, std::shared_ptr<const Dfa> dfa,
                     int state)
      : HypothesisFn(std::move(name)), dfa_(std::move(dfa)), state_(state) {}

  std::vector<float> Eval(const Record& rec) const override;

 private:
  std::shared_ptr<const Dfa> dfa_;
  int state_;
};

/// \brief Emits the raw state label after each symbol (categorical).
class FsmLabelHypothesis : public HypothesisFn {
 public:
  FsmLabelHypothesis(std::string name, std::shared_ptr<const Dfa> dfa)
      : HypothesisFn(std::move(name)), dfa_(std::move(dfa)) {}

  std::vector<float> Eval(const Record& rec) const override;
  int num_classes() const override { return dfa_->num_states(); }

 private:
  std::shared_ptr<const Dfa> dfa_;
};

/// \brief One binary hypothesis per DFA state (hot-one encoding).
std::vector<HypothesisPtr> MakeFsmHypotheses(const std::string& name,
                                             std::shared_ptr<const Dfa> dfa);

}  // namespace deepbase
