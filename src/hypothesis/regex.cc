#include "hypothesis/regex.h"

#include <algorithm>
#include <map>
#include <set>

namespace deepbase {

namespace {

// ---------------------------------------------------------------------------
// Parsing: pattern string → syntax tree.
// ---------------------------------------------------------------------------

enum class NodeKind { kCharSet, kConcat, kAlt, kStar, kPlus, kOpt, kEmpty };

struct AstNode {
  NodeKind kind;
  CharSet chars;                             // kCharSet
  std::unique_ptr<AstNode> left, right;      // children

  explicit AstNode(NodeKind k) : kind(k) {}
};

using AstPtr = std::unique_ptr<AstNode>;

AstPtr MakeCharSet(const CharSet& set) {
  auto node = std::make_unique<AstNode>(NodeKind::kCharSet);
  node->chars = set;
  return node;
}

AstPtr MakeBinary(NodeKind kind, AstPtr left, AstPtr right) {
  auto node = std::make_unique<AstNode>(kind);
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

AstPtr MakeUnary(NodeKind kind, AstPtr child) {
  auto node = std::make_unique<AstNode>(kind);
  node->left = std::move(child);
  return node;
}

CharSet SetOf(const std::string& chars) {
  CharSet s;
  for (unsigned char c : chars) {
    if (c < kRegexAlphabetSize) s.set(c);
  }
  return s;
}

CharSet RangeSet(unsigned char lo, unsigned char hi) {
  CharSet s;
  for (unsigned c = lo; c <= hi && c < kRegexAlphabetSize; ++c) s.set(c);
  return s;
}

CharSet DotSet() {
  CharSet s;
  s.set();       // all of ASCII ...
  s.reset('\n');  // ... except newline, the conventional '.' semantics
  return s;
}

// Recursive-descent parser. Grammar:
//   alt    := concat ('|' concat)*
//   concat := repeat*
//   repeat := atom ('*' | '+' | '?')*
//   atom   := '(' alt ')' | '[' class ']' | '.' | escape | literal
class Parser {
 public:
  explicit Parser(const std::string& pattern) : pattern_(pattern) {}

  Result<AstPtr> Parse() {
    DB_ASSIGN_OR_RETURN(AstPtr root, ParseAlt());
    if (pos_ != pattern_.size()) {
      return Status::Invalid("regex: unexpected '" +
                             std::string(1, pattern_[pos_]) + "' at offset " +
                             std::to_string(pos_));
    }
    return root;
  }

 private:
  bool Done() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }

  Result<AstPtr> ParseAlt() {
    DB_ASSIGN_OR_RETURN(AstPtr left, ParseConcat());
    while (!Done() && Peek() == '|') {
      ++pos_;
      DB_ASSIGN_OR_RETURN(AstPtr right, ParseConcat());
      left = MakeBinary(NodeKind::kAlt, std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstPtr> ParseConcat() {
    AstPtr left = std::make_unique<AstNode>(NodeKind::kEmpty);
    bool first = true;
    while (!Done() && Peek() != '|' && Peek() != ')') {
      DB_ASSIGN_OR_RETURN(AstPtr atom, ParseRepeat());
      if (first) {
        left = std::move(atom);
        first = false;
      } else {
        left =
            MakeBinary(NodeKind::kConcat, std::move(left), std::move(atom));
      }
    }
    return left;
  }

  Result<AstPtr> ParseRepeat() {
    DB_ASSIGN_OR_RETURN(AstPtr atom, ParseAtom());
    while (!Done()) {
      const char c = Peek();
      if (c == '*') {
        atom = MakeUnary(NodeKind::kStar, std::move(atom));
      } else if (c == '+') {
        atom = MakeUnary(NodeKind::kPlus, std::move(atom));
      } else if (c == '?') {
        atom = MakeUnary(NodeKind::kOpt, std::move(atom));
      } else {
        break;
      }
      ++pos_;
    }
    return atom;
  }

  Result<AstPtr> ParseAtom() {
    if (Done()) return Status::Invalid("regex: pattern ends unexpectedly");
    const char c = Peek();
    if (c == '(') {
      ++pos_;
      DB_ASSIGN_OR_RETURN(AstPtr inner, ParseAlt());
      if (Done() || Peek() != ')') {
        return Status::Invalid("regex: missing ')'");
      }
      ++pos_;
      return inner;
    }
    if (c == '[') return ParseClass();
    if (c == '.') {
      ++pos_;
      return MakeCharSet(DotSet());
    }
    if (c == '\\') return ParseEscape();
    if (c == '*' || c == '+' || c == '?') {
      return Status::Invalid(std::string("regex: dangling quantifier '") + c +
                             "'");
    }
    if (c == ')') return Status::Invalid("regex: unmatched ')'");
    ++pos_;
    return MakeCharSet(SetOf(std::string(1, c)));
  }

  Result<CharSet> EscapeSet() {
    ++pos_;  // consume '\'
    if (Done()) return Status::Invalid("regex: trailing backslash");
    const char c = pattern_[pos_++];
    switch (c) {
      case 'd':
        return RangeSet('0', '9');
      case 'w': {
        CharSet s = RangeSet('a', 'z') | RangeSet('A', 'Z') |
                    RangeSet('0', '9');
        s.set('_');
        return s;
      }
      case 's':
        return SetOf(" \t\n\r\f\v");
      case 'n':
        return SetOf("\n");
      case 't':
        return SetOf("\t");
      default:
        // Escaped metacharacter or literal.
        return SetOf(std::string(1, c));
    }
  }

  Result<AstPtr> ParseEscape() {
    DB_ASSIGN_OR_RETURN(CharSet set, EscapeSet());
    return MakeCharSet(set);
  }

  Result<AstPtr> ParseClass() {
    ++pos_;  // consume '['
    bool negate = false;
    if (!Done() && Peek() == '^') {
      negate = true;
      ++pos_;
    }
    CharSet set;
    bool first = true;
    while (!Done() && (Peek() != ']' || first)) {
      first = false;
      CharSet item;
      unsigned char lo;
      if (Peek() == '\\') {
        DB_ASSIGN_OR_RETURN(item, EscapeSet());
        // Ranges starting with a multi-char escape are not supported.
        set |= item;
        continue;
      }
      lo = static_cast<unsigned char>(pattern_[pos_++]);
      if (!Done() && Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        const auto hi = static_cast<unsigned char>(pattern_[pos_++]);
        if (hi < lo) return Status::Invalid("regex: inverted range in class");
        set |= RangeSet(lo, hi);
      } else {
        if (lo < kRegexAlphabetSize) set.set(lo);
      }
    }
    if (Done()) return Status::Invalid("regex: missing ']'");
    ++pos_;  // consume ']'
    if (negate) set.flip();
    return MakeCharSet(set);
  }

  const std::string& pattern_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Thompson construction: syntax tree → NFA with epsilon transitions.
// ---------------------------------------------------------------------------

struct NfaState {
  // At most one char-set transition (Thompson invariant) ...
  CharSet chars;
  int char_next = -1;
  // ... plus up to two epsilon transitions.
  int eps[2] = {-1, -1};
};

struct Nfa {
  std::vector<NfaState> states;
  int start = 0;
  int accept = 0;

  int NewState() {
    states.emplace_back();
    return static_cast<int>(states.size()) - 1;
  }

  void AddEps(int from, int to) {
    NfaState& s = states[static_cast<size_t>(from)];
    if (s.eps[0] < 0) {
      s.eps[0] = to;
    } else {
      s.eps[1] = to;
    }
  }
};

// Builds the fragment for `node`, returns {start, accept}.
std::pair<int, int> BuildNfa(const AstNode& node, Nfa* nfa) {
  switch (node.kind) {
    case NodeKind::kCharSet: {
      const int s = nfa->NewState(), t = nfa->NewState();
      nfa->states[static_cast<size_t>(s)].chars = node.chars;
      nfa->states[static_cast<size_t>(s)].char_next = t;
      return {s, t};
    }
    case NodeKind::kEmpty: {
      const int s = nfa->NewState(), t = nfa->NewState();
      nfa->AddEps(s, t);
      return {s, t};
    }
    case NodeKind::kConcat: {
      const auto [ls, lt] = BuildNfa(*node.left, nfa);
      const auto [rs, rt] = BuildNfa(*node.right, nfa);
      nfa->AddEps(lt, rs);
      return {ls, rt};
    }
    case NodeKind::kAlt: {
      const int s = nfa->NewState(), t = nfa->NewState();
      const auto [ls, lt] = BuildNfa(*node.left, nfa);
      const auto [rs, rt] = BuildNfa(*node.right, nfa);
      nfa->AddEps(s, ls);
      nfa->AddEps(s, rs);
      nfa->AddEps(lt, t);
      nfa->AddEps(rt, t);
      return {s, t};
    }
    case NodeKind::kStar: {
      const int s = nfa->NewState(), t = nfa->NewState();
      const auto [cs, ct] = BuildNfa(*node.left, nfa);
      nfa->AddEps(s, cs);
      nfa->AddEps(s, t);
      nfa->AddEps(ct, cs);
      nfa->AddEps(ct, t);
      return {s, t};
    }
    case NodeKind::kPlus: {
      const auto [cs, ct] = BuildNfa(*node.left, nfa);
      const int t = nfa->NewState();
      nfa->AddEps(ct, cs);
      nfa->AddEps(ct, t);
      return {cs, t};
    }
    case NodeKind::kOpt: {
      const int s = nfa->NewState(), t = nfa->NewState();
      const auto [cs, ct] = BuildNfa(*node.left, nfa);
      nfa->AddEps(s, cs);
      nfa->AddEps(s, t);
      nfa->AddEps(ct, t);
      return {s, t};
    }
  }
  return {0, 0};  // unreachable
}

// ---------------------------------------------------------------------------
// Subset construction: NFA → DFA.
// ---------------------------------------------------------------------------

void EpsClosure(const Nfa& nfa, std::set<int>* states) {
  std::vector<int> stack(states->begin(), states->end());
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    for (int e : nfa.states[static_cast<size_t>(s)].eps) {
      if (e >= 0 && states->insert(e).second) stack.push_back(e);
    }
  }
}

RegexDfa SubsetConstruct(const Nfa& nfa) {
  std::map<std::set<int>, int> ids;
  std::vector<std::set<int>> worklist;

  std::set<int> start = {nfa.start};
  EpsClosure(nfa, &start);
  ids[start] = 0;
  worklist.push_back(start);

  std::vector<int> transitions;
  std::vector<bool> accepting;

  for (size_t i = 0; i < worklist.size(); ++i) {
    const std::set<int> current = worklist[i];
    transitions.resize((i + 1) * kRegexAlphabetSize, RegexDfa::kDeadState);
    accepting.resize(i + 1);
    accepting[i] = current.count(nfa.accept) > 0;

    // Group reachable targets per character.
    for (unsigned c = 0; c < kRegexAlphabetSize; ++c) {
      std::set<int> next;
      for (int s : current) {
        const NfaState& st = nfa.states[static_cast<size_t>(s)];
        if (st.char_next >= 0 && st.chars.test(c)) next.insert(st.char_next);
      }
      if (next.empty()) continue;
      EpsClosure(nfa, &next);
      auto [it, inserted] = ids.emplace(next, static_cast<int>(ids.size()));
      if (inserted) worklist.push_back(next);
      transitions[i * kRegexAlphabetSize + c] = it->second;
    }
  }

  return RegexDfa::FromTables(std::move(transitions), std::move(accepting));
}

// ---------------------------------------------------------------------------
// Minimization: partition refinement (Moore's algorithm). The DFAs here are
// small (tens of states), so the O(n² · Σ) refinement is plenty.
// ---------------------------------------------------------------------------

RegexDfa Minimize(const RegexDfa& dfa) {
  const int n = dfa.num_states();
  if (n == 0) return dfa;
  // Initial partition: accepting vs non-accepting (dead state: class -1).
  std::vector<int> cls(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) cls[static_cast<size_t>(s)] = dfa.accepting(s);

  bool changed = true;
  while (changed) {
    changed = false;
    // Signature of a state: (class, class of target per char).
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> next_cls(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
      std::vector<int> sig;
      sig.reserve(kRegexAlphabetSize + 1);
      sig.push_back(cls[static_cast<size_t>(s)]);
      for (unsigned c = 0; c < kRegexAlphabetSize; ++c) {
        const int t = dfa.Next(s, static_cast<unsigned char>(c));
        sig.push_back(t < 0 ? -1 : cls[static_cast<size_t>(t)]);
      }
      auto [it, _] = sig_ids.emplace(std::move(sig),
                                     static_cast<int>(sig_ids.size()));
      next_cls[static_cast<size_t>(s)] = it->second;
    }
    if (next_cls != cls) {
      cls = std::move(next_cls);
      changed = true;
    }
  }

  // Rebuild with the start state's class renumbered to 0.
  const int num_classes =
      *std::max_element(cls.begin(), cls.end()) + 1;
  std::vector<int> renumber(static_cast<size_t>(num_classes), -1);
  std::vector<int> order;
  renumber[static_cast<size_t>(cls[0])] = 0;
  order.push_back(0);  // representative state for new state 0
  for (int s = 1; s < n; ++s) {
    int& r = renumber[static_cast<size_t>(cls[static_cast<size_t>(s)])];
    if (r < 0) {
      r = static_cast<int>(order.size());
      order.push_back(s);
    }
  }

  std::vector<bool> accepting(order.size());
  std::vector<int> transitions(order.size() * kRegexAlphabetSize,
                               RegexDfa::kDeadState);
  for (size_t i = 0; i < order.size(); ++i) {
    const int rep = order[i];
    accepting[i] = dfa.accepting(rep);
    for (unsigned c = 0; c < kRegexAlphabetSize; ++c) {
      const int t = dfa.Next(rep, static_cast<unsigned char>(c));
      if (t >= 0) {
        transitions[i * kRegexAlphabetSize + c] =
            renumber[static_cast<size_t>(cls[static_cast<size_t>(t)])];
      }
    }
  }
  return RegexDfa::FromTables(std::move(transitions), std::move(accepting));
}

}  // namespace

// ---------------------------------------------------------------------------
// Regex public API.
// ---------------------------------------------------------------------------

Result<Regex> Regex::Compile(const std::string& pattern) {
  Parser parser(pattern);
  DB_ASSIGN_OR_RETURN(AstPtr ast, parser.Parse());
  Nfa nfa;
  const auto [start, accept] = BuildNfa(*ast, &nfa);
  nfa.start = start;
  nfa.accept = accept;
  Regex regex;
  regex.pattern_ = pattern;
  regex.dfa_ = Minimize(SubsetConstruct(nfa));
  return regex;
}

bool Regex::FullMatch(const std::string& text) const {
  int state = 0;
  for (unsigned char c : text) {
    state = dfa_.Next(state, c);
    if (state == RegexDfa::kDeadState) return false;
  }
  return dfa_.accepting(state);
}

bool Regex::PartialMatch(const std::string& text) const {
  for (size_t start = 0; start <= text.size(); ++start) {
    int state = 0;
    if (dfa_.accepting(state)) return true;
    for (size_t i = start; i < text.size(); ++i) {
      state = dfa_.Next(state, static_cast<unsigned char>(text[i]));
      if (state == RegexDfa::kDeadState) break;
      if (dfa_.accepting(state)) return true;
    }
  }
  return false;
}

std::vector<MatchSpan> Regex::FindAll(const std::string& text) const {
  std::vector<MatchSpan> spans;
  size_t start = 0;
  while (start < text.size()) {
    int state = 0;
    size_t longest_end = dfa_.accepting(state) ? start : std::string::npos;
    for (size_t i = start; i < text.size(); ++i) {
      state = dfa_.Next(state, static_cast<unsigned char>(text[i]));
      if (state == RegexDfa::kDeadState) break;
      if (dfa_.accepting(state)) longest_end = i + 1;
    }
    if (longest_end == std::string::npos || longest_end == start) {
      ++start;  // no match (or an empty one) here — advance
    } else {
      spans.push_back({start, longest_end});
      start = longest_end;
    }
  }
  return spans;
}

// ---------------------------------------------------------------------------
// Hypothesis wrappers.
// ---------------------------------------------------------------------------

std::vector<float> RegexMatchHypothesis::Eval(const Record& rec) const {
  std::vector<float> out(rec.size(), 0.0f);
  for (const MatchSpan& span : regex_.FindAll(rec.Text())) {
    for (size_t i = span.begin; i < span.end && i < out.size(); ++i) {
      out[i] = 1.0f;
    }
  }
  return out;
}

std::vector<float> RegexBoundaryHypothesis::Eval(const Record& rec) const {
  std::vector<float> out(rec.size(), 0.0f);
  for (const MatchSpan& span : regex_.FindAll(rec.Text())) {
    if (span.begin < out.size()) out[span.begin] = 1.0f;
    if (span.end > 0 && span.end - 1 < out.size()) out[span.end - 1] = 1.0f;
  }
  return out;
}

Result<std::vector<HypothesisPtr>> MakeRegexHypotheses(
    const std::string& label, const std::string& pattern) {
  DB_ASSIGN_OR_RETURN(Regex regex, Regex::Compile(pattern));
  std::vector<HypothesisPtr> hyps;
  hyps.push_back(
      std::make_shared<RegexMatchHypothesis>("regex:" + label, regex));
  hyps.push_back(std::make_shared<RegexBoundaryHypothesis>(
      "regex_signal:" + label, std::move(regex)));
  return hyps;
}

}  // namespace deepbase
