#include "hypothesis/iterators.h"

namespace deepbase {

std::vector<float> NestingDepthHypothesis::Eval(const Record& rec) const {
  std::vector<float> out(rec.size(), 0.0f);
  int depth = 0;
  for (size_t i = 0; i < rec.size(); ++i) {
    const std::string& tok = rec.tokens[i];
    if (!tok.empty()) {
      if (open_.find(tok[0]) != std::string::npos) ++depth;
      if (close_.find(tok[0]) != std::string::npos && depth > 0) --depth;
    }
    out[i] = static_cast<float>(depth);
  }
  return out;
}

std::vector<float> PositionIndexHypothesis::Eval(const Record& rec) const {
  std::vector<float> out(rec.size());
  for (size_t i = 0; i < rec.size(); ++i) out[i] = static_cast<float>(i);
  return out;
}

std::vector<float> CharClassHypothesis::Eval(const Record& rec) const {
  std::vector<float> out(rec.size(), 0.0f);
  for (size_t i = 0; i < rec.size(); ++i) {
    const std::string& tok = rec.tokens[i];
    if (!tok.empty() && chars_.find(tok[0]) != std::string::npos) {
      out[i] = 1.0f;
    }
  }
  return out;
}

std::vector<float> RemainingLengthHypothesis::Eval(const Record& rec) const {
  // Find the unpadded length.
  size_t len = rec.size();
  while (len > 0 && rec.ids[len - 1] == Vocab::kPadId) --len;
  std::vector<float> out(rec.size(), 0.0f);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<float>(len - 1 - i);
  }
  return out;
}

}  // namespace deepbase
