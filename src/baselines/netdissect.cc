#include "baselines/netdissect.h"

#include <algorithm>

#include "measures/independent.h"
#include "util/logging.h"

namespace deepbase {

CnnIouScores RunNetDissect(const TextureCnn& cnn,
                           const std::vector<AnnotatedImage>& images,
                           int num_concepts, double top_quantile) {
  const size_t num_units = cnn.num_units();
  // Pass 1: collect all activations per unit for exact quantile thresholds.
  std::vector<std::vector<float>> all_acts(num_units);
  std::vector<std::vector<Matrix>> unit_maps;  // per image, per unit
  unit_maps.reserve(images.size());
  for (const auto& img : images) {
    std::vector<Matrix> maps = cnn.UnitActivations(img.pixels);
    for (size_t u = 0; u < num_units; ++u) {
      const Matrix& m = maps[u];
      for (size_t r = 0; r < m.rows(); ++r) {
        const float* row = m.row_data(r);
        all_acts[u].insert(all_acts[u].end(), row, row + m.cols());
      }
    }
    unit_maps.push_back(std::move(maps));
  }
  std::vector<float> thresholds(num_units);
  for (size_t u = 0; u < num_units; ++u) {
    auto& v = all_acts[u];
    size_t k = static_cast<size_t>((1.0 - top_quantile) *
                                   static_cast<double>(v.size() - 1));
    std::nth_element(v.begin(), v.begin() + k, v.end());
    thresholds[u] = v[k];
  }
  // Pass 2: IoU per (unit, concept).
  CnnIouScores out;
  out.iou = Matrix(num_units, num_concepts);
  std::vector<std::vector<size_t>> inter(num_units,
                                         std::vector<size_t>(num_concepts, 0));
  std::vector<std::vector<size_t>> uni(num_units,
                                       std::vector<size_t>(num_concepts, 0));
  for (size_t i = 0; i < images.size(); ++i) {
    const auto& labels = images[i].labels;
    for (size_t u = 0; u < num_units; ++u) {
      const Matrix& m = unit_maps[i][u];
      for (size_t r = 0; r < m.rows(); ++r) {
        const float* row = m.row_data(r);
        for (size_t col = 0; col < m.cols(); ++col) {
          const size_t p = r * m.cols() + col;  // flat pixel index
          const bool on = row[col] > thresholds[u];
          for (int c = 0; c < num_concepts; ++c) {
            const bool is_concept = labels[p] == c + 1;
            if (on && is_concept) ++inter[u][c];
            if (on || is_concept) ++uni[u][c];
          }
        }
      }
    }
  }
  for (size_t u = 0; u < num_units; ++u) {
    for (int c = 0; c < num_concepts; ++c) {
      out.iou(u, c) = uni[u][c] == 0
                          ? 0.0f
                          : static_cast<float>(static_cast<double>(
                                                   inter[u][c]) /
                                               static_cast<double>(uni[u][c]));
    }
  }
  return out;
}

CnnIouScores RunDeepBaseCnn(const TextureCnn& cnn,
                            const std::vector<AnnotatedImage>& images,
                            int num_concepts, double top_quantile,
                            size_t images_per_block) {
  const size_t num_units = cnn.num_units();
  // One streaming Jaccard measure per concept, fed image blocks (pixels as
  // symbols), exactly like the record pipeline feeds character blocks.
  std::vector<std::unique_ptr<JaccardMeasure>> measures;
  for (int c = 0; c < num_concepts; ++c) {
    measures.push_back(
        std::make_unique<JaccardMeasure>(num_units, top_quantile));
  }
  size_t i = 0;
  while (i < images.size()) {
    const size_t end = std::min(images.size(), i + images_per_block);
    // Assemble the block's behavior matrix (pixels × units) and masks.
    size_t rows = 0;
    for (size_t j = i; j < end; ++j) rows += images[j].labels.size();
    Matrix units(rows, num_units);
    std::vector<std::vector<float>> masks(
        num_concepts, std::vector<float>(rows, 0.0f));
    size_t row = 0;
    for (size_t j = i; j < end; ++j) {
      std::vector<Matrix> maps = cnn.UnitActivations(images[j].pixels);
      const size_t npix = images[j].labels.size();
      for (size_t p = 0; p < npix; ++p) {
        float* dst = units.row_data(row + p);
        for (size_t u = 0; u < num_units; ++u) {
          const Matrix& mu = maps[u];
          dst[u] = mu(p / mu.cols(), p % mu.cols());
        }
        const int label = images[j].labels[p];
        if (label >= 1 && label <= num_concepts) {
          masks[label - 1][row + p] = 1.0f;
        }
      }
      row += npix;
    }
    for (int c = 0; c < num_concepts; ++c) {
      measures[c]->ProcessBlock(units, masks[c]);
    }
    i = end;
  }
  CnnIouScores out;
  out.iou = Matrix(num_units, num_concepts);
  for (int c = 0; c < num_concepts; ++c) {
    MeasureScores s = measures[c]->Scores();
    for (size_t u = 0; u < num_units; ++u) out.iou(u, c) = s.unit_scores[u];
  }
  return out;
}

}  // namespace deepbase
