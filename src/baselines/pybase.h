// System presets for the scalability ablations (paper §6.2): PyBase is the
// standard Python-style pipeline (full materialization, one model per
// hypothesis, no convergence checks); the optimizations are then enabled
// cumulatively, exactly as in Figures 5-7.

#pragma once

#include <string>
#include <vector>

#include "core/engine.h"

namespace deepbase {

/// \brief A named engine configuration for the benchmark harness.
struct SystemPreset {
  std::string name;
  InspectOptions options;
};

/// \brief PyBase: materialize everything, per-hypothesis models, full data.
InspectOptions PyBaseOptions();

/// \brief +MM: PyBase plus model merging (§5.2.1).
InspectOptions MergedOptions();

/// \brief +MM+ES: merged training plus convergence-based early stopping
/// (§5.2.2); extraction is still fully materialized.
InspectOptions MergedEarlyStopOptions();

/// \brief DeepBase: all optimizations, including streaming extraction
/// (§5.2.3). Equal to a default-constructed InspectOptions.
InspectOptions DeepBaseOptions();

/// \brief The cumulative ladder used by the optimization-ablation figures.
std::vector<SystemPreset> OptimizationLadder();

}  // namespace deepbase
