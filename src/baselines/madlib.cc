#include "baselines/madlib.h"

#include <cmath>

#include "measures/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace deepbase {

namespace {

// corr() over the (merge-)joined pair of relations: x from unitsb, y from
// hyposb. Mimics the `... FROM unitsb_dense U JOIN hyposb_dense H ON
// U.symbolid = H.symbolid` plan with a virtual Step call per row.
class JoinCorrUda {
 public:
  JoinCorrUda(size_t x_col, size_t y_col) : x_col_(x_col), y_col_(y_col) {}
  void Step(const RowView& u_row, const RowView& h_row) {
    const double x = u_row.Get(x_col_);
    const double y = h_row.Get(y_col_);
    n_ += 1;
    sx_ += x;
    sxx_ += x * x;
    sy_ += y;
    syy_ += y * y;
    sxy_ += x * y;
  }
  double Final() const {
    const double cov = n_ * sxy_ - sx_ * sy_;
    const double vx = n_ * sxx_ - sx_ * sx_;
    const double vy = n_ * syy_ - sy_ * sy_;
    if (vx <= 0 || vy <= 0) return 0.0;
    return cov / std::sqrt(vx * vy);
  }

 private:
  size_t x_col_, y_col_;
  double n_ = 0, sx_ = 0, sxx_ = 0, sy_ = 0, syy_ = 0, sxy_ = 0;
};

}  // namespace

MadlibBase::MadlibBase(const Extractor* extractor, const Dataset* dataset,
                       std::vector<int> units,
                       std::vector<HypothesisPtr> hypotheses)
    : extractor_(extractor),
      dataset_(dataset),
      units_(std::move(units)),
      hypotheses_(std::move(hypotheses)) {}

void MadlibBase::Materialize(MadlibRunStats* stats) {
  if (materialized_) return;
  Stopwatch watch;
  std::vector<std::string> ucols = {"symbolid"};
  for (size_t u = 0; u < units_.size(); ++u) {
    ucols.push_back("u_" + std::to_string(u));
  }
  std::vector<std::string> hcols = {"symbolid"};
  for (size_t h = 0; h < hypotheses_.size(); ++h) {
    hcols.push_back("h_" + std::to_string(h));
  }
  unitsb_ = RelTable(std::move(ucols));
  hyposb_ = RelTable(std::move(hcols));
  const size_t ns = dataset_->ns();
  unitsb_.Reserve(dataset_->num_records() * ns);
  hyposb_.Reserve(dataset_->num_records() * ns);

  std::vector<double> urow(units_.size() + 1);
  std::vector<double> hrow(hypotheses_.size() + 1);
  for (size_t i = 0; i < dataset_->num_records(); ++i) {
    const Record& rec = dataset_->record(i);
    Matrix behaviors = extractor_->ExtractRecord(rec, units_);
    std::vector<std::vector<float>> hyp_behaviors;
    hyp_behaviors.reserve(hypotheses_.size());
    for (const auto& hyp : hypotheses_) {
      hyp_behaviors.push_back(hyp->Eval(rec));
    }
    for (size_t t = 0; t < ns; ++t) {
      const double symbolid = static_cast<double>(i * ns + t);
      urow[0] = symbolid;
      for (size_t u = 0; u < units_.size(); ++u) urow[u + 1] = behaviors(t, u);
      unitsb_.AppendRow(urow);
      hrow[0] = symbolid;
      for (size_t h = 0; h < hypotheses_.size(); ++h) {
        hrow[h + 1] = hyp_behaviors[h][t];
      }
      hyposb_.AppendRow(hrow);
    }
  }
  materialized_ = true;
  if (stats != nullptr) stats->load_s += watch.Seconds();
}

ResultTable MadlibBase::RunCorrelation(MadlibRunStats* stats,
                                       double time_budget_s) {
  Materialize(stats);
  Stopwatch watch;
  ResultTable results;
  const size_t num_pairs = units_.size() * hypotheses_.size();
  size_t pair = 0;
  while (pair < num_pairs && watch.Seconds() < time_budget_s) {
    // One SELECT statement with up to the expression-limit corr() calls.
    const size_t batch_end =
        std::min(num_pairs, pair + kMaxExpressionsPerStatement);
    std::vector<JoinCorrUda> aggs;
    aggs.reserve(batch_end - pair);
    for (size_t p = pair; p < batch_end; ++p) {
      const size_t u = p / hypotheses_.size();
      const size_t h = p % hypotheses_.size();
      aggs.emplace_back(u + 1, h + 1);  // +1 skips symbolid
    }
    // Merge join on symbolid (both relations are clustered on it).
    for (size_t r = 0; r < unitsb_.num_rows(); ++r) {
      RowView u_row(&unitsb_, r);
      RowView h_row(&hyposb_, r);
      DB_DCHECK(u_row.Get(0) == h_row.Get(0));
      for (auto& agg : aggs) agg.Step(u_row, h_row);
    }
    if (stats != nullptr) ++stats->scans;
    for (size_t p = pair; p < batch_end; ++p) {
      const size_t u = p / hypotheses_.size();
      const size_t h = p % hypotheses_.size();
      ResultRow row;
      row.model_id = extractor_->model_id();
      row.group_id = "all";
      row.measure = "madlib_corr";
      row.hypothesis = hypotheses_[h]->name();
      row.unit = units_[u];
      row.unit_score = static_cast<float>(aggs[p - pair].Final());
      results.Add(row);
    }
    pair = batch_end;
  }
  if (stats != nullptr) stats->query_s += watch.Seconds();
  return results;
}

ResultTable MadlibBase::RunLogReg(size_t epochs, MadlibRunStats* stats,
                                  double time_budget_s) {
  Materialize(stats);
  Stopwatch watch;
  ResultTable results;
  const size_t nu = units_.size();
  // One SVMTrain/LogRegTrain-style UDA invocation per hypothesis: each is
  // `epochs` IGD scans plus one scoring scan (§5.1.1: "a full scan of the
  // behavior tables and a full execution of the UDF for every hypothesis").
  for (size_t h = 0;
       h < hypotheses_.size() && watch.Seconds() < time_budget_s; ++h) {
    std::vector<double> w(nu + 1, 0.0);
    const double lr = 0.05;
    for (size_t epoch = 0; epoch < epochs; ++epoch) {
      for (size_t r = 0; r < unitsb_.num_rows(); ++r) {
        RowView u_row(&unitsb_, r);
        RowView h_row(&hyposb_, r);
        double z = w[nu];
        for (size_t u = 0; u < nu; ++u) z += w[u] * u_row.Get(u + 1);
        const double p = 1.0 / (1.0 + std::exp(-z));
        const double d = p - (h_row.Get(h + 1) >= 0.5 ? 1.0 : 0.0);
        for (size_t u = 0; u < nu; ++u) {
          w[u] -= lr * d * u_row.Get(u + 1);
        }
        w[nu] -= lr * d;
      }
      if (stats != nullptr) ++stats->scans;
    }
    // Scoring scan: F1 of the trained model.
    BinaryConfusion conf;
    for (size_t r = 0; r < unitsb_.num_rows(); ++r) {
      RowView u_row(&unitsb_, r);
      RowView h_row(&hyposb_, r);
      double z = w[nu];
      for (size_t u = 0; u < nu; ++u) z += w[u] * u_row.Get(u + 1);
      conf.Add(z > 0, h_row.Get(h + 1) >= 0.5);
    }
    if (stats != nullptr) ++stats->scans;
    for (size_t u = 0; u < nu; ++u) {
      ResultRow row;
      row.model_id = extractor_->model_id();
      row.group_id = "all";
      row.measure = "madlib_logreg";
      row.hypothesis = hypotheses_[h]->name();
      row.unit = units_[u];
      row.unit_score = static_cast<float>(w[u]);
      row.group_score = static_cast<float>(conf.F1());
      results.Add(row);
    }
  }
  if (stats != nullptr) stats->query_s += watch.Seconds();
  return results;
}

}  // namespace deepbase
