#include "baselines/pybase.h"

namespace deepbase {

InspectOptions PyBaseOptions() {
  InspectOptions opts;
  opts.streaming = false;
  opts.early_stopping = false;
  opts.model_merging = false;
  return opts;
}

InspectOptions MergedOptions() {
  InspectOptions opts = PyBaseOptions();
  opts.model_merging = true;
  return opts;
}

InspectOptions MergedEarlyStopOptions() {
  InspectOptions opts = MergedOptions();
  opts.early_stopping = true;
  return opts;
}

InspectOptions DeepBaseOptions() { return InspectOptions{}; }

std::vector<SystemPreset> OptimizationLadder() {
  return {
      {"PyBase", PyBaseOptions()},
      {"+MM", MergedOptions()},
      {"+MM+ES", MergedEarlyStopOptions()},
      {"DeepBase", DeepBaseOptions()},
  };
}

}  // namespace deepbase
