// NetDissect reimplementation (paper Appendix E): for each CNN unit,
// threshold its activation map at a top-quantile of its activation
// distribution and compute the Intersection-over-Union with each concept's
// pixel annotation mask. The DeepBase counterpart runs the same analysis
// through the JaccardMeasure streaming pipeline; Figure 15 compares the
// two score sets.

#pragma once

#include <vector>

#include "data/images.h"
#include "nn/conv.h"
#include "tensor/matrix.h"

namespace deepbase {

/// \brief IoU scores per (unit, concept). Concepts are 1-based in the
/// annotation masks; column c holds concept c+1.
struct CnnIouScores {
  Matrix iou;  ///< num_units × num_concepts
};

/// \brief NetDissect pipeline: exact per-unit quantile thresholds computed
/// over the full activation distribution of all images, then IoU per
/// concept over all pixels.
CnnIouScores RunNetDissect(const TextureCnn& cnn,
                           const std::vector<AnnotatedImage>& images,
                           int num_concepts, double top_quantile = 0.1);

/// \brief DeepBase pipeline over the same CNN and images: one streaming
/// JaccardMeasure per concept, with thresholds estimated from the first
/// block (the approximation difference the paper cites for the score
/// deviations in Figure 15).
CnnIouScores RunDeepBaseCnn(const TextureCnn& cnn,
                            const std::vector<AnnotatedImage>& images,
                            int num_concepts, double top_quantile = 0.1,
                            size_t images_per_block = 8);

}  // namespace deepbase
