// The DB-oriented baseline of paper §5.1.1: behaviors are fully
// materialized into dense relations (unitsb_dense / hyposb_dense keyed by
// symbolid), then affinity scores are computed with SQL-style aggregate
// queries — correlation via batched `SELECT corr(U.uid_i, H.h_j), ...`
// statements capped at the engine's expression limit (one full join scan
// per statement), and logistic regression via a MADLib-style IGD UDA that
// performs one full scan per epoch per hypothesis.

#pragma once

#include <vector>

#include "core/extractor.h"
#include "core/result_table.h"
#include "hypothesis/hypothesis.h"
#include "relational/table.h"

namespace deepbase {

/// \brief Cost accounting for the baseline runs.
struct MadlibRunStats {
  double load_s = 0;   ///< behavior extraction + table materialization
  double query_s = 0;  ///< aggregate query execution
  size_t scans = 0;    ///< number of full table scans performed
  double total_s() const { return load_s + query_s; }
};

/// \brief MADLib-style DNI runner over the mini relational engine.
class MadlibBase {
 public:
  MadlibBase(const Extractor* extractor, const Dataset* dataset,
             std::vector<int> units, std::vector<HypothesisPtr> hypotheses);

  /// \brief Materialize the dense behavior relations (always the first
  /// step for this design; its cost lands in stats->load_s).
  void Materialize(MadlibRunStats* stats);

  /// \brief Per-(unit, hypothesis) Pearson correlation via batched
  /// aggregate statements (max `kMaxExpressionsPerStatement` expressions
  /// per statement, one full scan each).
  ResultTable RunCorrelation(MadlibRunStats* stats,
                             double time_budget_s = 1e18);

  /// \brief Logistic regression per hypothesis: `epochs` full-scan IGD
  /// passes plus one scoring scan each (MADLib's UDF pattern).
  ResultTable RunLogReg(size_t epochs, MadlibRunStats* stats,
                        double time_budget_s = 1e18);

 private:
  const Extractor* extractor_;
  const Dataset* dataset_;
  std::vector<int> units_;
  std::vector<HypothesisPtr> hypotheses_;
  RelTable unitsb_;  // symbolid, u_0 .. u_{U-1}
  RelTable hyposb_;  // symbolid, h_0 .. h_{H-1}
  bool materialized_ = false;
};

}  // namespace deepbase
