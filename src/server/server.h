// InspectionServer: the network serving layer. A TCP listener multiplexes
// many remote clients onto one shared InspectionSession, so every
// scheduler optimization built for in-process multi-query workloads —
// shared-scan batching, the result cache (memory + persistent tiers),
// in-flight dedup, admission control — now pays off *across* clients:
// four users submitting the same query over four sockets cost one engine
// run, exactly as four threads in one process do (the DeepBase
// multi-tenant scenario, paper §1/§5).
//
// Threading model (one session, many sockets):
//   - one accept thread
//   - per connection: a reader thread (decodes frames, dispatches
//     requests, sends the direct responses) and a watcher thread (polls
//     the connection's jobs, pushes kEventProgress frames as blocks
//     complete and the final kResult frame exactly once per job)
//   - all frames on one socket are serialized by a per-connection write
//     mutex; per-connection job state by a per-connection state mutex
//
// Backpressure & lifecycle:
//   - session admission quotas (SessionConfig::max_concurrent_jobs /
//     max_queued_bytes) surface to clients as protocol-level
//     RESOURCE_EXHAUSTED errors on Submit
//   - client disconnect cancels that connection's unfinished jobs (the
//     session's cooperative cancellation; dedup waiters detach without
//     disturbing the leader)
//   - Shutdown() drains gracefully: the listener closes, new submits are
//     rejected (RESOURCE_EXHAUSTED, "draining"), in-flight jobs run to
//     completion and their results are delivered, then connections close

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/wire.h"
#include "service/inspection_session.h"

namespace deepbase {

/// \brief Server construction knobs.
struct ServerConfig {
  /// Bind address; the default serves loopback only (the safe default for
  /// a process with no authentication layer).
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by port().
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Connections above this are refused with RESOURCE_EXHAUSTED.
  size_t max_connections = 256;
  /// Frames above this are rejected as malformed.
  size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  /// Watcher poll cadence for progress events; events are sent only when
  /// the block counter advanced, so a small interval costs little.
  double progress_poll_s = 0.002;
  /// Completed jobs retained per connection for late Poll/Wait
  /// re-delivery; beyond this the oldest delivered entries (and their
  /// pinned ResultTables) are dropped and late probes get NotFound.
  /// 0 = retain everything (unbounded memory on long-lived clients).
  size_t retained_results = 64;
  /// Allow RegisterDataset / RegisterHypotheses from clients. Off turns
  /// the server into a read-only query endpoint over the host-registered
  /// catalog.
  bool allow_remote_register = true;
};

/// \brief Serving-layer counters (scheduler counters travel separately,
/// via the Stats RPC's ServerStatsWire).
struct ServerStats {
  size_t connections_accepted = 0;
  size_t connections_active = 0;
  size_t connections_refused = 0;
  size_t frames_received = 0;
  size_t frames_sent = 0;
  size_t protocol_errors = 0;
  size_t submits = 0;
  size_t submits_rejected_draining = 0;
  size_t progress_events_sent = 0;
  size_t results_sent = 0;
};

/// \brief The serving layer. Owns no inspection state beyond per-client
/// bookkeeping: catalog, store, caches, and the scheduler all live in the
/// shared InspectionSession (not owned; must outlive the server).
class InspectionServer {
 public:
  explicit InspectionServer(InspectionSession* session,
                            ServerConfig config = {});
  /// Shuts down (gracefully) if still running.
  ~InspectionServer();

  InspectionServer(const InspectionServer&) = delete;
  InspectionServer& operator=(const InspectionServer&) = delete;

  /// \brief Bind + listen + start the accept loop. kIOError when the
  /// address cannot be bound.
  Status Start();

  /// \brief Graceful drain: stop accepting, reject new submits, let every
  /// in-flight job finish and deliver its result, then close all
  /// connections and join all threads. Idempotent; safe from any thread
  /// except a connection's own reader/watcher.
  void Shutdown();

  /// \brief The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  /// One submitted job as seen by one connection.
  struct TrackedJob {
    JobHandle handle;
    uint64_t submit_request_id = 0;
    bool want_progress = false;
    /// kSubmitOk sent — the watcher must not push frames for a job the
    /// client has not been told about yet (response ordering contract).
    bool announced = false;
    uint64_t last_progress_sent = 0;
    bool result_sent = false;
    /// kWait request ids parked until the result is ready.
    std::vector<uint64_t> pending_waits;
  };

  struct Connection {
    int fd = -1;
    std::thread reader;
    std::thread watcher;
    std::mutex write_mu;  ///< serializes frames onto the socket
    std::mutex mu;        ///< guards jobs / closing / broken
    std::condition_variable cv;
    std::map<uint64_t, TrackedJob> jobs;  ///< by session job id
    /// Submit frames currently being dispatched on the reader thread.
    /// The graceful drain waits on this too, so a Submit that passed the
    /// draining check but has not yet registered its job cannot be torn
    /// down mid-flight.
    size_t submits_in_progress = 0;
    bool closing = false;
    bool broken = false;  ///< a send failed; stop pushing
  };

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Connection>& conn);
  void WatchConnection(const std::shared_ptr<Connection>& conn);
  /// Join the reader threads of connections already torn down by their
  /// own reader (client-initiated hangups). Called from the accept loop
  /// and Shutdown so dead connections don't accumulate thread handles.
  void ReapZombies();
  /// Dispatch one decoded frame; returns false when the connection must
  /// close (protocol violation that loses stream sync).
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   const wire::Frame& frame);

  void HandleSubmit(const std::shared_ptr<Connection>& conn,
                    const wire::Frame& frame);
  void HandleSubmitImpl(const std::shared_ptr<Connection>& conn,
                        const wire::Frame& frame);
  void HandleRegisterDataset(const std::shared_ptr<Connection>& conn,
                             const wire::Frame& frame);
  void HandleRegisterHypotheses(const std::shared_ptr<Connection>& conn,
                                const wire::Frame& frame);

  /// Send one frame on the connection (write-mutex serialized); marks the
  /// connection broken on failure.
  void Send(const std::shared_ptr<Connection>& conn, wire::MsgType type,
            uint64_t request_id, const std::string& payload);
  void SendError(const std::shared_ptr<Connection>& conn,
                 uint64_t request_id, const Status& status);

  /// Serialized kResult payload for a finished job's handle. Callers
  /// must not hold conn->mu: result tables can be large, and request
  /// dispatch must not stall behind their serialization.
  std::string ResultPayload(const JobHandle& handle) const;

  InspectionSession* session_;
  ServerConfig config_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> closing_{false};

  mutable std::mutex conns_mu_;
  /// Live connections. Cleanup ownership is decided by presence here
  /// (under conns_mu_): a reader that finds its connection in the list
  /// removes it and reclaims watcher/fd/jobs itself (moving into
  /// zombies_ for its own thread handle); Shutdown swaps the list out
  /// and reclaims whatever is left.
  std::vector<std::shared_ptr<Connection>> conns_;
  /// Torn-down connections whose reader threads still need joining.
  std::vector<std::shared_ptr<Connection>> zombies_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace deepbase
