// DeepBase wire protocol (the serving layer's message format). Every
// frame on the socket is length-prefixed binary:
//
//   +--------+---------+--------+------------+-------------+---------+
//   | magic  | version | type   | request_id | payload_len | payload |
//   | u32    | u16     | u16    | u64        | u32         | bytes   |
//   +--------+---------+--------+------------+-------------+---------+
//
// All integers are little-endian. `request_id` is chosen by the client
// and echoed in the response; server-push frames (progress events and the
// final result of a submitted job) carry the originating Submit's
// request_id so the client can demultiplex one socket across many
// concurrent jobs. Status codes travel as the stable values of
// StatusCodeToWire (util/status.h), never raw enum values.
//
// The payload vocabulary is deliberately name-based: a remote
// InspectRequest references models/hypothesis sets/datasets/measures by
// their catalog names (inline extractor/hypothesis/measure pointers
// cannot cross a process boundary and are rejected at encode time).
// Clients may populate the server catalog with RegisterDataset (records
// travel inline) and RegisterHypotheses (a declarative spec subset:
// keyword / annotation / multi-class annotation / char-class — arbitrary
// code does not travel).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "data/dataset.h"
#include "util/codec.h"
#include "util/status.h"
#include "util/trace.h"

namespace deepbase {
namespace wire {

inline constexpr uint32_t kMagic = 0x44425731;  // "DBW1"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 20;
/// Frames above this are rejected as malformed before any allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 64ull << 20;

/// \brief Frame types. Requests < 64, responses in [64, 128), server-push
/// events >= 128. Values are protocol constants — append, never renumber.
enum class MsgType : uint16_t {
  // Requests (client -> server).
  kHello = 1,
  kSubmit = 2,
  kPoll = 3,
  kCancel = 4,
  kWait = 5,
  kRegisterDataset = 6,
  kRegisterHypotheses = 7,
  kStats = 8,
  kMetrics = 9,  ///< metrics-registry scrape (payload: one format byte)

  // Cluster requests (worker -> coordinator, and coordinator -> worker
  // for kAssign / kStoreKeymap; same framing, same band).
  kWorkerHello = 16,      ///< worker registration (id + catalog version)
  kWorkerHeartbeat = 17,  ///< liveness tick (worker -> coordinator)
  kAssign = 18,           ///< block-range assignment (coordinator -> worker)
  kStoreKeymap = 19,      ///< behavior-store key->worker placement map

  // Introspection requests (client -> server).
  kExplain = 20,  ///< EXPLAIN [ANALYZE]: flags byte + encoded InspectRequest
  kStatusz = 21,  ///< live system introspection dump (one format byte)

  // Responses (server -> client, request_id echoed).
  kHelloOk = 64,
  kSubmitOk = 65,
  kPollOk = 66,
  kCancelOk = 67,
  kRegisterOk = 68,
  kStatsOk = 69,
  kResult = 70,  ///< terminal status + (on OK) a serialized ResultTable
  kError = 71,   ///< request-level failure: wire status code + message

  // Cluster responses.
  kWorkerHelloOk = 72,  ///< coordinator ack: assigned worker index
  kAssignResult = 73,   ///< terminal assignment outcome + partial states
  kMetricsOk = 74,      ///< rendered metrics text (Prometheus or JSON)
  kExplainOk = 75,      ///< rendered plan (flags byte echoed + text)
  kStatuszOk = 76,      ///< rendered statusz (format byte echoed + text)

  // Server-push events (request_id = the originating Submit's).
  kEventProgress = 128,
  // Cluster push (worker -> coordinator): in-flight assignment progress.
  kEventWorkerProgress = 129,
};

/// \brief One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  uint64_t request_id = 0;
  std::string payload;
};

// ---------------------------------------------------------------------------
// Payload primitives: bounds-checked little-endian encode/decode.
// The implementations live in util/codec.h so layers below the serving
// stack (measure-state serialization) share the exact byte format.
// ---------------------------------------------------------------------------

using Writer = ::deepbase::codec::Writer;
using Reader = ::deepbase::codec::Reader;

// ---------------------------------------------------------------------------
// Framing over a socket.
// ---------------------------------------------------------------------------

/// \brief Serialize one frame (header + payload) into a byte string.
std::string EncodeFrame(MsgType type, uint64_t request_id,
                        const std::string& payload);

/// \brief Blocking full-frame read from `fd`. Returns kIOError on EOF /
/// socket failure (including EOF mid-frame = truncated frame) and
/// kDataLoss on malformed input (bad magic, unsupported version, payload
/// above `max_frame_bytes`).
Status ReadFrame(int fd, Frame* frame,
                 size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// \brief Blocking full write of one frame to `fd` (SIGPIPE-safe).
Status WriteFrame(int fd, MsgType type, uint64_t request_id,
                  const std::string& payload);

// ---------------------------------------------------------------------------
// Typed payloads.
// ---------------------------------------------------------------------------

/// \brief Status payload (kError, and the leading section of kResult).
void EncodeStatus(const Status& status, Writer* w);
Status DecodeStatus(Reader* r);

/// \brief The name-resolved InspectRequest subset that can travel.
/// Rejects requests holding inline extractor/dataset/hypothesis/measure
/// pointers (no stable identity across the wire).
Status EncodeInspectRequest(const InspectRequest& request, Writer* w);
bool DecodeInspectRequest(Reader* r, InspectRequest* request);

/// \brief Full dataset content: ns, records (tokens + annotation tracks).
/// The decoder rebuilds vocab ids server-side.
void EncodeDataset(const Dataset& dataset, Writer* w);
bool DecodeDataset(Reader* r, Dataset* dataset);

/// \brief Declarative hypothesis constructors that can travel (arbitrary
/// HypothesisFn code cannot).
struct HypothesisSpec {
  enum class Kind : uint8_t {
    kKeyword = 0,     ///< KeywordHypothesis(a)
    kAnnotation = 1,  ///< AnnotationHypothesis(track=a, label=b)
    kMultiClassAnnotation = 2,  ///< MultiClassAnnotationHypothesis(a, labels)
    kCharClass = 3,   ///< CharClassHypothesis(name=a, chars=b)
  };
  Kind kind = Kind::kKeyword;
  std::string a;
  std::string b;
  std::vector<std::string> labels;
};

void EncodeHypothesisSpec(const HypothesisSpec& spec, Writer* w);
bool DecodeHypothesisSpec(Reader* r, HypothesisSpec* spec);
/// \brief Instantiate a spec (server side).
Result<HypothesisPtr> BuildHypothesis(const HypothesisSpec& spec);

/// \brief kPollOk / kEventProgress payload: job lifecycle + the progress
/// counters of JobHandle::Poll, so remote polling reports exactly the
/// numbers a local handle would.
struct JobProgressWire {
  uint8_t status = 0;  ///< JobStatus enumerator index
  uint64_t blocks_completed = 0;
  uint64_t blocks_total = 0;
  uint64_t records_processed = 0;
};

void EncodeJobProgress(const JobProgressWire& progress, Writer* w);
bool DecodeJobProgress(Reader* r, JobProgressWire* progress);

/// \brief Per-job summary appended to every OK kResult, so a client can
/// observe scheduler effects (dedup, caching, shared scans) end-to-end.
/// The phase fields are the server-side critical-path breakdown (wire_s
/// is the server's serialization time for this response; the remaining
/// gap to client-observed latency is network + client decode).
struct ResultSummaryWire {
  uint64_t blocks_processed = 0;
  uint64_t dedup_hits = 0;
  uint64_t result_cache_hits = 0;
  uint64_t scan_shared_hits = 0;
  double total_s = 0;
  uint64_t trace_id = 0;
  double queue_s = 0;
  double extract_s = 0;
  double score_s = 0;
  double merge_s = 0;
  double wire_s = 0;
  double worker_hop_s = 0;
};

void EncodeResultSummary(const ResultSummaryWire& summary, Writer* w);
bool DecodeResultSummary(Reader* r, ResultSummaryWire* summary);

/// \brief kStatsOk payload: scheduler counters + serving-layer gauges.
struct ServerStatsWire {
  // Scheduler (service/scheduler.h SchedulerStats, flattened).
  uint64_t jobs_scheduled = 0;
  uint64_t groups_formed = 0;
  uint64_t jobs_coscheduled = 0;
  uint64_t scan_extractions = 0;
  uint64_t scan_shared_hits = 0;
  uint64_t dedup_followers = 0;
  uint64_t dedup_promotions = 0;
  uint64_t admission_rejections = 0;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_persistent_hits = 0;
  uint64_t inflight_jobs = 0;
  uint64_t active_jobs = 0;
  // Serving layer.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t protocol_errors = 0;
  uint64_t submits = 0;
  uint64_t catalog_version = 0;
  uint8_t draining = 0;
};

void EncodeServerStats(const ServerStatsWire& stats, Writer* w);
bool DecodeServerStats(Reader* r, ServerStatsWire* stats);

// ---------------------------------------------------------------------------
// Cluster payloads (coordinator <-> worker). Same framing, same append-only
// discipline as the client protocol.
// ---------------------------------------------------------------------------

/// \brief kWorkerHello payload: a worker announcing itself. The catalog
/// version is informational (the determinism contract requires workers to
/// hold catalogs equivalent to the coordinator's; mismatches surface as
/// per-assignment errors, not registration failures).
struct WorkerHelloWire {
  uint16_t protocol_version = kProtocolVersion;
  std::string worker_id;
  uint64_t catalog_version = 0;
  uint32_t num_threads = 0;  ///< worker-side pool size (informational)
};

void EncodeWorkerHello(const WorkerHelloWire& hello, Writer* w);
bool DecodeWorkerHello(Reader* r, WorkerHelloWire* hello);

/// \brief kAssign payload: one unit of distributed work. In sliced mode
/// the worker runs the request through BlockPipeline restricted to shards
/// [shard_lo, shard_hi) of `total_shards` and returns serialized partial
/// measure states; in whole mode (sequential-lane measures pinned to one
/// worker) it runs the full request and returns a serialized ResultTable.
/// The request carries its InspectOptions inline (num_shards is pinned to
/// total_shards by the coordinator so scores depend only on
/// (seed, total_shards), never on worker count).
struct AssignmentWire {
  enum class Mode : uint8_t { kSliced = 0, kWhole = 1 };
  uint64_t assignment_id = 0;
  Mode mode = Mode::kSliced;
  uint32_t total_shards = 1;
  uint32_t shard_lo = 0;  ///< inclusive; unused in whole mode
  uint32_t shard_hi = 1;  ///< exclusive; unused in whole mode
  // Trace propagation: the worker opens its local spans under this trace
  // id, parented to the coordinator's dispatch span, so the coordinator
  // can stitch one cross-host timeline. 0 = tracing off.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  InspectRequest request;
};

Status EncodeAssignment(const AssignmentWire& assignment, Writer* w);
bool DecodeAssignment(Reader* r, AssignmentWire* assignment);

/// \brief kAssignResult payload: terminal outcome of one assignment.
/// On OK, sliced mode carries one serialized measure state per pipeline
/// pair in the pipeline's deterministic pair order; whole mode carries a
/// serialized ResultTable.
struct AssignResultWire {
  uint64_t assignment_id = 0;
  Status status;
  AssignmentWire::Mode mode = AssignmentWire::Mode::kSliced;
  std::vector<std::string> pair_states;  ///< sliced mode
  std::string table_bytes;               ///< whole mode
  uint64_t blocks_processed = 0;
  uint64_t records_processed = 0;
  uint8_t all_converged = 0;
  // Observability: the worker's wall time for the assignment (its local
  // root span duration) and its recorded spans. Timestamps are in the
  // worker's steady_clock domain; the coordinator re-anchors them against
  // its own dispatch span when importing (clocks are per-host).
  int64_t run_ns = 0;
  std::vector<TraceSpan> spans;
};

void EncodeAssignResult(const AssignResultWire& result, Writer* w);
bool DecodeAssignResult(Reader* r, AssignResultWire* result);

/// \brief Span list codec shared by kAssignResult (worker -> coordinator
/// stitching). Tags travel as flat key/value string pairs.
void EncodeTraceSpans(const std::vector<TraceSpan>& spans, Writer* w);
bool DecodeTraceSpans(Reader* r, std::vector<TraceSpan>* spans);

/// \brief kEventWorkerProgress payload: absolute (not delta) in-flight
/// counters for one assignment, so lost/duplicated ticks cannot skew the
/// coordinator's aggregate.
struct WorkerProgressWire {
  uint64_t assignment_id = 0;
  uint64_t blocks_processed = 0;
  uint64_t records_processed = 0;
};

void EncodeWorkerProgress(const WorkerProgressWire& progress, Writer* w);
bool DecodeWorkerProgress(Reader* r, WorkerProgressWire* progress);

/// \brief kStoreKeymap payload: behavior-store key -> owning worker id,
/// pushed by the coordinator so each worker knows where a unit's stored
/// behaviors live (parameter-server key placement).
struct StoreKeymapWire {
  std::vector<std::pair<std::string, std::string>> placements;
};

void EncodeStoreKeymap(const StoreKeymapWire& keymap, Writer* w);
bool DecodeStoreKeymap(Reader* r, StoreKeymapWire* keymap);

}  // namespace wire
}  // namespace deepbase
