// DeepBase wire protocol (the serving layer's message format). Every
// frame on the socket is length-prefixed binary:
//
//   +--------+---------+--------+------------+-------------+---------+
//   | magic  | version | type   | request_id | payload_len | payload |
//   | u32    | u16     | u16    | u64        | u32         | bytes   |
//   +--------+---------+--------+------------+-------------+---------+
//
// All integers are little-endian. `request_id` is chosen by the client
// and echoed in the response; server-push frames (progress events and the
// final result of a submitted job) carry the originating Submit's
// request_id so the client can demultiplex one socket across many
// concurrent jobs. Status codes travel as the stable values of
// StatusCodeToWire (util/status.h), never raw enum values.
//
// The payload vocabulary is deliberately name-based: a remote
// InspectRequest references models/hypothesis sets/datasets/measures by
// their catalog names (inline extractor/hypothesis/measure pointers
// cannot cross a process boundary and are rejected at encode time).
// Clients may populate the server catalog with RegisterDataset (records
// travel inline) and RegisterHypotheses (a declarative spec subset:
// keyword / annotation / multi-class annotation / char-class — arbitrary
// code does not travel).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "data/dataset.h"
#include "util/status.h"

namespace deepbase {
namespace wire {

inline constexpr uint32_t kMagic = 0x44425731;  // "DBW1"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 20;
/// Frames above this are rejected as malformed before any allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 64ull << 20;

/// \brief Frame types. Requests < 64, responses in [64, 128), server-push
/// events >= 128. Values are protocol constants — append, never renumber.
enum class MsgType : uint16_t {
  // Requests (client -> server).
  kHello = 1,
  kSubmit = 2,
  kPoll = 3,
  kCancel = 4,
  kWait = 5,
  kRegisterDataset = 6,
  kRegisterHypotheses = 7,
  kStats = 8,

  // Responses (server -> client, request_id echoed).
  kHelloOk = 64,
  kSubmitOk = 65,
  kPollOk = 66,
  kCancelOk = 67,
  kRegisterOk = 68,
  kStatsOk = 69,
  kResult = 70,  ///< terminal status + (on OK) a serialized ResultTable
  kError = 71,   ///< request-level failure: wire status code + message

  // Server-push events (request_id = the originating Submit's).
  kEventProgress = 128,
};

/// \brief One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  uint64_t request_id = 0;
  std::string payload;
};

// ---------------------------------------------------------------------------
// Payload primitives: bounds-checked little-endian encode/decode.
// ---------------------------------------------------------------------------

/// \brief Appends primitives to a byte string.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F32(float v);
  void F64(double v);
  /// Length-prefixed (u32) byte string.
  void Str(const std::string& s);
  void StrList(const std::vector<std::string>& v);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Reads primitives back; any out-of-bounds read latches !ok() and
/// every subsequent Get returns zero values, so decoders can check once
/// at the end (the RocksDB Slice idiom).
class Reader {
 public:
  explicit Reader(const std::string& bytes) : data_(bytes) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  float F32();
  double F64();
  std::string Str();
  std::vector<std::string> StrList();

  bool ok() const { return ok_; }
  /// True when the whole payload was consumed (trailing garbage is a
  /// protocol error for fixed-shape messages).
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n);
  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Framing over a socket.
// ---------------------------------------------------------------------------

/// \brief Serialize one frame (header + payload) into a byte string.
std::string EncodeFrame(MsgType type, uint64_t request_id,
                        const std::string& payload);

/// \brief Blocking full-frame read from `fd`. Returns kIOError on EOF /
/// socket failure (including EOF mid-frame = truncated frame) and
/// kDataLoss on malformed input (bad magic, unsupported version, payload
/// above `max_frame_bytes`).
Status ReadFrame(int fd, Frame* frame,
                 size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// \brief Blocking full write of one frame to `fd` (SIGPIPE-safe).
Status WriteFrame(int fd, MsgType type, uint64_t request_id,
                  const std::string& payload);

// ---------------------------------------------------------------------------
// Typed payloads.
// ---------------------------------------------------------------------------

/// \brief Status payload (kError, and the leading section of kResult).
void EncodeStatus(const Status& status, Writer* w);
Status DecodeStatus(Reader* r);

/// \brief The name-resolved InspectRequest subset that can travel.
/// Rejects requests holding inline extractor/dataset/hypothesis/measure
/// pointers (no stable identity across the wire).
Status EncodeInspectRequest(const InspectRequest& request, Writer* w);
bool DecodeInspectRequest(Reader* r, InspectRequest* request);

/// \brief Full dataset content: ns, records (tokens + annotation tracks).
/// The decoder rebuilds vocab ids server-side.
void EncodeDataset(const Dataset& dataset, Writer* w);
bool DecodeDataset(Reader* r, Dataset* dataset);

/// \brief Declarative hypothesis constructors that can travel (arbitrary
/// HypothesisFn code cannot).
struct HypothesisSpec {
  enum class Kind : uint8_t {
    kKeyword = 0,     ///< KeywordHypothesis(a)
    kAnnotation = 1,  ///< AnnotationHypothesis(track=a, label=b)
    kMultiClassAnnotation = 2,  ///< MultiClassAnnotationHypothesis(a, labels)
    kCharClass = 3,   ///< CharClassHypothesis(name=a, chars=b)
  };
  Kind kind = Kind::kKeyword;
  std::string a;
  std::string b;
  std::vector<std::string> labels;
};

void EncodeHypothesisSpec(const HypothesisSpec& spec, Writer* w);
bool DecodeHypothesisSpec(Reader* r, HypothesisSpec* spec);
/// \brief Instantiate a spec (server side).
Result<HypothesisPtr> BuildHypothesis(const HypothesisSpec& spec);

/// \brief kPollOk / kEventProgress payload: job lifecycle + the progress
/// counters of JobHandle::Poll, so remote polling reports exactly the
/// numbers a local handle would.
struct JobProgressWire {
  uint8_t status = 0;  ///< JobStatus enumerator index
  uint64_t blocks_completed = 0;
  uint64_t blocks_total = 0;
  uint64_t records_processed = 0;
};

void EncodeJobProgress(const JobProgressWire& progress, Writer* w);
bool DecodeJobProgress(Reader* r, JobProgressWire* progress);

/// \brief Per-job summary appended to every OK kResult, so a client can
/// observe scheduler effects (dedup, caching, shared scans) end-to-end.
struct ResultSummaryWire {
  uint64_t blocks_processed = 0;
  uint64_t dedup_hits = 0;
  uint64_t result_cache_hits = 0;
  uint64_t scan_shared_hits = 0;
  double total_s = 0;
};

void EncodeResultSummary(const ResultSummaryWire& summary, Writer* w);
bool DecodeResultSummary(Reader* r, ResultSummaryWire* summary);

/// \brief kStatsOk payload: scheduler counters + serving-layer gauges.
struct ServerStatsWire {
  // Scheduler (service/scheduler.h SchedulerStats, flattened).
  uint64_t jobs_scheduled = 0;
  uint64_t groups_formed = 0;
  uint64_t jobs_coscheduled = 0;
  uint64_t scan_extractions = 0;
  uint64_t scan_shared_hits = 0;
  uint64_t dedup_followers = 0;
  uint64_t dedup_promotions = 0;
  uint64_t admission_rejections = 0;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_persistent_hits = 0;
  uint64_t inflight_jobs = 0;
  uint64_t active_jobs = 0;
  // Serving layer.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t protocol_errors = 0;
  uint64_t submits = 0;
  uint64_t catalog_version = 0;
  uint8_t draining = 0;
};

void EncodeServerStats(const ServerStatsWire& stats, Writer* w);
bool DecodeServerStats(Reader* r, ServerStatsWire* stats);

}  // namespace wire
}  // namespace deepbase
