#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "service/explain.h"
#include "service/scheduler.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace deepbase {

namespace {

/// Lifecycle stage carried in kPollOk/kEventProgress frames.
uint8_t WireJobStatus(JobStatus status) {
  return static_cast<uint8_t>(status);
}

/// Serving-layer metrics (handles cached once; see util/metrics.h).
struct ServerMetrics {
  Counter* connections = nullptr;
  Counter* frames_received = nullptr;
  Counter* frames_sent = nullptr;
  Counter* protocol_errors = nullptr;
  Gauge* connections_active = nullptr;
};

ServerMetrics& Metrics() {
  static ServerMetrics* metrics = [] {
    auto* m = new ServerMetrics();
    MetricsRegistry& reg = MetricsRegistry::Global();
    m->connections = reg.GetCounter("deepbase_server_connections_total");
    m->frames_received =
        reg.GetCounter("deepbase_server_frames_received_total");
    m->frames_sent = reg.GetCounter("deepbase_server_frames_sent_total");
    m->protocol_errors =
        reg.GetCounter("deepbase_server_protocol_errors_total");
    m->connections_active =
        reg.GetGauge("deepbase_server_connections_active");
    return m;
  }();
  return *metrics;
}

}  // namespace

InspectionServer::InspectionServer(InspectionSession* session,
                                   ServerConfig config)
    : session_(session), config_(std::move(config)) {}

InspectionServer::~InspectionServer() { Shutdown(); }

Status InspectionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Invalid("bad bind address: " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  closing_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void InspectionServer::AcceptLoop() {
  while (!closing_.load(std::memory_order_acquire)) {
    // Reclaim connections whose clients already hung up, so dead fds and
    // thread handles never accumulate across a long-lived server.
    ReapZombies();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // Transient conditions must not kill the listener: a client that
      // aborted between SYN and accept, or momentary fd exhaustion.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listener shut down (or fatal error): stop accepting
    }
    if (closing_.load(std::memory_order_acquire) ||
        draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    size_t active;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      active = stats_.connections_active;
    }
    if (active >= config_.max_connections) {
      // Best-effort refusal notice; the client may also just see EOF.
      wire::Writer w;
      wire::EncodeStatus(
          Status::ResourceExhausted("connection limit reached"), &w);
      const std::string frame =
          wire::EncodeFrame(wire::MsgType::kError, 0, w.bytes());
      (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_refused;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
      ++stats_.connections_active;
    }
    Metrics().connections->Inc();
    Metrics().connections_active->Add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    // Watcher first: the reader's teardown path joins conn->watcher, so
    // the member must be fully assigned before the reader can run (an
    // instant client hangup otherwise races the assignment).
    conn->watcher = std::thread([this, conn] { WatchConnection(conn); });
    conn->reader = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void InspectionServer::Send(const std::shared_ptr<Connection>& conn,
                            wire::MsgType type, uint64_t request_id,
                            const std::string& payload) {
  std::lock_guard<std::mutex> write_lock(conn->write_mu);
  const Status st = wire::WriteFrame(conn->fd, type, request_id, payload);
  if (!st.ok()) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->broken = true;
    }
    // A connection that cannot be written to is dead to the client even
    // when the socket is only half-broken (or the failure was injected):
    // letting the reader keep serving would strand clients waiting for
    // pushes that will never come. Shut the socket down so the reader
    // unblocks and runs the normal teardown; the client sees a
    // connection loss and its reconnect/resubmit machinery takes over.
    ::shutdown(conn->fd, SHUT_RDWR);
  } else {
    Metrics().frames_sent->Inc();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_sent;
  }
}

void InspectionServer::SendError(const std::shared_ptr<Connection>& conn,
                                 uint64_t request_id, const Status& status) {
  wire::Writer w;
  wire::EncodeStatus(status, &w);
  Send(conn, wire::MsgType::kError, request_id, w.bytes());
}

std::string InspectionServer::ResultPayload(const JobHandle& handle) const {
  // Only called once the job is terminal, so Wait() returns immediately.
  const Result<ResultTable>& result = handle.Wait();
  const RuntimeStats stats = handle.Stats();
  const JobSummary job = handle.Summary();
  wire::Writer w;
  wire::EncodeStatus(result.status(), &w);
  if (result.ok()) {
    // Table serialization is the server's wire cost for this response;
    // measured here so the client's critical-path breakdown accounts for
    // it (the residual gap to client latency is network + decode).
    Stopwatch wire_watch;
    w.Str(result->SerializeToString());
    wire::ResultSummaryWire summary;
    summary.blocks_processed = stats.blocks_processed;
    summary.dedup_hits = stats.dedup_hits;
    summary.result_cache_hits = stats.result_cache_hits;
    summary.scan_shared_hits = stats.scan_shared_hits;
    summary.total_s = stats.total_s;
    summary.trace_id = job.trace_id;
    summary.queue_s = job.queue_s;
    summary.extract_s = job.extract_s;
    summary.score_s = job.score_s;
    summary.merge_s = job.merge_s;
    summary.worker_hop_s = job.worker_hop_s;
    summary.wire_s = wire_watch.Seconds();
    wire::EncodeResultSummary(summary, &w);
  }
  return w.Take();
}

void InspectionServer::WatchConnection(
    const std::shared_ptr<Connection>& conn) {
  const auto interval = std::chrono::duration<double>(
      config_.progress_poll_s > 0 ? config_.progress_poll_s : 0.002);
  struct Outgoing {
    wire::MsgType type;
    uint64_t request_id;
    std::string payload;
  };
  struct FinishedJob {
    JobHandle handle;
    uint64_t submit_request_id = 0;
    std::vector<uint64_t> wait_ids;
  };
  std::unique_lock<std::mutex> lock(conn->mu);
  while (!conn->closing) {
    conn->cv.wait_for(lock, interval);
    if (conn->closing) break;
    if (conn->broken) continue;  // keep draining poll wakeups, send nothing
    std::vector<Outgoing> out;
    std::vector<FinishedJob> finished;
    size_t progress_events = 0;
    for (auto& [job_id, job] : conn->jobs) {
      if (!job.announced || job.result_sent) continue;
      JobProgress progress;
      const JobStatus status = job.handle.Poll(&progress);
      const bool terminal =
          status == JobStatus::kDone || status == JobStatus::kCancelled;
      if (job.want_progress &&
          progress.blocks_completed > job.last_progress_sent) {
        // Send only on advance: the stream is strictly increasing by
        // construction, whatever the poll cadence.
        job.last_progress_sent = progress.blocks_completed;
        wire::JobProgressWire p;
        p.status = WireJobStatus(status);
        p.blocks_completed = progress.blocks_completed;
        p.blocks_total = progress.blocks_total;
        p.records_processed = progress.records_processed;
        wire::Writer w;
        wire::EncodeJobProgress(p, &w);
        out.push_back(
            {wire::MsgType::kEventProgress, job.submit_request_id, w.Take()});
        ++progress_events;
      }
      if (terminal) {
        // Claim delivery under the lock; serialize the (possibly large)
        // result outside it so request dispatch on this connection never
        // stalls behind table serialization.
        job.result_sent = true;
        FinishedJob done;
        done.handle = job.handle;
        done.submit_request_id = job.submit_request_id;
        done.wait_ids.swap(job.pending_waits);
        finished.push_back(std::move(done));
      }
    }
    if (out.empty() && finished.empty()) continue;
    lock.unlock();
    for (const Outgoing& frame : out) {
      Send(conn, frame.type, frame.request_id, frame.payload);
    }
    for (const FinishedJob& done : finished) {
      const std::string payload = ResultPayload(done.handle);
      Send(conn, wire::MsgType::kResult, done.submit_request_id, payload);
      for (uint64_t wait_id : done.wait_ids) {
        Send(conn, wire::MsgType::kResult, wait_id, payload);
      }
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.progress_events_sent += progress_events;
      stats_.results_sent += finished.size();
    }
    lock.lock();
    // Bounded retention: delivered jobs stay probeable (late Poll/Wait)
    // up to the configured cap; beyond it the oldest delivered entries
    // are dropped so a long-lived client cannot pin unbounded tables.
    if (!finished.empty() && config_.retained_results > 0) {
      size_t delivered = 0;
      for (const auto& [job_id, job] : conn->jobs) {
        if (job.result_sent) ++delivered;
      }
      for (auto it = conn->jobs.begin();
           delivered > config_.retained_results &&
           it != conn->jobs.end();) {
        if (it->second.result_sent && it->second.pending_waits.empty()) {
          it = conn->jobs.erase(it);
          --delivered;
        } else {
          ++it;
        }
      }
    }
  }
}

void InspectionServer::HandleSubmit(const std::shared_ptr<Connection>& conn,
                                    const wire::Frame& frame) {
  // Bracket the dispatch so the graceful drain can see submits that have
  // passed the draining check but not yet registered their job.
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->submits_in_progress;
  }
  HandleSubmitImpl(conn, frame);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    --conn->submits_in_progress;
  }
}

void InspectionServer::HandleSubmitImpl(
    const std::shared_ptr<Connection>& conn, const wire::Frame& frame) {
  if (draining_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.submits_rejected_draining;
    }
    SendError(conn, frame.request_id,
              Status::ResourceExhausted(
                  "server is draining; new submissions are rejected"));
    return;
  }
  wire::Reader r(frame.payload);
  const uint8_t flags = r.U8();
  const uint64_t trace_id = r.U64();
  InspectRequest request;
  if (!wire::DecodeInspectRequest(&r, &request) || !r.exhausted()) {
    SendError(conn, frame.request_id,
              Status::DataLoss("malformed Submit payload"));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submits;
  }
  JobHandle handle = session_->Submit(std::move(request), trace_id);
  // Session admission control surfaces as a protocol-level error: an
  // over-quota submission is born terminal with kResourceExhausted.
  if (handle.Done()) {
    const Result<ResultTable>& result = handle.Wait();
    if (!result.ok() &&
        result.status().code() == StatusCode::kResourceExhausted) {
      SendError(conn, frame.request_id, result.status());
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    TrackedJob job;
    job.handle = handle;
    job.submit_request_id = frame.request_id;
    job.want_progress = (flags & 1) != 0;
    conn->jobs[handle.id()] = std::move(job);
  }
  wire::Writer w;
  w.U64(handle.id());
  Send(conn, wire::MsgType::kSubmitOk, frame.request_id, w.bytes());
  {
    // Announce only after kSubmitOk is on the wire, so the watcher never
    // pushes frames for a job the client has not heard back about.
    std::lock_guard<std::mutex> lock(conn->mu);
    auto it = conn->jobs.find(handle.id());
    if (it != conn->jobs.end()) it->second.announced = true;
  }
  conn->cv.notify_all();
}

void InspectionServer::HandleRegisterDataset(
    const std::shared_ptr<Connection>& conn, const wire::Frame& frame) {
  if (!config_.allow_remote_register) {
    SendError(conn, frame.request_id,
              Status::NotImplemented(
                  "remote registration is disabled on this server"));
    return;
  }
  wire::Reader r(frame.payload);
  std::string name = r.Str();
  auto dataset = std::make_shared<Dataset>();
  if (!r.ok() || name.empty() || !wire::DecodeDataset(&r, dataset.get()) ||
      !r.exhausted()) {
    SendError(conn, frame.request_id,
              Status::DataLoss("malformed RegisterDataset payload"));
    return;
  }
  // Owning registration: the catalog (which outlives this server) keeps
  // the uploaded dataset alive, so host code may keep using the name
  // after the server is gone.
  session_->catalog().RegisterDataset(
      name, std::shared_ptr<const Dataset>(std::move(dataset)));
  wire::Writer w;
  w.U64(session_->catalog_version());
  Send(conn, wire::MsgType::kRegisterOk, frame.request_id, w.bytes());
}

void InspectionServer::HandleRegisterHypotheses(
    const std::shared_ptr<Connection>& conn, const wire::Frame& frame) {
  if (!config_.allow_remote_register) {
    SendError(conn, frame.request_id,
              Status::NotImplemented(
                  "remote registration is disabled on this server"));
    return;
  }
  wire::Reader r(frame.payload);
  std::string set_name = r.Str();
  const uint32_t n = r.U32();
  std::vector<HypothesisPtr> hypotheses;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    wire::HypothesisSpec spec;
    if (!wire::DecodeHypothesisSpec(&r, &spec)) break;
    Result<HypothesisPtr> built = wire::BuildHypothesis(spec);
    if (!built.ok()) {
      SendError(conn, frame.request_id, built.status());
      return;
    }
    hypotheses.push_back(std::move(built).ValueOrDie());
  }
  if (!r.exhausted() || set_name.empty() || hypotheses.size() != n) {
    SendError(conn, frame.request_id,
              Status::DataLoss("malformed RegisterHypotheses payload"));
    return;
  }
  session_->catalog().RegisterHypotheses(set_name, std::move(hypotheses));
  wire::Writer w;
  w.U64(session_->catalog_version());
  Send(conn, wire::MsgType::kRegisterOk, frame.request_id, w.bytes());
}

bool InspectionServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                                   const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MsgType::kHello: {
      wire::Reader r(frame.payload);
      const uint16_t client_version = r.U16();
      if (!r.ok() || client_version != wire::kProtocolVersion) {
        SendError(conn, frame.request_id,
                  Status::Invalid("unsupported client protocol version"));
        return false;
      }
      wire::Writer w;
      w.U16(wire::kProtocolVersion);
      w.U64(session_->catalog_version());
      Send(conn, wire::MsgType::kHelloOk, frame.request_id, w.bytes());
      return true;
    }
    case wire::MsgType::kSubmit:
      HandleSubmit(conn, frame);
      return true;
    case wire::MsgType::kPoll: {
      wire::Reader r(frame.payload);
      const uint64_t job_id = r.U64();
      JobHandle handle;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->jobs.find(job_id);
        if (r.ok() && it != conn->jobs.end()) handle = it->second.handle;
      }
      if (!handle.valid()) {
        SendError(conn, frame.request_id,
                  Status::NotFound("unknown job id " +
                                   std::to_string(job_id)));
        return true;
      }
      JobProgress progress;
      const JobStatus status = handle.Poll(&progress);
      wire::JobProgressWire p;
      p.status = WireJobStatus(status);
      p.blocks_completed = progress.blocks_completed;
      p.blocks_total = progress.blocks_total;
      p.records_processed = progress.records_processed;
      wire::Writer w;
      wire::EncodeJobProgress(p, &w);
      Send(conn, wire::MsgType::kPollOk, frame.request_id, w.bytes());
      return true;
    }
    case wire::MsgType::kCancel: {
      wire::Reader r(frame.payload);
      const uint64_t job_id = r.U64();
      JobHandle handle;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->jobs.find(job_id);
        if (r.ok() && it != conn->jobs.end()) handle = it->second.handle;
      }
      if (!handle.valid()) {
        SendError(conn, frame.request_id,
                  Status::NotFound("unknown job id " +
                                   std::to_string(job_id)));
        return true;
      }
      handle.Cancel();
      conn->cv.notify_all();  // deliver the terminal result promptly
      wire::Writer w;
      w.U64(job_id);
      Send(conn, wire::MsgType::kCancelOk, frame.request_id, w.bytes());
      return true;
    }
    case wire::MsgType::kWait: {
      wire::Reader r(frame.payload);
      const uint64_t job_id = r.U64();
      JobHandle ready_handle;
      bool ready = false, known = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->jobs.find(job_id);
        if (r.ok() && it != conn->jobs.end()) {
          known = true;
          if (it->second.result_sent || it->second.handle.Done()) {
            ready = true;
            ready_handle = it->second.handle;
            it->second.result_sent = true;
          } else {
            it->second.pending_waits.push_back(frame.request_id);
          }
        }
      }
      if (!known) {
        SendError(conn, frame.request_id,
                  Status::NotFound("unknown job id " +
                                   std::to_string(job_id)));
      } else if (ready) {
        // Serialization stays off conn->mu (large tables must not stall
        // dispatch).
        Send(conn, wire::MsgType::kResult, frame.request_id,
             ResultPayload(ready_handle));
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.results_sent;
      }
      // else: the watcher answers when the job completes.
      return true;
    }
    case wire::MsgType::kRegisterDataset:
      HandleRegisterDataset(conn, frame);
      return true;
    case wire::MsgType::kRegisterHypotheses:
      HandleRegisterHypotheses(conn, frame);
      return true;
    case wire::MsgType::kStats: {
      const SchedulerStats sched = session_->scheduler().stats();
      wire::ServerStatsWire s;
      s.jobs_scheduled = sched.jobs_scheduled;
      s.groups_formed = sched.groups_formed;
      s.jobs_coscheduled = sched.jobs_coscheduled;
      s.scan_extractions = sched.scan_extractions;
      s.scan_shared_hits = sched.scan_shared_hits;
      s.dedup_followers = sched.dedup_followers;
      s.dedup_promotions = sched.dedup_promotions;
      s.admission_rejections = sched.admission_rejections;
      s.result_cache_hits = sched.result_cache_hits;
      s.result_cache_misses = sched.result_cache_misses;
      s.result_cache_persistent_hits = sched.result_cache_persistent_hits;
      s.inflight_jobs = sched.snapshot.inflight_jobs;
      s.active_jobs = sched.snapshot.active_jobs;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        s.connections_accepted = stats_.connections_accepted;
        s.connections_active = stats_.connections_active;
        s.frames_received = stats_.frames_received;
        s.frames_sent = stats_.frames_sent;
        s.protocol_errors = stats_.protocol_errors;
        s.submits = stats_.submits;
      }
      s.catalog_version = session_->catalog_version();
      s.draining = draining_.load(std::memory_order_acquire) ? 1 : 0;
      wire::Writer w;
      wire::EncodeServerStats(s, &w);
      Send(conn, wire::MsgType::kStatsOk, frame.request_id, w.bytes());
      return true;
    }
    case wire::MsgType::kMetrics: {
      // Payload: one format byte (0 = Prometheus text, 1 = JSON). An
      // empty payload defaults to Prometheus.
      uint8_t format = 0;
      if (!frame.payload.empty()) {
        wire::Reader r(frame.payload);
        format = r.U8();
        if (!r.ok() || !r.exhausted() || format > 1) {
          SendError(conn, frame.request_id,
                    Status::DataLoss("malformed Metrics payload"));
          return true;
        }
      }
      // Refresh store-occupancy gauges + mmap-hit counter so the scrape
      // reflects the store's current state, not the last publish.
      PublishStoreMetrics(session_);
      const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
      wire::Writer w;
      w.U8(format);
      w.Str(format == 1 ? RenderJson(snapshot) : RenderPrometheus(snapshot));
      Send(conn, wire::MsgType::kMetricsOk, frame.request_id, w.bytes());
      return true;
    }
    case wire::MsgType::kExplain: {
      // Payload: one flags byte (bit 0 = ANALYZE, bit 1 = JSON output)
      // followed by an encoded InspectRequest. ANALYZE runs the job to
      // completion on this connection's frame loop — an introspection
      // RPC, not a throughput path.
      wire::Reader r(frame.payload);
      const uint8_t flags = r.U8();
      InspectRequest request;
      if (!r.ok() || flags > 3 ||
          !wire::DecodeInspectRequest(&r, &request) || !r.exhausted()) {
        SendError(conn, frame.request_id,
                  Status::DataLoss("malformed Explain payload"));
        return true;
      }
      const bool analyze = (flags & 1) != 0;
      const bool as_json = (flags & 2) != 0;
      Result<InspectionPlan> plan = analyze
                                        ? session_->ExplainAnalyze(request)
                                        : session_->Explain(request);
      if (!plan.ok()) {
        SendError(conn, frame.request_id, plan.status());
        return true;
      }
      wire::Writer w;
      w.U8(flags);
      w.Str(as_json ? plan->ToJson() : plan->ToText());
      Send(conn, wire::MsgType::kExplainOk, frame.request_id, w.bytes());
      return true;
    }
    case wire::MsgType::kStatusz: {
      // Payload: one format byte (0 = text, 1 = JSON); empty = text.
      uint8_t format = 0;
      if (!frame.payload.empty()) {
        wire::Reader r(frame.payload);
        format = r.U8();
        if (!r.ok() || !r.exhausted() || format > 1) {
          SendError(conn, frame.request_id,
                    Status::DataLoss("malformed Statusz payload"));
          return true;
        }
      }
      wire::Writer w;
      w.U8(format);
      w.Str(RenderStatusz(session_, format == 1));
      Send(conn, wire::MsgType::kStatuszOk, frame.request_id, w.bytes());
      return true;
    }
    default: {
      Metrics().protocol_errors->Inc();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      SendError(conn, frame.request_id,
                Status::NotImplemented(
                    "unknown message type " +
                    std::to_string(static_cast<int>(frame.type))));
      return true;
    }
  }
}

void InspectionServer::ServeConnection(
    const std::shared_ptr<Connection>& conn) {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closing || conn->broken) break;
    }
    wire::Frame frame;
    const Status st =
        wire::ReadFrame(conn->fd, &frame, config_.max_frame_bytes);
    if (!st.ok()) {
      if (st.code() == StatusCode::kDataLoss) {
        // Malformed input: tell the client why (best effort) and close —
        // stream framing can no longer be trusted.
        Metrics().protocol_errors->Inc();
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.protocol_errors;
        }
        SendError(conn, 0, st);
      }
      break;
    }
    Metrics().frames_received->Inc();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_received;
    }
    if (!HandleFrame(conn, frame)) break;
  }
  // Teardown. If the client hung up on its own (not a server-initiated
  // drain), cancel its unfinished jobs: nobody is listening for results,
  // and cancellation frees engine capacity (dedup waiters detach without
  // disturbing their leader).
  bool server_initiated;
  std::vector<JobHandle> to_cancel;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    server_initiated = conn->closing;
    conn->closing = true;
    if (!server_initiated) {
      for (auto& [id, job] : conn->jobs) {
        if (!job.result_sent) to_cancel.push_back(job.handle);
      }
    }
  }
  conn->cv.notify_all();
  for (JobHandle& handle : to_cancel) handle.Cancel();
  // Half-close first: the watcher may still be mid-send on this fd;
  // the real close() below happens only after the watcher is joined.
  ::shutdown(conn->fd, SHUT_RDWR);
  Metrics().connections_active->Sub(1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (stats_.connections_active > 0) --stats_.connections_active;
  }
  // Reclaim the connection here if Shutdown() has not already taken
  // ownership (presence in conns_, under the mutex, decides): join the
  // watcher, close the fd, free the jobs map (it pins ResultTables), and
  // park this thread's own handle in zombies_ for the accept loop or
  // Shutdown to join.
  bool owns = false;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = std::find(conns_.begin(), conns_.end(), conn);
    if (it != conns_.end()) {
      conns_.erase(it);
      zombies_.push_back(conn);
      owns = true;
    }
  }
  if (owns) {
    if (conn->watcher.joinable()) conn->watcher.join();
    ::close(conn->fd);
    conn->fd = -1;
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->jobs.clear();
  }
}

void InspectionServer::ReapZombies() {
  std::vector<std::shared_ptr<Connection>> zombies;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    zombies.swap(zombies_);
  }
  for (const auto& conn : zombies) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->watcher.joinable()) conn->watcher.join();
  }
}

void InspectionServer::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  // Stop the listener; accept() unblocks with an error.
  ::shutdown(listen_fd_, SHUT_RDWR);

  // Drain: every tracked job on every live connection must reach a
  // terminal state and have its result pushed. Jobs on dead/broken
  // connections are skipped (their cancellation is already in flight).
  while (true) {
    bool pending = false;
    {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      for (const auto& conn : conns_) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->closing || conn->broken) continue;
        if (conn->submits_in_progress > 0) {
          pending = true;
          break;
        }
        for (const auto& [id, job] : conn->jobs) {
          if (!job.result_sent) {
            pending = true;
            break;
          }
        }
        if (pending) break;
      }
    }
    if (!pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Now tear everything down.
  closing_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closing = true;
    }
    conn->cv.notify_all();
    ::shutdown(conn->fd, SHUT_RDWR);
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->watcher.joinable()) conn->watcher.join();
    ::close(conn->fd);
  }
  // Connections their own readers already tore down (client hangups).
  ReapZombies();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

ServerStats InspectionServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace deepbase
