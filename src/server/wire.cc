#include "server/wire.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "hypothesis/iterators.h"
#include "util/failpoint.h"

namespace deepbase {
namespace wire {

// Writer / Reader live in util/codec.{h,cc}; wire.h re-exports them.

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

std::string EncodeFrame(MsgType type, uint64_t request_id,
                        const std::string& payload) {
  Writer w;
  w.U32(kMagic);
  w.U16(kProtocolVersion);
  w.U16(static_cast<uint16_t>(type));
  w.U64(request_id);
  w.U32(static_cast<uint32_t>(payload.size()));
  std::string out = w.Take();
  out.append(payload);
  return out;
}

namespace {

/// Full read of `n` bytes; false on EOF/error. `*clean_eof` reports an
/// EOF that arrived exactly on a frame boundary (a normal hangup).
bool ReadFully(int fd, char* buf, size_t n, bool* clean_eof) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) {
      if (clean_eof != nullptr) *clean_eof = (got == 0);
      return false;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (clean_eof != nullptr) *clean_eof = false;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

Status ReadFrame(int fd, Frame* frame, size_t max_frame_bytes) {
  DB_FAILPOINT("wire.read_frame");
  char header[kHeaderBytes];
  bool clean_eof = false;
  if (!ReadFully(fd, header, kHeaderBytes, &clean_eof)) {
    return clean_eof ? Status::IOError("connection closed")
                     : Status::IOError("truncated frame header");
  }
  const std::string header_str(header, kHeaderBytes);
  Reader r(header_str);
  const uint32_t magic = r.U32();
  const uint16_t version = r.U16();
  const uint16_t type = r.U16();
  frame->request_id = r.U64();
  const uint32_t payload_len = r.U32();
  if (magic != kMagic) {
    return Status::DataLoss("bad frame magic");
  }
  if (version != kProtocolVersion) {
    return Status::DataLoss("unsupported protocol version " +
                            std::to_string(version));
  }
  if (payload_len > max_frame_bytes) {
    return Status::DataLoss("frame payload of " +
                            std::to_string(payload_len) +
                            " bytes exceeds the frame limit");
  }
  frame->type = static_cast<MsgType>(type);
  frame->payload.resize(payload_len);
  if (payload_len > 0 &&
      !ReadFully(fd, frame->payload.data(), payload_len, nullptr)) {
    return Status::IOError("truncated frame payload");
  }
  return Status::OK();
}

Status WriteFrame(int fd, MsgType type, uint64_t request_id,
                  const std::string& payload) {
  DB_FAILPOINT("wire.write_frame");
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::Invalid("frame payload too large");
  }
  const std::string bytes = EncodeFrame(type, request_id, payload);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Status payload.
// ---------------------------------------------------------------------------

void EncodeStatus(const Status& status, Writer* w) {
  w->U16(StatusCodeToWire(status.code()));
  w->Str(status.message());
}

Status DecodeStatus(Reader* r) {
  const StatusCode code = StatusCodeFromWire(r->U16());
  std::string message = r->Str();
  if (!r->ok()) return Status::DataLoss("truncated status payload");
  if (code == StatusCode::kOk) return Status::OK();
  // Rebuild through the code so unknown wire values degrade uniformly.
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::Invalid(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
    case StatusCode::kDataLoss:
      return Status::DataLoss(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    default:
      return Status::Internal(std::move(message));
  }
}

// ---------------------------------------------------------------------------
// InspectRequest payload.
// ---------------------------------------------------------------------------

namespace {

void EncodeOptions(const InspectOptions& o, Writer* w) {
  w->U64(o.block_size);
  w->U64(o.shuffle_seed);
  w->U64(o.passes);
  w->U8(o.streaming ? 1 : 0);
  w->U8(o.early_stopping ? 1 : 0);
  w->U8(o.model_merging ? 1 : 0);
  w->F64(o.corr_epsilon);
  w->F64(o.logreg_epsilon);
  w->F64(o.default_epsilon);
  w->U64(o.num_shards);
  w->F64(o.time_budget_s);
  w->U64(o.max_blocks);
  // Deadlines travel as *relative* remaining budget, never as absolute
  // time: steady_clock epochs are per-host and wall clocks may be
  // skewed, so the receiver re-anchors the budget on its own clock at
  // decode time. +inf = no deadline. An already-expired deadline
  // encodes as a non-positive budget and decodes as already expired.
  double deadline_budget_s = std::numeric_limits<double>::infinity();
  if (o.deadline != std::chrono::steady_clock::time_point::max()) {
    deadline_budget_s =
        std::chrono::duration<double>(o.deadline -
                                      std::chrono::steady_clock::now())
            .count();
  }
  w->F64(deadline_budget_s);
}

void DecodeOptions(Reader* r, InspectOptions* o) {
  o->block_size = r->U64();
  o->shuffle_seed = r->U64();
  o->passes = r->U64();
  o->streaming = r->U8() != 0;
  o->early_stopping = r->U8() != 0;
  o->model_merging = r->U8() != 0;
  o->corr_epsilon = r->F64();
  o->logreg_epsilon = r->F64();
  o->default_epsilon = r->F64();
  o->num_shards = r->U64();
  o->time_budget_s = r->F64();
  o->max_blocks = r->U64();
  const double deadline_budget_s = r->F64();
  if (std::isinf(deadline_budget_s) && deadline_budget_s > 0) {
    o->deadline = std::chrono::steady_clock::time_point::max();
  } else {
    // Re-anchor on the local clock; a budget that went non-positive in
    // transit stays expired (clamped to "now").
    o->deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(0.0, deadline_budget_s)));
  }
}

}  // namespace

Status EncodeInspectRequest(const InspectRequest& request, Writer* w) {
  // Only name-resolved requests can travel: a pointer has no identity in
  // another process.
  for (const InspectRequest::ModelRef& ref : request.models) {
    if (ref.extractor != nullptr || ref.name.empty()) {
      return Status::Invalid(
          "remote requests must reference models by catalog name");
    }
  }
  if (!request.hypotheses.empty()) {
    return Status::Invalid(
        "remote requests cannot carry inline hypothesis objects; use "
        "hypothesis_sets (RegisterHypotheses)");
  }
  if (!request.measures.empty()) {
    return Status::Invalid(
        "remote requests cannot carry inline measure objects; use "
        "measure_names");
  }
  if (request.dataset != nullptr) {
    return Status::Invalid(
        "remote requests cannot carry inline datasets; use dataset_name "
        "(RegisterDataset)");
  }
  if (request.dataset_name.empty()) {
    return Status::Invalid("remote requests must name a dataset");
  }
  w->U32(static_cast<uint32_t>(request.models.size()));
  for (const InspectRequest::ModelRef& ref : request.models) {
    w->Str(ref.name);
    w->U64(ref.group_by_layer);
    w->U32(static_cast<uint32_t>(ref.groups.size()));
    for (const UnitGroupSpec& group : ref.groups) {
      w->Str(group.group_id);
      w->U32(static_cast<uint32_t>(group.unit_ids.size()));
      for (int id : group.unit_ids) w->U32(static_cast<uint32_t>(id));
    }
  }
  w->StrList(request.hypothesis_sets);
  w->StrList(request.hypothesis_filter);
  w->Str(request.dataset_name);
  w->StrList(request.measure_names);
  w->U8(request.min_abs_unit_score.has_value() ? 1 : 0);
  if (request.min_abs_unit_score.has_value()) {
    w->F32(*request.min_abs_unit_score);
  }
  w->U8(request.options.has_value() ? 1 : 0);
  if (request.options.has_value()) EncodeOptions(*request.options, w);
  return Status::OK();
}

bool DecodeInspectRequest(Reader* r, InspectRequest* request) {
  const uint32_t n_models = r->U32();
  for (uint32_t m = 0; m < n_models && r->ok(); ++m) {
    InspectRequest::ModelRef ref;
    ref.name = r->Str();
    ref.group_by_layer = r->U64();
    const uint32_t n_groups = r->U32();
    for (uint32_t g = 0; g < n_groups && r->ok(); ++g) {
      UnitGroupSpec group;
      group.group_id = r->Str();
      const uint32_t n_units = r->U32();
      for (uint32_t u = 0; u < n_units && r->ok(); ++u) {
        group.unit_ids.push_back(static_cast<int>(r->U32()));
      }
      ref.groups.push_back(std::move(group));
    }
    request->models.push_back(std::move(ref));
  }
  request->hypothesis_sets = r->StrList();
  request->hypothesis_filter = r->StrList();
  request->dataset_name = r->Str();
  request->measure_names = r->StrList();
  if (r->U8() != 0) request->min_abs_unit_score = r->F32();
  if (r->U8() != 0) {
    InspectOptions options;
    DecodeOptions(r, &options);
    request->options = options;
  }
  return r->ok();
}

// ---------------------------------------------------------------------------
// Dataset payload.
// ---------------------------------------------------------------------------

void EncodeDataset(const Dataset& dataset, Writer* w) {
  w->U64(dataset.ns());
  w->U32(static_cast<uint32_t>(dataset.num_records()));
  for (const Record& rec : dataset.records()) {
    w->StrList(rec.tokens);
    w->U32(static_cast<uint32_t>(rec.annotations.size()));
    for (const auto& [track, values] : rec.annotations) {
      w->Str(track);
      w->StrList(values);
    }
  }
}

bool DecodeDataset(Reader* r, Dataset* dataset) {
  const uint64_t ns = r->U64();
  if (!r->ok() || ns == 0 || ns > (1u << 20)) return false;
  *dataset = Dataset(Vocab(), ns);
  const uint32_t n_records = r->U32();
  for (uint32_t i = 0; i < n_records && r->ok(); ++i) {
    Record rec;
    rec.tokens = r->StrList();
    rec.ids.reserve(rec.tokens.size());
    for (const std::string& tok : rec.tokens) {
      rec.ids.push_back(dataset->mutable_vocab()->Add(tok));
    }
    const uint32_t n_tracks = r->U32();
    for (uint32_t t = 0; t < n_tracks && r->ok(); ++t) {
      std::string track = r->Str();
      rec.annotations[std::move(track)] = r->StrList();
    }
    if (r->ok()) dataset->Add(std::move(rec));
  }
  return r->ok();
}

// ---------------------------------------------------------------------------
// Hypothesis specs.
// ---------------------------------------------------------------------------

void EncodeHypothesisSpec(const HypothesisSpec& spec, Writer* w) {
  w->U8(static_cast<uint8_t>(spec.kind));
  w->Str(spec.a);
  w->Str(spec.b);
  w->StrList(spec.labels);
}

bool DecodeHypothesisSpec(Reader* r, HypothesisSpec* spec) {
  const uint8_t kind = r->U8();
  if (kind > static_cast<uint8_t>(HypothesisSpec::Kind::kCharClass)) {
    return false;
  }
  spec->kind = static_cast<HypothesisSpec::Kind>(kind);
  spec->a = r->Str();
  spec->b = r->Str();
  spec->labels = r->StrList();
  return r->ok();
}

Result<HypothesisPtr> BuildHypothesis(const HypothesisSpec& spec) {
  switch (spec.kind) {
    case HypothesisSpec::Kind::kKeyword:
      if (spec.a.empty()) return Status::Invalid("keyword spec: empty keyword");
      return HypothesisPtr(std::make_shared<KeywordHypothesis>(spec.a));
    case HypothesisSpec::Kind::kAnnotation:
      if (spec.a.empty()) return Status::Invalid("annotation spec: no track");
      return HypothesisPtr(
          std::make_shared<AnnotationHypothesis>(spec.a, spec.b));
    case HypothesisSpec::Kind::kMultiClassAnnotation:
      if (spec.a.empty() || spec.labels.empty()) {
        return Status::Invalid("multi-class spec: track and labels required");
      }
      return HypothesisPtr(std::make_shared<MultiClassAnnotationHypothesis>(
          spec.a, spec.labels));
    case HypothesisSpec::Kind::kCharClass:
      if (spec.a.empty() || spec.b.empty()) {
        return Status::Invalid("char-class spec: name and chars required");
      }
      return HypothesisPtr(
          std::make_shared<CharClassHypothesis>(spec.a, spec.b));
  }
  return Status::Invalid("unknown hypothesis spec kind");
}

// ---------------------------------------------------------------------------
// Progress / result summary / stats payloads.
// ---------------------------------------------------------------------------

void EncodeJobProgress(const JobProgressWire& progress, Writer* w) {
  w->U8(progress.status);
  w->U64(progress.blocks_completed);
  w->U64(progress.blocks_total);
  w->U64(progress.records_processed);
}

bool DecodeJobProgress(Reader* r, JobProgressWire* progress) {
  progress->status = r->U8();
  progress->blocks_completed = r->U64();
  progress->blocks_total = r->U64();
  progress->records_processed = r->U64();
  return r->ok();
}

void EncodeResultSummary(const ResultSummaryWire& summary, Writer* w) {
  w->U64(summary.blocks_processed);
  w->U64(summary.dedup_hits);
  w->U64(summary.result_cache_hits);
  w->U64(summary.scan_shared_hits);
  w->F64(summary.total_s);
  w->U64(summary.trace_id);
  w->F64(summary.queue_s);
  w->F64(summary.extract_s);
  w->F64(summary.score_s);
  w->F64(summary.merge_s);
  w->F64(summary.wire_s);
  w->F64(summary.worker_hop_s);
}

bool DecodeResultSummary(Reader* r, ResultSummaryWire* summary) {
  summary->blocks_processed = r->U64();
  summary->dedup_hits = r->U64();
  summary->result_cache_hits = r->U64();
  summary->scan_shared_hits = r->U64();
  summary->total_s = r->F64();
  summary->trace_id = r->U64();
  summary->queue_s = r->F64();
  summary->extract_s = r->F64();
  summary->score_s = r->F64();
  summary->merge_s = r->F64();
  summary->wire_s = r->F64();
  summary->worker_hop_s = r->F64();
  return r->ok();
}

void EncodeServerStats(const ServerStatsWire& stats, Writer* w) {
  w->U64(stats.jobs_scheduled);
  w->U64(stats.groups_formed);
  w->U64(stats.jobs_coscheduled);
  w->U64(stats.scan_extractions);
  w->U64(stats.scan_shared_hits);
  w->U64(stats.dedup_followers);
  w->U64(stats.dedup_promotions);
  w->U64(stats.admission_rejections);
  w->U64(stats.result_cache_hits);
  w->U64(stats.result_cache_misses);
  w->U64(stats.result_cache_persistent_hits);
  w->U64(stats.inflight_jobs);
  w->U64(stats.active_jobs);
  w->U64(stats.connections_accepted);
  w->U64(stats.connections_active);
  w->U64(stats.frames_received);
  w->U64(stats.frames_sent);
  w->U64(stats.protocol_errors);
  w->U64(stats.submits);
  w->U64(stats.catalog_version);
  w->U8(stats.draining);
}

bool DecodeServerStats(Reader* r, ServerStatsWire* stats) {
  stats->jobs_scheduled = r->U64();
  stats->groups_formed = r->U64();
  stats->jobs_coscheduled = r->U64();
  stats->scan_extractions = r->U64();
  stats->scan_shared_hits = r->U64();
  stats->dedup_followers = r->U64();
  stats->dedup_promotions = r->U64();
  stats->admission_rejections = r->U64();
  stats->result_cache_hits = r->U64();
  stats->result_cache_misses = r->U64();
  stats->result_cache_persistent_hits = r->U64();
  stats->inflight_jobs = r->U64();
  stats->active_jobs = r->U64();
  stats->connections_accepted = r->U64();
  stats->connections_active = r->U64();
  stats->frames_received = r->U64();
  stats->frames_sent = r->U64();
  stats->protocol_errors = r->U64();
  stats->submits = r->U64();
  stats->catalog_version = r->U64();
  stats->draining = r->U8();
  return r->ok();
}

// ---------------------------------------------------------------------------
// Cluster payloads.
// ---------------------------------------------------------------------------

void EncodeWorkerHello(const WorkerHelloWire& hello, Writer* w) {
  w->U16(hello.protocol_version);
  w->Str(hello.worker_id);
  w->U64(hello.catalog_version);
  w->U32(hello.num_threads);
}

bool DecodeWorkerHello(Reader* r, WorkerHelloWire* hello) {
  hello->protocol_version = r->U16();
  hello->worker_id = r->Str();
  hello->catalog_version = r->U64();
  hello->num_threads = r->U32();
  return r->ok() && !hello->worker_id.empty();
}

Status EncodeAssignment(const AssignmentWire& assignment, Writer* w) {
  w->U64(assignment.assignment_id);
  w->U8(static_cast<uint8_t>(assignment.mode));
  w->U32(assignment.total_shards);
  w->U32(assignment.shard_lo);
  w->U32(assignment.shard_hi);
  w->U64(assignment.trace_id);
  w->U64(assignment.parent_span);
  return EncodeInspectRequest(assignment.request, w);
}

bool DecodeAssignment(Reader* r, AssignmentWire* assignment) {
  assignment->assignment_id = r->U64();
  const uint8_t mode = r->U8();
  if (mode > static_cast<uint8_t>(AssignmentWire::Mode::kWhole)) return false;
  assignment->mode = static_cast<AssignmentWire::Mode>(mode);
  assignment->total_shards = r->U32();
  assignment->shard_lo = r->U32();
  assignment->shard_hi = r->U32();
  assignment->trace_id = r->U64();
  assignment->parent_span = r->U64();
  if (!DecodeInspectRequest(r, &assignment->request)) return false;
  return r->ok() && assignment->total_shards > 0 &&
         (assignment->mode == AssignmentWire::Mode::kWhole ||
          (assignment->shard_lo < assignment->shard_hi &&
           assignment->shard_hi <= assignment->total_shards));
}

void EncodeTraceSpans(const std::vector<TraceSpan>& spans, Writer* w) {
  w->U32(static_cast<uint32_t>(spans.size()));
  for (const TraceSpan& span : spans) {
    w->U64(span.span_id);
    w->U64(span.parent_id);
    w->Str(span.name);
    w->U64(static_cast<uint64_t>(span.start_ns));
    w->U64(static_cast<uint64_t>(span.duration_ns));
    w->Str(span.tags);
  }
}

bool DecodeTraceSpans(Reader* r, std::vector<TraceSpan>* spans) {
  const uint32_t n = r->U32();
  spans->clear();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    TraceSpan span;
    span.span_id = r->U64();
    span.parent_id = r->U64();
    span.name = r->Str();
    span.start_ns = static_cast<int64_t>(r->U64());
    span.duration_ns = static_cast<int64_t>(r->U64());
    span.tags = r->Str();
    spans->push_back(std::move(span));
  }
  return r->ok();
}

void EncodeAssignResult(const AssignResultWire& result, Writer* w) {
  w->U64(result.assignment_id);
  EncodeStatus(result.status, w);
  w->U8(static_cast<uint8_t>(result.mode));
  if (result.status.ok()) {
    if (result.mode == AssignmentWire::Mode::kSliced) {
      w->StrList(result.pair_states);
    } else {
      w->Str(result.table_bytes);
    }
  }
  w->U64(result.blocks_processed);
  w->U64(result.records_processed);
  w->U8(result.all_converged);
  w->U64(static_cast<uint64_t>(result.run_ns));
  EncodeTraceSpans(result.spans, w);
}

bool DecodeAssignResult(Reader* r, AssignResultWire* result) {
  result->assignment_id = r->U64();
  result->status = DecodeStatus(r);
  const uint8_t mode = r->U8();
  if (mode > static_cast<uint8_t>(AssignmentWire::Mode::kWhole)) return false;
  result->mode = static_cast<AssignmentWire::Mode>(mode);
  if (result->status.ok()) {
    if (result->mode == AssignmentWire::Mode::kSliced) {
      result->pair_states = r->StrList();
    } else {
      result->table_bytes = r->Str();
    }
  }
  result->blocks_processed = r->U64();
  result->records_processed = r->U64();
  result->all_converged = r->U8();
  result->run_ns = static_cast<int64_t>(r->U64());
  if (!DecodeTraceSpans(r, &result->spans)) return false;
  return r->ok();
}

void EncodeWorkerProgress(const WorkerProgressWire& progress, Writer* w) {
  w->U64(progress.assignment_id);
  w->U64(progress.blocks_processed);
  w->U64(progress.records_processed);
}

bool DecodeWorkerProgress(Reader* r, WorkerProgressWire* progress) {
  progress->assignment_id = r->U64();
  progress->blocks_processed = r->U64();
  progress->records_processed = r->U64();
  return r->ok();
}

void EncodeStoreKeymap(const StoreKeymapWire& keymap, Writer* w) {
  w->U32(static_cast<uint32_t>(keymap.placements.size()));
  for (const auto& [key, owner] : keymap.placements) {
    w->Str(key);
    w->Str(owner);
  }
}

bool DecodeStoreKeymap(Reader* r, StoreKeymapWire* keymap) {
  const uint32_t n = r->U32();
  keymap->placements.clear();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    std::string key = r->Str();
    std::string owner = r->Str();
    keymap->placements.emplace_back(std::move(key), std::move(owner));
  }
  return r->ok();
}

}  // namespace wire
}  // namespace deepbase
