#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "util/failpoint.h"
#include "util/rng.h"
#include "util/trace.h"

namespace deepbase {

namespace {

JobStatus JobStatusFromWire(uint8_t value) {
  switch (value) {
    case 0:
      return JobStatus::kQueued;
    case 1:
      return JobStatus::kRunning;
    case 2:
      return JobStatus::kDone;
    case 3:
      return JobStatus::kCancelled;
    default:
      return JobStatus::kDone;
  }
}

RemoteProgress ProgressFromWire(const wire::JobProgressWire& p) {
  RemoteProgress out;
  out.status = JobStatusFromWire(p.status);
  out.blocks_completed = p.blocks_completed;
  out.blocks_total = p.blocks_total;
  out.records_processed = p.records_processed;
  return out;
}

/// Terminal state backing default-constructed (invalid) handles, so every
/// RemoteJob member is safe to call (the JobHandle idiom).
internal::RemoteJobState& InvalidRemoteJobState() {
  static internal::RemoteJobState* state = [] {
    auto* s = new internal::RemoteJobState();
    s->done = true;
    s->result = Status::Invalid("invalid remote job handle");
    return s;
  }();
  return *state;
}

}  // namespace

// ---------------------------------------------------------------------------
// RemoteJob.
// ---------------------------------------------------------------------------

uint64_t RemoteJob::id() const {
  return state_ != nullptr
             ? state_->server_job_id.load(std::memory_order_relaxed)
             : 0;
}

RemoteProgress RemoteJob::LastProgress() const {
  internal::RemoteJobState& state =
      state_ != nullptr ? *state_ : InvalidRemoteJobState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.last_progress;
}

const Result<ResultTable>& RemoteJob::Wait() const {
  internal::RemoteJobState& state =
      state_ != nullptr ? *state_ : InvalidRemoteJobState();
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.done; });
  return *state.result;
}

bool RemoteJob::Done() const {
  internal::RemoteJobState& state =
      state_ != nullptr ? *state_ : InvalidRemoteJobState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.done;
}

wire::ResultSummaryWire RemoteJob::Summary() const {
  internal::RemoteJobState& state =
      state_ != nullptr ? *state_ : InvalidRemoteJobState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.summary;
}

Result<RemoteProgress> RemoteJob::Poll() {
  if (state_ == nullptr || client_ == nullptr) {
    return Status::Invalid("invalid remote job handle");
  }
  wire::Writer w;
  w.U64(state_->server_job_id);
  Result<wire::Frame> reply =
      client_->Call(wire::MsgType::kPoll, w.bytes());
  if (!reply.ok()) return reply.status();
  wire::Reader r(reply->payload);
  wire::JobProgressWire p;
  if (reply->type != wire::MsgType::kPollOk ||
      !wire::DecodeJobProgress(&r, &p)) {
    return Status::DataLoss("malformed Poll response");
  }
  return ProgressFromWire(p);
}

Status RemoteJob::Cancel() {
  if (state_ == nullptr || client_ == nullptr) {
    return Status::Invalid("invalid remote job handle");
  }
  wire::Writer w;
  w.U64(state_->server_job_id);
  Result<wire::Frame> reply =
      client_->Call(wire::MsgType::kCancel, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply->type != wire::MsgType::kCancelOk) {
    return Status::DataLoss("malformed Cancel response");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// InspectionClient: connection lifecycle.
// ---------------------------------------------------------------------------

InspectionClient::InspectionClient(ClientConfig config)
    : config_(std::move(config)) {}

InspectionClient::~InspectionClient() { Close(); }

bool InspectionClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connected_;
}

uint64_t InspectionClient::server_catalog_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return server_catalog_version_;
}

Status InspectionClient::ConnectLocked() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("bad host address: " + config_.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Handshake happens synchronously, before the reader thread exists, so
  // the reply can be read directly off the socket.
  wire::Writer hello;
  hello.U16(wire::kProtocolVersion);
  Status st = wire::WriteFrame(fd, wire::MsgType::kHello, 0, hello.bytes());
  wire::Frame reply;
  if (st.ok()) st = wire::ReadFrame(fd, &reply, config_.max_frame_bytes);
  if (st.ok() && reply.type == wire::MsgType::kError) {
    wire::Reader r(reply.payload);
    st = wire::DecodeStatus(&r);
    if (st.ok()) st = Status::DataLoss("handshake rejected");
  } else if (st.ok() && reply.type != wire::MsgType::kHelloOk) {
    st = Status::DataLoss("unexpected handshake response");
  }
  if (st.ok()) {
    wire::Reader r(reply.payload);
    const uint16_t server_version = r.U16();
    const uint64_t catalog_version = r.U64();
    if (!r.ok() || server_version != wire::kProtocolVersion) {
      st = Status::DataLoss("unsupported server protocol version");
    } else {
      server_catalog_version_ = catalog_version;
    }
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  fd_ = fd;
  connected_ = true;
  reader_ = std::thread([this, fd] { ReaderLoop(fd); });
  return Status::OK();
}

Status InspectionClient::Connect() {
  // Misconfigured timeouts surface here, before any socket exists: a
  // nonpositive RPC timeout would fail every call, and negative backoffs
  // are sleep_for UB.
  if (!(config_.rpc_timeout_s > 0)) {
    return Status::Invalid("ClientConfig.rpc_timeout_s must be positive, "
                           "got " + std::to_string(config_.rpc_timeout_s));
  }
  if (config_.reconnect_backoff_s < 0) {
    return Status::Invalid("ClientConfig.reconnect_backoff_s must be "
                           "non-negative, got " +
                           std::to_string(config_.reconnect_backoff_s));
  }
  if (config_.resubmit_backoff_s < 0) {
    return Status::Invalid("ClientConfig.resubmit_backoff_s must be "
                           "non-negative, got " +
                           std::to_string(config_.resubmit_backoff_s));
  }
  return ConnectInternal(/*reset_closing=*/true);
}

Status InspectionClient::ConnectInternal(bool reset_closing) {
  // Join a reader left over from a dead connection before reconnecting
  // (it cannot join itself when it detects EOF).
  std::thread stale;
  int stale_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A user-initiated Connect() reopens a Close()d client (and resumes
    // the resubmission service); the resubmit worker's internal reconnect
    // must instead respect an in-progress Close, or it would revive the
    // connection Close is tearing down.
    if (reset_closing) closing_ = false;
    if (closing_) return Status::IOError("client closed");
    if (connected_) return Status::OK();
    if (reader_.joinable()) {
      stale = std::move(reader_);
      stale_fd = fd_;
    }
  }
  if (stale_fd >= 0) {
    // The old reader may still be parked in ReadFrame on a socket whose
    // write side failed (half-broken peer, or an injected write fault):
    // shut the socket down first so the join below cannot wait on a read
    // that will never return. fd_ is left pointing at the stale socket so
    // the woken reader recognizes the loss as its own connection and runs
    // the full teardown (fail pending RPCs, orphan replayable jobs).
    ::shutdown(stale_fd, SHUT_RDWR);
  }
  if (stale.joinable()) stale.join();
  if (stale_fd >= 0) {
    // Exclude concurrent writers before the descriptor number can be
    // recycled by the reconnect's socket().
    std::lock_guard<std::mutex> write_lock(write_mu_);
    ::close(stale_fd);
  }

  Status st = Status::IOError("no connection attempts configured");
  for (size_t attempt = 0; attempt <= config_.reconnect_attempts;
       ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closing_) return Status::IOError("client closed");
      if (connected_) return Status::OK();
      st = ConnectLocked();
      if (st.ok()) return st;
    }
    if (attempt < config_.reconnect_attempts &&
        config_.reconnect_backoff_s > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(config_.reconnect_backoff_s));
    }
  }
  return st;
}

void InspectionClient::FailAllLocked(const Status& reason) {
  for (auto& [id, rpc] : pending_) {
    std::lock_guard<std::mutex> lock(rpc->mu);
    rpc->transport = reason;
    rpc->done = true;
    rpc->cv.notify_all();
  }
  pending_.clear();
  for (auto& [id, job] : jobs_) {
    ResolveJob(job, reason, {});
  }
  jobs_.clear();
}

void InspectionClient::CloseLocked(const Status& reason) {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  connected_ = false;
  FailAllLocked(reason);
}

void InspectionClient::Close() {
  std::thread reader;
  std::thread resubmitter;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closing_ = true;
    // Jobs queued for replay resolve now — there will be no reconnect to
    // replay them on.
    for (const auto& job : orphans_) {
      ResolveJob(job, Status::IOError("client closed"), {});
    }
    orphans_.clear();
    resubmit_cv_.notify_all();
    CloseLocked(Status::IOError("client closed"));
    reader = std::move(reader_);
    resubmitter = std::move(resubmit_);
    fd = fd_;
    fd_ = -1;
  }
  if (reader.joinable()) reader.join();
  if (resubmitter.joinable()) resubmitter.join();
  if (fd >= 0) {
    // Same descriptor-recycling guard as Connect(): no concurrent
    // WriteFrame may straddle the close.
    std::lock_guard<std::mutex> write_lock(write_mu_);
    ::close(fd);
  }
}

void InspectionClient::ResolveJob(
    const std::shared_ptr<internal::RemoteJobState>& job,
    Result<ResultTable> result, const wire::ResultSummaryWire& summary) {
  std::lock_guard<std::mutex> lock(job->mu);
  if (job->done) return;
  job->summary = summary;
  job->result = std::move(result);
  job->done = true;
  job->cv.notify_all();
}

// ---------------------------------------------------------------------------
// Reader: demultiplex responses and pushed events.
// ---------------------------------------------------------------------------

void InspectionClient::ReaderLoop(int fd) {
  while (true) {
    wire::Frame frame;
    Status st = Status::OK();
    if (failpoint::Armed()) {
      // A client-side read fault is indistinguishable from a dead server
      // connection; the injected error drives the whole loss/reconnect/
      // resubmit path below. (Deliberately client-scoped: a shared
      // "wire.read_frame" fault would also hit server/worker readers.)
      st = failpoint::Evaluate("client.read_frame");
    }
    if (st.ok()) st = wire::ReadFrame(fd, &frame, config_.max_frame_bytes);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (fd == fd_) {
        // The live connection died under us: every parked caller learns
        // now instead of hanging (server-side, the disconnect cancels our
        // jobs). A stale fd means Close()/reconnect already cleaned up.
        connected_ = false;
        // Acked submissions are replayable: pull them out of jobs_ before
        // FailAllLocked so their handles survive the loss and resolve
        // with the job's real result after the background resubmission.
        std::vector<std::shared_ptr<internal::RemoteJobState>> replayable;
        if (config_.auto_reconnect && config_.resubmit_attempts > 0 &&
            !closing_) {
          for (auto it = jobs_.begin(); it != jobs_.end();) {
            const std::shared_ptr<internal::RemoteJobState>& job =
                it->second;
            bool can_replay = false;
            {
              std::lock_guard<std::mutex> job_lock(job->mu);
              can_replay = !job->submit_payload.empty() && !job->done;
            }
            if (can_replay) {
              // A job the worker already owns (second loss mid-replay)
              // must not enqueue twice; it is still unhooked from jobs_.
              if (!job->resubmitting) replayable.push_back(job);
              it = jobs_.erase(it);
            } else {
              ++it;
            }
          }
        }
        FailAllLocked(Status::IOError("connection lost (" +
                                      std::string(StatusCodeName(st.code())) +
                                      ": " + st.message() + ")"));
        if (!replayable.empty()) {
          for (auto& job : replayable) orphans_.push_back(std::move(job));
          if (!resubmit_.joinable()) {
            resubmit_ = std::thread([this] { ResubmitLoop(); });
          }
          resubmit_cv_.notify_all();
        }
      }
      return;
    }
    std::shared_ptr<PendingRpc> rpc;
    std::shared_ptr<internal::RemoteJobState> job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (frame.type == wire::MsgType::kEventProgress) {
        auto it = jobs_.find(frame.request_id);
        if (it != jobs_.end()) job = it->second;
      } else {
        auto pit = pending_.find(frame.request_id);
        if (pit != pending_.end()) {
          rpc = pit->second;
          pending_.erase(pit);
          if (rpc->job != nullptr &&
              (frame.type == wire::MsgType::kResult ||
               frame.type == wire::MsgType::kError)) {
            // A Wait RPC response doubles as the job's terminal result.
            job = rpc->job;
            jobs_.erase(job->submit_request_id);
          }
        } else if (frame.type == wire::MsgType::kResult ||
                   frame.type == wire::MsgType::kError) {
          auto jit = jobs_.find(frame.request_id);
          if (jit != jobs_.end()) {
            job = jit->second;
            jobs_.erase(jit);
          }
        }
      }
    }
    if (job != nullptr) {
      if (frame.type == wire::MsgType::kEventProgress) {
        wire::Reader r(frame.payload);
        wire::JobProgressWire p;
        if (wire::DecodeJobProgress(&r, &p)) {
          const RemoteProgress progress = ProgressFromWire(p);
          std::function<void(const RemoteProgress&)> callback;
          {
            std::lock_guard<std::mutex> lock(job->mu);
            job->last_progress = progress;
            callback = job->on_progress;
          }
          if (callback) callback(progress);
        }
      } else if (frame.type == wire::MsgType::kResult) {
        wire::Reader r(frame.payload);
        Status status = wire::DecodeStatus(&r);
        if (status.ok()) {
          const std::string table_bytes = r.Str();
          wire::ResultSummaryWire summary;
          if (!r.ok() || !wire::DecodeResultSummary(&r, &summary)) {
            ResolveJob(job, Status::DataLoss("malformed result frame"), {});
          } else {
            Result<ResultTable> table =
                ResultTable::DeserializeFromString(table_bytes);
            if (table.ok()) {
              ResolveJob(job, std::move(table).ValueOrDie(), summary);
            } else {
              ResolveJob(job, table.status(), {});
            }
          }
        } else {
          ResolveJob(job, status, {});
        }
      } else if (frame.type == wire::MsgType::kError) {
        wire::Reader r(frame.payload);
        Status status = wire::DecodeStatus(&r);
        if (status.ok()) status = Status::Internal("unspecified server error");
        ResolveJob(job, status, {});
      }
    }
    if (rpc != nullptr) {
      std::lock_guard<std::mutex> lock(rpc->mu);
      rpc->frame = frame;
      rpc->done = true;
      rpc->cv.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Resubmission: replay orphaned jobs after a reconnect.
// ---------------------------------------------------------------------------

void InspectionClient::ResubmitLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    resubmit_cv_.wait(lock,
                      [this] { return closing_ || !orphans_.empty(); });
    if (closing_) return;
    std::shared_ptr<internal::RemoteJobState> job =
        std::move(orphans_.front());
    orphans_.pop_front();
    job->resubmitting = true;
    lock.unlock();
    ResubmitJob(job);
    lock.lock();
  }
}

void InspectionClient::ResubmitJob(
    const std::shared_ptr<internal::RemoteJobState>& job) {
  std::string payload;
  uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> job_lock(job->mu);
    payload = job->submit_payload;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed = job->submit_request_id;
  }
  // Deterministic per-job jitter: decorrelates a herd of orphans without
  // introducing run-to-run nondeterminism in tests.
  Rng rng(0x9e3779b97f4a7c15ull ^ seed);
  Status last = Status::IOError("connection lost before resubmission");
  for (size_t attempt = 0; attempt < config_.resubmit_attempts; ++attempt) {
    if (attempt > 0) {
      const double base =
          config_.resubmit_backoff_s *
          static_cast<double>(1ull << std::min<size_t>(attempt - 1, 10));
      std::this_thread::sleep_for(
          std::chrono::duration<double>(base * (0.5 + rng.Uniform())));
    }
    bool already_done = false;
    {
      std::lock_guard<std::mutex> job_lock(job->mu);
      already_done = job->done;  // Close() or a late result resolved it
    }
    if (already_done) {
      std::lock_guard<std::mutex> lock(mu_);
      job->resubmitting = false;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closing_) {
        job->resubmitting = false;
        ResolveJob(job, Status::IOError("client closed"), {});
        return;
      }
    }
    const Status reconnected = ConnectInternal(/*reset_closing=*/false);
    if (!reconnected.ok()) {
      last = reconnected;
      continue;
    }
    // Re-register under a fresh request id and replay the exact encoded
    // submission — same fingerprint server-side, so a still-running (or
    // cached) incarnation of the job is joined, not duplicated.
    std::shared_ptr<PendingRpc> rpc;
    uint64_t request_id = 0;
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!connected_ || closing_) {
        last = Status::IOError("not connected");
        continue;
      }
      request_id = next_request_id_++;
      job->submit_request_id = request_id;
      rpc = std::make_shared<PendingRpc>();
      pending_[request_id] = rpc;
      jobs_[request_id] = job;
      fd = fd_;
    }
    Status sent;
    {
      std::lock_guard<std::mutex> write_lock(write_mu_);
      sent =
          wire::WriteFrame(fd, wire::MsgType::kSubmit, request_id, payload);
    }
    if (!sent.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(request_id);
      auto it = jobs_.find(request_id);
      if (it != jobs_.end() && it->second == job) jobs_.erase(it);
      connected_ = false;
      last = sent;
      continue;
    }
    bool answered = false;
    Status transport;
    wire::Frame frame;
    {
      std::unique_lock<std::mutex> rpc_lock(rpc->mu);
      answered = rpc->cv.wait_for(
          rpc_lock, std::chrono::duration<double>(config_.rpc_timeout_s),
          [&rpc] { return rpc->done; });
      transport = rpc->transport;
      frame = std::move(rpc->frame);
    }
    if (!answered) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(request_id);
      auto it = jobs_.find(request_id);
      if (it != jobs_.end() && it->second == job) jobs_.erase(it);
      last = Status::IOError("resubmit rpc timed out");
      continue;
    }
    if (!transport.ok()) {
      // The connection died again; the reader's loss path unhooked the
      // job (and skipped re-enqueueing it — resubmitting is set). Retry
      // on this budget.
      last = transport;
      continue;
    }
    if (frame.type == wire::MsgType::kSubmitOk) {
      wire::Reader r(frame.payload);
      const uint64_t job_id = r.U64();
      if (r.ok()) {
        job->server_job_id.store(job_id, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        job->resubmitting = false;
        return;  // re-hooked; the pushed result resolves the handle
      }
      last = Status::DataLoss("malformed SubmitOk payload");
    } else if (frame.type == wire::MsgType::kError) {
      // A definitive server answer, not a transport fault: no retry.
      wire::Reader r(frame.payload);
      Status status = wire::DecodeStatus(&r);
      if (status.ok()) status = Status::Internal("unspecified server error");
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(request_id);
        if (it != jobs_.end() && it->second == job) jobs_.erase(it);
        job->resubmitting = false;
      }
      ResolveJob(job, status, {});
      return;
    } else {
      last = Status::DataLoss("unexpected Submit response");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(request_id);
      if (it != jobs_.end() && it->second == job) jobs_.erase(it);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->resubmitting = false;
  }
  ResolveJob(job, last, {});
}

// ---------------------------------------------------------------------------
// RPCs.
// ---------------------------------------------------------------------------

Result<wire::Frame> InspectionClient::CallOnce(
    wire::MsgType type, const std::string& payload, bool* transport_failure,
    std::shared_ptr<internal::RemoteJobState> link_job) {
  *transport_failure = false;
  std::shared_ptr<PendingRpc> rpc;
  uint64_t request_id = 0;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!connected_) {
      *transport_failure = true;
      return Status::IOError("not connected");
    }
    request_id = next_request_id_++;
    rpc = std::make_shared<PendingRpc>();
    rpc->job = std::move(link_job);
    pending_[request_id] = rpc;
    fd = fd_;
  }
  Status sent;
  {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    sent = wire::WriteFrame(fd, type, request_id, payload);
  }
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(request_id);
    connected_ = false;
    *transport_failure = true;
    return sent;
  }
  Status transport;
  wire::Frame frame;
  {
    std::unique_lock<std::mutex> lock(rpc->mu);
    const bool done = rpc->cv.wait_for(
        lock, std::chrono::duration<double>(config_.rpc_timeout_s),
        [&rpc] { return rpc->done; });
    if (!done) {
      // Drop rpc->mu before taking mu_: the reader's failure path
      // (FailAllLocked) holds mu_ while resolving rpc->mu — taking them
      // in the opposite order here would deadlock a timeout racing a
      // connection loss.
      lock.unlock();
      std::lock_guard<std::mutex> plock(mu_);
      pending_.erase(request_id);
      return Status::IOError("rpc timed out after " +
                             std::to_string(config_.rpc_timeout_s) + " s");
    }
    transport = rpc->transport;
    frame = std::move(rpc->frame);
  }
  if (!transport.ok()) {
    *transport_failure = true;
    return transport;
  }
  if (frame.type == wire::MsgType::kError) {
    wire::Reader r(frame.payload);
    Status status = wire::DecodeStatus(&r);
    if (status.ok()) status = Status::Internal("unspecified server error");
    return status;
  }
  return frame;
}

Result<wire::Frame> InspectionClient::Call(wire::MsgType type,
                                           const std::string& payload) {
  if (!connected() && config_.auto_reconnect) {
    DB_RETURN_NOT_OK(Connect());
  }
  bool transport_failure = false;
  Result<wire::Frame> reply = CallOnce(type, payload, &transport_failure);
  if (reply.ok() || !transport_failure || !config_.auto_reconnect) {
    return reply;
  }
  // The connection was found broken: reconnect once and retry.
  DB_RETURN_NOT_OK(Connect());
  return CallOnce(type, payload, &transport_failure);
}

Result<RemoteJob> InspectionClient::Submit(
    const InspectRequest& request,
    std::function<void(const RemoteProgress&)> on_progress) {
  wire::Writer w;
  w.U8(on_progress != nullptr ? 1 : 0);
  // The client mints the trace id so one id spans client-observed latency,
  // server scheduling, and (in clustered setups) worker hops. It lives in
  // the replay payload too, so a resubmitted job keeps its identity.
  w.U64(NewTraceId());
  DB_RETURN_NOT_OK(wire::EncodeInspectRequest(request, &w));
  const std::string payload = w.Take();

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!connected() && config_.auto_reconnect) {
      DB_RETURN_NOT_OK(Connect());
    }
    auto state = std::make_shared<internal::RemoteJobState>();
    state->on_progress = on_progress;
    // Register under the request id before the frame is on the wire, so
    // an early progress event cannot be dropped.
    std::shared_ptr<PendingRpc> rpc;
    uint64_t request_id = 0;
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!connected_) {
        if (config_.auto_reconnect && attempt == 0) continue;
        return Status::IOError("not connected");
      }
      request_id = next_request_id_++;
      state->submit_request_id = request_id;
      rpc = std::make_shared<PendingRpc>();
      pending_[request_id] = rpc;
      jobs_[request_id] = state;
      fd = fd_;
    }
    Status sent;
    {
      std::lock_guard<std::mutex> write_lock(write_mu_);
      sent = wire::WriteFrame(fd, wire::MsgType::kSubmit, request_id,
                              payload);
    }
    bool transport_failure = !sent.ok();
    Status failure = sent;
    if (sent.ok()) {
      std::unique_lock<std::mutex> lock(rpc->mu);
      const bool done = rpc->cv.wait_for(
          lock, std::chrono::duration<double>(config_.rpc_timeout_s),
          [&rpc] { return rpc->done; });
      if (!done) {
        failure = Status::IOError("Submit rpc timed out");
      } else if (!rpc->transport.ok()) {
        transport_failure = true;
        failure = rpc->transport;
      } else if (rpc->frame.type == wire::MsgType::kError) {
        wire::Reader r(rpc->frame.payload);
        Status status = wire::DecodeStatus(&r);
        if (status.ok()) status = Status::Internal("unspecified error");
        failure = status;
      } else if (rpc->frame.type == wire::MsgType::kSubmitOk) {
        wire::Reader r(rpc->frame.payload);
        const uint64_t job_id = r.U64();
        if (r.ok()) {
          {
            std::lock_guard<std::mutex> job_lock(state->mu);
            state->server_job_id = job_id;
            // Acked: from here the job is replayable after a connection
            // loss (the resubmission worker re-sends this exact payload).
            state->submit_payload = payload;
          }
          return RemoteJob(state, this);
        }
        failure = Status::DataLoss("malformed SubmitOk payload");
      } else {
        failure = Status::DataLoss("unexpected Submit response");
      }
    }
    // Failed: unregister this attempt's bookkeeping.
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(request_id);
      jobs_.erase(request_id);
      if (transport_failure) connected_ = false;
    }
    if (!(transport_failure && config_.auto_reconnect && attempt == 0)) {
      return failure;
    }
    DB_RETURN_NOT_OK(Connect());
  }
  return Status::IOError("submit failed after reconnect");
}

Result<ResultTable> InspectionClient::Inspect(const InspectRequest& request) {
  Result<RemoteJob> job = Submit(request);
  if (!job.ok()) return job.status();
  return job->Wait();
}

Result<ResultTable> InspectionClient::WaitResult(const RemoteJob& job) {
  if (!job.valid()) return Status::Invalid("invalid remote job handle");
  wire::Writer w;
  w.U64(job.id());
  bool transport_failure = false;
  Result<wire::Frame> reply =
      CallOnce(wire::MsgType::kWait, w.bytes(), &transport_failure,
               job.state_);
  if (!reply.ok()) return reply.status();
  if (reply->type != wire::MsgType::kResult) {
    return Status::DataLoss("malformed Wait response");
  }
  // The reader resolved the linked job from the same frame.
  return job.Wait();
}

Status InspectionClient::RegisterDataset(const std::string& name,
                                         const Dataset& dataset) {
  wire::Writer w;
  w.Str(name);
  wire::EncodeDataset(dataset, &w);
  Result<wire::Frame> reply =
      Call(wire::MsgType::kRegisterDataset, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply->type != wire::MsgType::kRegisterOk) {
    return Status::DataLoss("malformed RegisterDataset response");
  }
  wire::Reader r(reply->payload);
  const uint64_t version = r.U64();
  if (r.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    server_catalog_version_ = version;
  }
  return Status::OK();
}

Status InspectionClient::RegisterHypotheses(
    const std::string& set_name,
    const std::vector<wire::HypothesisSpec>& specs) {
  wire::Writer w;
  w.Str(set_name);
  w.U32(static_cast<uint32_t>(specs.size()));
  for (const wire::HypothesisSpec& spec : specs) {
    wire::EncodeHypothesisSpec(spec, &w);
  }
  Result<wire::Frame> reply =
      Call(wire::MsgType::kRegisterHypotheses, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply->type != wire::MsgType::kRegisterOk) {
    return Status::DataLoss("malformed RegisterHypotheses response");
  }
  wire::Reader r(reply->payload);
  const uint64_t version = r.U64();
  if (r.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    server_catalog_version_ = version;
  }
  return Status::OK();
}

Result<wire::ServerStatsWire> InspectionClient::Stats() {
  Result<wire::Frame> reply = Call(wire::MsgType::kStats, "");
  if (!reply.ok()) return reply.status();
  wire::Reader r(reply->payload);
  wire::ServerStatsWire stats;
  if (reply->type != wire::MsgType::kStatsOk ||
      !wire::DecodeServerStats(&r, &stats)) {
    return Status::DataLoss("malformed Stats response");
  }
  return stats;
}

Result<std::string> InspectionClient::Metrics(bool json) {
  wire::Writer w;
  w.U8(json ? 1 : 0);
  Result<wire::Frame> reply = Call(wire::MsgType::kMetrics, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply->type != wire::MsgType::kMetricsOk) {
    return Status::DataLoss("malformed Metrics response");
  }
  wire::Reader r(reply->payload);
  r.U8();  // format echo
  std::string text = r.Str();
  if (!r.ok()) return Status::DataLoss("malformed Metrics response");
  return text;
}

Result<std::string> InspectionClient::Explain(const InspectRequest& request,
                                              bool analyze, bool json) {
  wire::Writer w;
  w.U8(static_cast<uint8_t>((analyze ? 1 : 0) | (json ? 2 : 0)));
  DB_RETURN_NOT_OK(wire::EncodeInspectRequest(request, &w));
  Result<wire::Frame> reply = Call(wire::MsgType::kExplain, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply->type != wire::MsgType::kExplainOk) {
    return Status::DataLoss("malformed Explain response");
  }
  wire::Reader r(reply->payload);
  r.U8();  // flags echo
  std::string text = r.Str();
  if (!r.ok()) return Status::DataLoss("malformed Explain response");
  return text;
}

Result<std::string> InspectionClient::Statusz(bool json) {
  wire::Writer w;
  w.U8(json ? 1 : 0);
  Result<wire::Frame> reply = Call(wire::MsgType::kStatusz, w.bytes());
  if (!reply.ok()) return reply.status();
  if (reply->type != wire::MsgType::kStatuszOk) {
    return Status::DataLoss("malformed Statusz response");
  }
  wire::Reader r(reply->payload);
  r.U8();  // format echo
  std::string text = r.Str();
  if (!r.ok()) return Status::DataLoss("malformed Statusz response");
  return text;
}

}  // namespace deepbase
