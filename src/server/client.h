// InspectionClient: the remote counterpart of InspectionSession. One TCP
// connection multiplexes any number of concurrent remote jobs; the API
// mirrors the in-process facade so code migrates by swapping the session
// for a client:
//
//   InspectionClient client({.host = "127.0.0.1", .port = port});
//   DB_CHECK_OK(client.Connect());
//   Result<RemoteJob> job = client.Submit(request, [](auto& p) {
//     printf("%llu/%llu blocks\n", p.blocks_completed, p.blocks_total);
//   });                                        // async + streamed progress
//   const Result<ResultTable>& table = job->Wait();
//   Result<ResultTable> direct = client.Inspect(request);   // blocking
//
// Progress events are pushed by the server as blocks complete (strictly
// increasing) and delivered on the client's reader thread; Poll() issues
// a synchronous RPC and reports exactly the numbers a local
// JobHandle::Poll would.
//
// Reconnect semantics: when `auto_reconnect` is set, a broken connection
// is re-established transparently before the next RPC (Connect + Hello,
// bounded attempts with backoff). Jobs in flight when the connection died
// are resubmitted on the new connection by a background worker under
// `resubmit_attempts` tries with jittered doubling backoff — safe because
// submissions are idempotent server-side (the request fingerprint lands in
// the scheduler's dedup/result cache), so handles resolve with the job's
// real result instead of kIOError. Only once the retry budget is spent
// (or resubmission is disabled with resubmit_attempts = 0) does a handle
// resolve with the transport error; Close() always fails whatever is
// still in flight.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/result_table.h"
#include "server/wire.h"
#include "service/inspection_session.h"

namespace deepbase {

/// \brief Client construction knobs.
struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Transparently reconnect (Connect + Hello) before the next RPC when
  /// the connection is found broken.
  bool auto_reconnect = true;
  size_t reconnect_attempts = 3;
  double reconnect_backoff_s = 0.05;
  /// Per-RPC response deadline.
  double rpc_timeout_s = 60.0;
  /// In-flight jobs orphaned by a connection loss are re-submitted after
  /// the automatic reconnect, up to this many attempts per job with
  /// jittered doubling backoff (deterministically seeded per job). 0
  /// disables resubmission: orphaned handles resolve with kIOError as
  /// soon as the loss is detected. Ignored when auto_reconnect is off.
  size_t resubmit_attempts = 3;
  /// Base backoff between resubmission attempts; doubles per attempt,
  /// scaled by a uniform jitter in [0.5, 1.5).
  double resubmit_backoff_s = 0.05;
  size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
};

/// \brief Remote job progress as streamed/polled over the wire.
struct RemoteProgress {
  JobStatus status = JobStatus::kQueued;
  uint64_t blocks_completed = 0;
  uint64_t blocks_total = 0;
  uint64_t records_processed = 0;
};

namespace internal {
/// Shared state of one remote job; resolved by the reader thread when the
/// server pushes the final kResult frame (or the connection dies).
struct RemoteJobState {
  /// Atomic because a resubmission rewrites it while user threads may be
  /// calling RemoteJob::id()/Poll().
  std::atomic<uint64_t> server_job_id{0};
  uint64_t submit_request_id = 0;  ///< guarded by the client's mu_
  /// Encoded kSubmit payload, set once the server acked the submission;
  /// non-empty means the job can be replayed after a connection loss
  /// (guarded by mu).
  std::string submit_payload;
  /// True while the background worker owns this job's replay, so a second
  /// connection loss does not enqueue it twice (guarded by the client's
  /// mu_).
  bool resubmitting = false;
  std::function<void(const RemoteProgress&)> on_progress;  // reader thread
  mutable std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<Result<ResultTable>> result;
  wire::ResultSummaryWire summary;
  RemoteProgress last_progress;  // most recent streamed event
};
}  // namespace internal

class InspectionClient;

/// \brief Handle to a job running on the server; mirrors JobHandle.
/// Cheap to copy; members are safe from any thread. Valid only while the
/// owning InspectionClient is alive.
class RemoteJob {
 public:
  RemoteJob() = default;

  bool valid() const { return state_ != nullptr; }
  /// Server-assigned job id (the session's job id on the server).
  uint64_t id() const;

  /// \brief Synchronous progress RPC (blocks completed / total planned) —
  /// the same numbers a local JobHandle::Poll reports.
  Result<RemoteProgress> Poll();
  /// \brief Latest streamed progress event (no network round trip).
  RemoteProgress LastProgress() const;

  /// \brief Request cooperative cancellation on the server.
  Status Cancel();

  /// \brief Block until the server pushes the job's terminal result (or
  /// the connection dies, which resolves the job with kIOError).
  const Result<ResultTable>& Wait() const;
  bool Done() const;

  /// \brief Server-side run summary (valid once Done): blocks processed,
  /// dedup/result-cache/shared-scan hits, wall seconds — the end-to-end
  /// view of the scheduler's multi-query optimizations.
  wire::ResultSummaryWire Summary() const;

 private:
  friend class InspectionClient;
  RemoteJob(std::shared_ptr<internal::RemoteJobState> state,
            InspectionClient* client)
      : state_(std::move(state)), client_(client) {}

  std::shared_ptr<internal::RemoteJobState> state_;
  InspectionClient* client_ = nullptr;
};

/// \brief The client. Thread-safe: RPCs may be issued from any thread;
/// one reader thread demultiplexes responses and pushed events.
class InspectionClient {
 public:
  explicit InspectionClient(ClientConfig config);
  ~InspectionClient();

  InspectionClient(const InspectionClient&) = delete;
  InspectionClient& operator=(const InspectionClient&) = delete;

  /// \brief Connect + protocol handshake. Idempotent.
  Status Connect();
  void Close();
  bool connected() const;

  /// \brief Catalog version reported by the server at the last handshake.
  uint64_t server_catalog_version() const;

  /// \brief Submit an inspection; `on_progress` (optional) subscribes to
  /// streamed progress events, invoked on the reader thread as blocks
  /// complete. The request must be fully name-resolved (wire.h).
  Result<RemoteJob> Submit(const InspectRequest& request,
                           std::function<void(const RemoteProgress&)>
                               on_progress = nullptr);

  /// \brief Blocking convenience: Submit + Wait.
  Result<ResultTable> Inspect(const InspectRequest& request);

  /// \brief Explicit kWait RPC: ask the server for `job`'s terminal
  /// result (answered immediately when already done, parked server-side
  /// otherwise — subject to rpc_timeout_s). The passive RemoteJob::Wait()
  /// is usually what you want; this exists for re-asking after the
  /// automatic push was consumed and for protocol-level tooling.
  Result<ResultTable> WaitResult(const RemoteJob& job);

  /// \brief Upload a dataset into the server catalog under `name`.
  Status RegisterDataset(const std::string& name, const Dataset& dataset);
  /// \brief Register a named hypothesis set from declarative specs.
  Status RegisterHypotheses(const std::string& set_name,
                            const std::vector<wire::HypothesisSpec>& specs);

  /// \brief Server + scheduler counters (the over-the-wire observability
  /// used by the serving bench).
  Result<wire::ServerStatsWire> Stats();

  /// \brief Scrape the server's metrics registry: Prometheus text
  /// exposition by default, JSON when `json` is set.
  Result<std::string> Metrics(bool json = false);

  /// \brief EXPLAIN (dry run) or EXPLAIN ANALYZE (run + reconcile) of
  /// `request` on the server, rendered as the plan's text tree (or JSON).
  /// The request must be fully name-resolved — inline pointers cannot
  /// cross the wire.
  Result<std::string> Explain(const InspectRequest& request,
                              bool analyze = false, bool json = false);

  /// \brief Live system introspection dump (jobs in flight, cache/store
  /// occupancy, worker liveness, armed failpoints).
  Result<std::string> Statusz(bool json = false);

 private:
  friend class RemoteJob;

  struct PendingRpc {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    wire::Frame frame;
    Status transport = Status::OK();
    /// For kWait RPCs: the job whose terminal result the kResult response
    /// carries (the reader resolves it alongside the RPC).
    std::shared_ptr<internal::RemoteJobState> job;
  };

  /// Issue one RPC: frame out, matching response in (by request id).
  /// Reconnects + retries once when the connection is found broken and
  /// auto_reconnect is on.
  Result<wire::Frame> Call(wire::MsgType type, const std::string& payload);
  Result<wire::Frame> CallOnce(
      wire::MsgType type, const std::string& payload,
      bool* transport_failure,
      std::shared_ptr<internal::RemoteJobState> link_job = nullptr);
  /// Connect + Hello without the reconnect wrapper. Caller holds mu_.
  Status ConnectLocked();
  /// The bounded-attempt reconnect shared by Connect() and the resubmit
  /// worker; only the former clears an in-progress Close.
  Status ConnectInternal(bool reset_closing);
  void CloseLocked(const Status& reason);
  void ReaderLoop(int fd);
  /// Resolve every pending RPC and live job with `reason`.
  void FailAllLocked(const Status& reason);
  /// Background worker: drains orphans_, replaying each job on the
  /// reconnected connection under the resubmission budget.
  void ResubmitLoop();
  void ResubmitJob(const std::shared_ptr<internal::RemoteJobState>& job);
  static void ResolveJob(const std::shared_ptr<internal::RemoteJobState>& job,
                         Result<ResultTable> result,
                         const wire::ResultSummaryWire& summary);

  ClientConfig config_;
  mutable std::mutex mu_;
  /// Serializes whole frames onto the socket (concurrent RPCs must not
  /// interleave partial writes). Taken without mu_ held; Connect() takes
  /// it before closing a stale fd so no in-flight write can land on a
  /// recycled descriptor.
  std::mutex write_mu_;
  int fd_ = -1;
  bool connected_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t server_catalog_version_ = 0;
  std::thread reader_;
  std::map<uint64_t, std::shared_ptr<PendingRpc>> pending_;
  /// Live jobs by their submit request id (the demux key of pushed
  /// frames).
  std::map<uint64_t, std::shared_ptr<internal::RemoteJobState>> jobs_;
  /// Jobs orphaned by a connection loss, awaiting replay (guarded by
  /// mu_). The lazily-started resubmit worker drains this queue.
  std::deque<std::shared_ptr<internal::RemoteJobState>> orphans_;
  std::condition_variable resubmit_cv_;
  std::thread resubmit_;
  bool closing_ = false;  ///< guarded by mu_; stops the resubmit worker
};

}  // namespace deepbase
