#include "core/catalog.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/behavior_store.h"
#include "core/inspect_parser.h"
#include "measures/scores.h"

namespace deepbase {

void Catalog::BumpVersion(std::unique_lock<std::mutex> lock) {
  const uint64_t version = ++version_;
  std::function<void(uint64_t)> listener = mutation_listener_;
  lock.unlock();
  // Outside the lock: the listener (the scheduler's invalidation hook) may
  // read back through the catalog. Concurrent Register* calls may deliver
  // versions out of order; listeners must treat the version as a floor
  // (InvalidateBelow takes the max), not a sequence.
  if (listener) listener(version);
}

void Catalog::RegisterModel(const std::string& name,
                            const Extractor* extractor, size_t layer_size,
                            std::map<std::string, Datum> attrs) {
  std::unique_lock<std::mutex> lock(mu_);
  models_[name] = CatalogModel{extractor, layer_size, std::move(attrs)};
  BumpVersion(std::move(lock));
}

void Catalog::RegisterHypotheses(const std::string& set_name,
                                 std::vector<HypothesisPtr> hypotheses) {
  std::unique_lock<std::mutex> lock(mu_);
  hypothesis_sets_[set_name] = std::move(hypotheses);
  BumpVersion(std::move(lock));
}

void Catalog::RegisterDataset(const std::string& name,
                              const Dataset* dataset) {
  std::unique_lock<std::mutex> lock(mu_);
  datasets_[name] = CatalogDataset{
      dataset, dataset != nullptr ? DatasetFingerprint(*dataset) : 0};
  BumpVersion(std::move(lock));
}

void Catalog::RegisterDataset(const std::string& name,
                              std::shared_ptr<const Dataset> dataset) {
  const Dataset* ptr = dataset.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    owned_datasets_.push_back(std::move(dataset));
  }
  RegisterDataset(name, ptr);
}

void Catalog::RegisterMeasure(const std::string& name,
                              MeasureFactoryPtr factory) {
  std::unique_lock<std::mutex> lock(mu_);
  measures_[name] = std::move(factory);
  BumpVersion(std::move(lock));
}

void Catalog::SetMutationListener(std::function<void(uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  mutation_listener_ = std::move(listener);
}

Result<CatalogModel> Catalog::GetModel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model not registered: " + name);
  }
  return it->second;
}

Result<std::vector<HypothesisPtr>> Catalog::GetHypotheses(
    const std::string& set_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hypothesis_sets_.find(set_name);
  if (it == hypothesis_sets_.end()) {
    return Status::NotFound("hypothesis set not registered: " + set_name);
  }
  return it->second;
}

Result<CatalogDataset> Catalog::GetDataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second;
}

Result<MeasureFactoryPtr> Catalog::GetMeasure(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = measures_.find(name);
    if (it != measures_.end()) return it->second;
  }
  // Fall back to the built-in measure registry shared with the parsers.
  return MeasureByName(name);
}

namespace {

template <typename Map>
std::vector<std::string> KeysOf(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, value] : map) names.push_back(name);
  return names;
}

}  // namespace

std::vector<std::string> Catalog::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return KeysOf(models_);
}

std::vector<std::string> Catalog::HypothesisSetNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return KeysOf(hypothesis_sets_);
}

std::vector<std::string> Catalog::DatasetNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return KeysOf(datasets_);
}

uint64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

namespace {

// Split a model's units into consecutive layers of `layer_size` units
// ("layer0", "layer1", …) — shared by GroupByLayer and the catalog's
// registered layer partitions.
std::vector<UnitGroupSpec> LayerGroups(size_t total, size_t layer_size) {
  std::vector<UnitGroupSpec> groups;
  for (size_t begin = 0, layer = 0; begin < total;
       begin += layer_size, ++layer) {
    UnitGroupSpec group;
    group.group_id = "layer" + std::to_string(layer);
    for (size_t u = begin; u < std::min(total, begin + layer_size); ++u) {
      group.unit_ids.push_back(static_cast<int>(u));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace

Result<InspectPlan> Catalog::Compile(
    const InspectRequest& request,
    const InspectOptions& default_options) const {
  InspectPlan plan;
  plan.options = request.options.value_or(default_options);
  plan.min_abs_unit_score = request.min_abs_unit_score;

  // --- Models.
  if (request.models.empty()) {
    return Status::Invalid("INSPECT requires a model");
  }
  for (const InspectRequest::ModelRef& ref : request.models) {
    const Extractor* extractor = ref.extractor;
    if (extractor == nullptr) {
      if (ref.name.empty()) {
        return Status::Invalid("model reference has neither a catalog name "
                               "nor an inline extractor");
      }
      DB_ASSIGN_OR_RETURN(CatalogModel entry, GetModel(ref.name));
      extractor = entry.extractor;
    }
    if (extractor == nullptr) {
      return Status::Invalid("model extractor is null" +
                             (ref.name.empty() ? "" : ": " + ref.name));
    }
    ModelSpec spec;
    spec.extractor = extractor;
    if (ref.group_by_layer > 0) {
      spec.groups = LayerGroups(extractor->num_units(), ref.group_by_layer);
    } else if (!ref.groups.empty()) {
      spec.groups = ref.groups;
      for (const UnitGroupSpec& group : spec.groups) {
        for (int uid : group.unit_ids) {
          if (uid < 0 ||
              static_cast<size_t>(uid) >= extractor->num_units()) {
            return Status::OutOfRange(
                "unit " + std::to_string(uid) + " out of range for model '" +
                extractor->model_id() + "' (" +
                std::to_string(extractor->num_units()) + " units)");
          }
        }
      }
    } else {
      spec = AllUnitsGroup(extractor);
    }
    plan.models.push_back(std::move(spec));
  }

  // --- Hypotheses: inline first, then the named sets, deduped by name.
  std::set<std::string> seen_names;
  auto add_hypothesis = [&](const HypothesisPtr& hyp) {
    if (hyp != nullptr && seen_names.insert(hyp->name()).second) {
      plan.hypotheses.push_back(hyp);
    }
  };
  for (const HypothesisPtr& hyp : request.hypotheses) add_hypothesis(hyp);
  for (const std::string& set_name : request.hypothesis_sets) {
    DB_ASSIGN_OR_RETURN(std::vector<HypothesisPtr> set,
                        GetHypotheses(set_name));
    for (const HypothesisPtr& hyp : set) add_hypothesis(hyp);
  }
  if (!request.hypothesis_filter.empty()) {
    std::set<std::string> keep(request.hypothesis_filter.begin(),
                               request.hypothesis_filter.end());
    for (const std::string& name : keep) {
      if (seen_names.count(name) == 0) {
        return Status::NotFound("hypothesis '" + name +
                                "' not found in the requested sets");
      }
    }
    std::vector<HypothesisPtr> filtered;
    for (const HypothesisPtr& hyp : plan.hypotheses) {
      if (keep.count(hyp->name()) > 0) filtered.push_back(hyp);
    }
    plan.hypotheses = std::move(filtered);
  }
  if (plan.hypotheses.empty()) {
    return Status::Invalid("INSPECT requires at least one hypothesis");
  }

  // --- Dataset (inline wins over the catalog name).
  if (request.dataset != nullptr) {
    plan.dataset = request.dataset;
  } else if (!request.dataset_name.empty()) {
    DB_ASSIGN_OR_RETURN(CatalogDataset entry,
                        GetDataset(request.dataset_name));
    plan.dataset = entry.dataset;
  }
  if (plan.dataset == nullptr) {
    return Status::Invalid("INSPECT requires an OVER dataset");
  }

  // --- Measures (default: Pearson correlation, as in the paper).
  for (const MeasureFactoryPtr& measure : request.measures) {
    if (measure != nullptr) plan.measures.push_back(measure);
  }
  for (const std::string& name : request.measure_names) {
    DB_ASSIGN_OR_RETURN(MeasureFactoryPtr measure, GetMeasure(name));
    plan.measures.push_back(std::move(measure));
  }
  if (plan.measures.empty()) {
    plan.measures.push_back(std::make_shared<CorrelationScore>("pearson"));
  }
  return plan;
}

Result<ResultTable> RunPlan(const InspectPlan& plan, RuntimeStats* stats) {
  // Pre-flight the hypothesis output format (paper §4.1: "output formats
  // are checked during execution"): every hypothesis must emit one
  // behavior per record symbol.
  if (plan.dataset->num_records() > 0) {
    const Record& probe = plan.dataset->record(0);
    for (const HypothesisPtr& hyp : plan.hypotheses) {
      const size_t got = hyp->Eval(probe).size();
      if (got != plan.dataset->ns()) {
        return Status::Invalid(
            "hypothesis '" + hyp->name() + "' emitted " +
            std::to_string(got) + " behaviors for a record of " +
            std::to_string(plan.dataset->ns()) + " symbols");
      }
    }
  }
  // A deadline that already passed never reaches the engine: callers get
  // the typed error without paying for planning-stage extraction.
  if (plan.options.deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= plan.options.deadline) {
    if (stats != nullptr) stats->deadline_exceeded = true;
    return Status::DeadlineExceeded(
        "inspection deadline expired before execution started");
  }
  RuntimeStats local_stats;
  RuntimeStats* run_stats = stats != nullptr ? stats : &local_stats;
  ResultTable results = Inspect(plan.models, *plan.dataset, plan.measures,
                                plan.hypotheses, plan.options, run_stats);
  // Deadline truncation is an error, not a silently partial table: the
  // pipeline stopped at the first block boundary past the deadline, so
  // the scores cover only a prefix of the plan. (Cancellation keeps its
  // existing partial-result contract — the scheduler resolves cancelled
  // jobs from stats->cancelled, not from here.)
  if (run_stats->deadline_exceeded && !run_stats->cancelled) {
    return Status::DeadlineExceeded(
        "inspection exceeded its deadline after " +
        std::to_string(run_stats->blocks_processed) + " of " +
        std::to_string(run_stats->blocks_total_planned) + " planned blocks");
  }
  if (plan.min_abs_unit_score.has_value()) {
    const float threshold = *plan.min_abs_unit_score;
    results = results.Filter([threshold](const ResultRow& row) {
      return row.unit >= 0 && !std::isnan(row.unit_score) &&
             std::fabs(row.unit_score) > threshold;
    });
  }
  return results;
}

Result<ResultTable> RunInspectRequest(const InspectRequest& request,
                                      const Catalog& catalog,
                                      const InspectOptions& default_options,
                                      RuntimeStats* stats) {
  DB_ASSIGN_OR_RETURN(InspectPlan plan,
                      catalog.Compile(request, default_options));
  return RunPlan(plan, stats);
}

}  // namespace deepbase
