// Hypothesis-behavior cache (paper §5.1.2 / Figure 9): during model
// development the hypothesis library is fixed while the model changes, so
// DeepBase caches extracted hypothesis behaviors and reuses them when the
// same analysis is re-run on a new model. Eviction is LRU at hypothesis
// granularity ("simple LRU to pin the matrix in memory").

#pragma once

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace deepbase {

/// \brief Caches per-record hypothesis behaviors keyed by
/// (hypothesis name, record index). One cache instance corresponds to one
/// dataset; share it across Inspect() calls to get cross-model reuse.
///
/// Thread-safety: all operations are mutex-guarded, so one cache may be
/// shared by concurrent inspection jobs (InspectionSession::Submit). Use
/// Lookup() from concurrent code — the pointer returned by Get() is only
/// stable while no other thread inserts or evicts.
class HypothesisCache {
 public:
  /// \param max_values total cached floats across all hypotheses before
  /// LRU eviction (default ~64M values = 256MB).
  explicit HypothesisCache(size_t max_values = size_t{1} << 26)
      : max_values_(max_values) {}

  /// \brief Cached behaviors for (hyp, record), or nullptr on miss.
  /// Single-threaded convenience; concurrent callers must use Lookup().
  const std::vector<float>* Get(const std::string& hyp_name,
                                size_t record_idx);

  /// \brief Copy the cached behaviors for (hyp, record) into `out`.
  /// Returns false on miss. Safe under concurrent Put/eviction.
  bool Lookup(const std::string& hyp_name, size_t record_idx,
              std::vector<float>* out);

  void Put(const std::string& hyp_name, size_t record_idx,
           std::vector<float> behaviors);

  size_t hits() const;
  size_t misses() const;
  size_t size_values() const;
  void Clear();

 private:
  struct HypEntry {
    std::unordered_map<size_t, std::vector<float>> by_record;
    size_t values = 0;
    std::list<std::string>::iterator lru_it;
  };

  const std::vector<float>* FindLocked(const std::string& hyp_name,
                                       size_t record_idx);
  void Touch(const std::string& hyp_name, HypEntry* entry);
  void EvictIfNeeded();

  mutable std::mutex mu_;
  size_t max_values_;
  size_t size_values_ = 0;
  size_t hits_ = 0, misses_ = 0;
  std::unordered_map<std::string, HypEntry> entries_;
  std::list<std::string> lru_;  // front = most recently used
};

}  // namespace deepbase
