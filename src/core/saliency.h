// Saliency analysis (paper §2.2): find the input symbols that most affect
// a unit or group of units — "the procedure collects a unit's behaviors,
// finds the top-k highest value behaviors, and reports the corresponding
// input symbols."

#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/extractor.h"

namespace deepbase {

/// \brief One top-scoring (record, position) site.
struct SaliencyItem {
  size_t record_idx = 0;
  size_t position = 0;
  std::string token;
  float behavior = 0;
};

/// \brief Result of a saliency query.
struct SaliencyResult {
  /// Top-k sites by behavior value (descending).
  std::vector<SaliencyItem> top;
  /// How often each token appears among the top sites — the "whitespaces
  /// and periods trigger the five highest activations for u86" readout.
  std::map<std::string, size_t> token_counts;
};

/// \brief Saliency over one unit: top-k sites by (signed or absolute)
/// behavior value across the whole dataset.
SaliencyResult TopKSaliency(const Extractor& extractor,
                            const Dataset& dataset, int unit, size_t k,
                            bool by_absolute = false);

/// \brief Saliency over a unit group: sites ranked by the mean absolute
/// behavior across the group's units.
SaliencyResult TopKGroupSaliency(const Extractor& extractor,
                                 const Dataset& dataset,
                                 const std::vector<int>& units, size_t k);

}  // namespace deepbase
