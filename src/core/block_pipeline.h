// BlockPipeline: the engine's block-loop executor, and the codebase's
// first intra-job scale axis. One inspection job's blocks are fanned out
// over the session ThreadPool (extraction in parallel, inspection across
// shard lanes), with per-shard measure-state replicas recombined through
// the Measure::CloneState()/MergeFrom() API.
//
// Determinism contract: every behavior depends only on (dataset, shuffle
// seed, num_shards) — never on the thread count or scheduling. Blocks are
// assigned to shards by index (block 0 calibrates the primary state, block
// b > 0 belongs to shard (b-1) % S), each shard consumes its blocks in
// ascending order, and partials merge in ascending shard order. Measures
// whose MergeFrom is exact (integer counters) therefore produce identical
// scores at any shard count; FP moment-sum measures agree up to rounding;
// measures without merge support (SGD-trained) are pinned to a sequential
// lane that consumes all blocks in global order and thus stay bit-exact at
// every shard count.
//
// Lanes (num_shards = S > 1):
//   shard lane s   — mergeable pairs' replica s over the shard's blocks
//   sequential lane — non-mergeable pairs + merged (composite) measures,
//                     all blocks in global order
// With S == 1 everything runs on the single legacy lane, preserving the
// pre-pipeline engine semantics exactly.

#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "hypothesis/hypothesis.h"
#include "measures/measure.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace deepbase {

/// \brief Incremental state for one (model, group, measure, hypothesis)
/// pair. `measure` is the primary (shard-0) state; `replicas[s]` (s >= 1)
/// are the shard clones of a sharded run, merged back into `measure` when
/// the pipeline finishes.
struct PipelinePair {
  size_t model_i = 0, group_i = 0, score_i = 0, hyp_i = 0;
  std::unique_ptr<Measure> measure;
  std::vector<std::unique_ptr<Measure>> replicas;  // [0] unused (= primary)
  double epsilon = 0;
  bool shardable = false;
  /// Sequential-lane convergence flag (also the S == 1 flag).
  bool converged = false;
  /// Per-shard convergence flags (bytes, not vector<bool>: shards write
  /// their own element concurrently).
  std::vector<unsigned char> shard_converged;

  bool FullyConverged() const {
    if (!shardable) return converged;
    if (shard_converged.empty()) return converged;
    for (unsigned char c : shard_converged) {
      if (!c) return false;
    }
    return true;
  }
};

/// \brief Incremental state for one merged (composite-model) measure over
/// several binary hypotheses. Always runs on the sequential lane: merged
/// training is SGD-ordered. `hyp_sub_buf` is the reused per-block gather
/// of the heads' hypothesis columns (no per-block allocation).
struct PipelineMerged {
  size_t model_i = 0, group_i = 0, score_i = 0;
  std::unique_ptr<MergedMeasure> merged;
  std::vector<size_t> hyp_indices;  // indices into the hypothesis list
  std::vector<bool> head_converged;
  double epsilon = 0;
  bool all_converged = false;
  Matrix hyp_sub_buf;
};

/// \brief Executes the block loop of one inspection (streaming or
/// materialized) across extraction + shard lanes. Owns the measure states;
/// the engine assembles the result relation from pairs()/merged_states()
/// after Run().
class BlockPipeline {
 public:
  /// \brief Per-lane runtime totals, plus overall flags.
  struct Totals {
    /// One entry per shard lane; when a sequential lane ran (non-mergeable
    /// or merged measures present at S > 1), one extra trailing entry
    /// carries it. With S == 1 there is exactly one entry.
    std::vector<RuntimeStats::Shard> lanes;
    size_t num_shards = 1;
    size_t blocks_processed = 0;   // block-inspection dispatches (see engine.h)
    size_t records_processed = 0;  // records pulled from the iterator
    /// Planned dispatches of a full run (per-pass blocks × passes, capped
    /// by max_blocks) — the progress denominator; set before any block
    /// runs, so pollers see it while the loop is in flight.
    size_t blocks_planned = 0;
    /// Wall time of the final replica merge (S > 1 full runs). Kept out
    /// of the lanes' inspection_s: merging is a distinct phase of the
    /// critical path, not block inspection.
    double merge_s = 0;
    bool stopped_early = false;
    /// True when InspectOptions::deadline passed during the run: the
    /// block loop stopped at the first boundary after the deadline, so
    /// the accumulated states cover only a prefix of the plan.
    bool deadline_exceeded = false;
    /// Hypothesis-tier store counters (InspectOptions::hypothesis_store_tier)
    /// for this run — how each hypothesis's stored behaviors were obtained.
    size_t store_hyp_mem_hits = 0;
    size_t store_hyp_disk_hits = 0;
    size_t store_hyp_misses = 0;
  };

  BlockPipeline(const std::vector<ModelSpec>& models, const Dataset& dataset,
                const std::vector<MeasureFactoryPtr>& scores,
                const std::vector<HypothesisPtr>& hypotheses,
                const InspectOptions& options);
  ~BlockPipeline();

  BlockPipeline(const BlockPipeline&) = delete;
  BlockPipeline& operator=(const BlockPipeline&) = delete;

  /// \brief Effective shard count (options.num_shards resolved against the
  /// pool; see InspectOptions::num_shards).
  size_t num_shards() const { return num_shards_; }

  /// \brief Run the full block loop. `total_watch` is the job's wall clock
  /// (shared with the engine's time-budget enforcement).
  Totals Run(const Stopwatch& total_watch);

  /// \brief Slice mode (distributed workers): restrict this run to shards
  /// [shard_lo, shard_hi) of num_shards(). Block 0 is still extracted and
  /// inspected (it calibrates the primary states exactly as in a full
  /// run), but only the owned shards' blocks are extracted and consumed,
  /// and Run() skips the final replica merge — the partial states are
  /// handed out through TakeShardStates() instead. Because the block→shard
  /// map and per-shard consumption order are unchanged, a worker's shard-s
  /// state is bit-identical to the in-process shard-s replica for the same
  /// (seed, num_shards). Must be called before Run(). Fails for streaming
  /// runs, S == 1, or when sequential-lane work is present (the cluster
  /// pins such jobs to a single worker as a whole job instead).
  Status RestrictShards(size_t shard_lo, size_t shard_hi);

  /// \brief Move out the owned range's partial states, one per pairs()
  /// entry: the states of shards [shard_lo, shard_hi) merged in ascending
  /// shard order (for shard_lo == 0 this includes the primary's block-0
  /// accumulation). Valid once, after Run() in slice mode; entries may be
  /// null if the run was cancelled before any state accumulated.
  std::vector<std::unique_ptr<Measure>> TakeShardStates();

  /// \brief True when every measure converged (valid after Run()).
  bool AllConverged() const;

  const std::vector<PipelinePair>& pairs() const { return pairs_; }
  const std::vector<PipelineMerged>& merged_states() const { return merged_; }

 private:
  /// One extracted block: unit behaviors per model plus the hypothesis
  /// behaviors in column-major layout (row h = hypothesis h's behaviors,
  /// contiguous — the zero-copy span handed to Measure::ProcessBlock).
  /// Unit matrices are held by shared pointer so a fused job group
  /// (InspectOptions::shared_scan) serves every member from one
  /// allocation; solo runs own their matrices through the same handle.
  struct BlockData {
    std::vector<std::shared_ptr<const Matrix>> unit_behaviors;
    Matrix hyp_cols;  // |H| × rows
    size_t rows = 0;
    size_t records = 0;
    size_t serial = 0;  // unique per extracted block (scratch-cache tag)
    double unit_s = 0, hyp_s = 0;
  };

  /// Per-lane scratch: reused (model, group) gather buffers, tagged by the
  /// block serial they were last filled for. Each lane owns its scratch, so
  /// gathers are race-free and allocation-free across blocks.
  struct LaneScratch {
    std::vector<std::vector<Matrix>> buf;
    std::vector<std::vector<size_t>> tag;  // serial + 1; 0 = empty
  };

  bool CancelRequested() const;
  bool OverBudget(const Stopwatch& watch) const;
  /// True once options_.deadline has passed; latches deadline_hit_ so the
  /// run is reported as deadline-truncated even if later checks race.
  bool DeadlinePassed() const;
  void ParallelDo(size_t n, const std::function<void(size_t)>& fn);
  /// Bump the live progress sink (InspectOptions::progress) by one block
  /// dispatch. Called from whichever lane dispatches the block, so it is
  /// relaxed-atomic; progress counts each block once per pass (the shard
  /// lanes' dispatch set), never the sequential lane's re-reads.
  void TickProgress(size_t records) const;

  LaneScratch MakeScratch() const;
  void ExtractInto(const std::vector<size_t>& block, size_t serial,
                   BlockData* data);
  const Matrix& GroupMatrix(const BlockData& data, size_t m, size_t g,
                            LaneScratch* scratch);
  std::span<const float> HypSpan(const BlockData& data, size_t h) const;

  /// Feed one block to a shardable pair's shard-`s` replica (s == 0 is the
  /// primary). Returns via flags; respects early stopping.
  void InspectShardBlock(const BlockData& data, size_t shard,
                         LaneScratch* scratch);
  /// Feed one block to the sequential-lane states (non-shardable pairs and
  /// merged measures); with `include_shardable_primary`, also the primaries
  /// (S == 1 single lane and the per-pass calibration block).
  void InspectSequentialBlock(const BlockData& data, LaneScratch* scratch,
                              bool include_shardable_primary);
  bool SequentialLaneConverged() const;
  bool ShardLaneConverged(size_t shard) const;

  void EnsureReplicas();
  void MergeReplicas();

  void RunSingleLane(const Stopwatch& watch, Totals* totals);
  void RunShardedMaterialized(const Stopwatch& watch, Totals* totals);
  void RunShardedStreaming(const Stopwatch& watch, Totals* totals);

  const std::vector<ModelSpec>& models_;
  const Dataset& dataset_;
  const std::vector<HypothesisPtr>& hypotheses_;
  const InspectOptions& options_;

  // Extraction plan: per model the union of its groups' units; per group
  // the column indices into that union, with identity gathers detected so
  // whole-model groups are served zero-copy from the block matrix.
  std::vector<std::vector<int>> model_units_;
  std::vector<std::vector<std::vector<size_t>>> group_cols_;
  std::vector<std::vector<bool>> group_identity_;

  std::vector<PipelinePair> pairs_;
  std::vector<PipelineMerged> merged_;
  bool have_shardable_ = false;
  bool have_sequential_ = false;

  /// Slice-mode ownership tests (full runs own everything).
  bool OwnsShard(size_t shard) const {
    return !sliced_ || (shard >= slice_lo_ && shard < slice_hi_);
  }
  bool OwnsBlock(size_t block) const {
    return block == 0 || OwnsShard((block - 1) % num_shards_);
  }

  size_t num_shards_ = 1;
  bool sliced_ = false;
  size_t slice_lo_ = 0, slice_hi_ = 0;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;

  // Hypothesis store tier: per hypothesis, a shared read-only handle on
  // its full stored behavior matrix (num_records × ns; null = served
  // live). Loaded once in the constructor via BehaviorStore::GetShared —
  // fused jobs over one dataset all read the store's single allocation
  // instead of holding per-job deep copies — then every block copies row
  // slices instead of calling HypothesisFn::Eval.
  std::vector<std::shared_ptr<const Matrix>> hyp_stored_;
  size_t store_hyp_mem_hits_ = 0;
  size_t store_hyp_disk_hits_ = 0;
  size_t store_hyp_misses_ = 0;
  double hyp_tier_prelude_s_ = 0;

  std::unique_ptr<std::atomic<bool>[]> warned_bad_size_;

  /// Set by any lane that observes the deadline passing (relaxed: the
  /// flag only ever flips false→true and is read after the lanes join).
  mutable std::atomic<bool> deadline_hit_{false};
};

}  // namespace deepbase
