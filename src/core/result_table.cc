#include "core/result_table.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace deepbase {

void ResultTable::Append(const ResultTable& other) {
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

ResultTable ResultTable::Filter(
    const std::function<bool(const ResultRow&)>& pred) const {
  ResultTable out;
  for (const auto& row : rows_) {
    if (pred(row)) out.Add(row);
  }
  return out;
}

ResultTable ResultTable::TopUnits(size_t k, bool by_absolute) const {
  std::vector<ResultRow> unit_rows;
  for (const auto& row : rows_) {
    if (row.unit >= 0 && !std::isnan(row.unit_score)) unit_rows.push_back(row);
  }
  auto key = [by_absolute](const ResultRow& r) {
    return by_absolute ? std::fabs(r.unit_score) : r.unit_score;
  };
  std::sort(unit_rows.begin(), unit_rows.end(),
            [&](const ResultRow& a, const ResultRow& b) {
              return key(a) > key(b);
            });
  if (unit_rows.size() > k) unit_rows.resize(k);
  ResultTable out;
  for (auto& row : unit_rows) out.Add(std::move(row));
  return out;
}

std::vector<int> ResultTable::UnitsAbove(const std::string& measure,
                                         const std::string& hypothesis,
                                         float threshold) const {
  std::vector<int> out;
  for (const auto& row : rows_) {
    if (row.measure == measure && row.hypothesis == hypothesis &&
        row.unit >= 0 && !std::isnan(row.unit_score) &&
        std::fabs(row.unit_score) > threshold) {
      out.push_back(row.unit);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

float ResultTable::GroupScore(const std::string& measure,
                              const std::string& hypothesis,
                              const std::string& group_id) const {
  for (const auto& row : rows_) {
    if (row.measure == measure && row.hypothesis == hypothesis &&
        (group_id.empty() || row.group_id == group_id) &&
        !std::isnan(row.group_score)) {
      return row.group_score;
    }
  }
  return std::numeric_limits<float>::quiet_NaN();
}

float ResultTable::UnitScore(const std::string& measure,
                             const std::string& hypothesis, int unit) const {
  for (const auto& row : rows_) {
    if (row.measure == measure && row.hypothesis == hypothesis &&
        row.unit == unit) {
      return row.unit_score;
    }
  }
  return std::numeric_limits<float>::quiet_NaN();
}

std::vector<std::pair<std::string, size_t>> ResultTable::CountHighScorers(
    const std::string& measure, float threshold) const {
  std::map<std::string, size_t> counts;
  for (const auto& row : rows_) {
    if (row.measure == measure && row.unit >= 0 &&
        !std::isnan(row.unit_score) &&
        std::fabs(row.unit_score) > threshold) {
      ++counts[row.hypothesis];
    }
  }
  return {counts.begin(), counts.end()};
}

TextTable ResultTable::ToTextTable(size_t max_rows) const {
  TextTable table({"model", "group", "measure", "hypothesis", "unit",
                   "unit_score", "group_score"});
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    const auto& r = rows_[i];
    table.AddRow({r.model_id, r.group_id, r.measure, r.hypothesis,
                  r.unit < 0 ? "-" : std::to_string(r.unit),
                  std::isnan(r.unit_score) ? "-" : TextTable::Num(r.unit_score),
                  std::isnan(r.group_score) ? "-"
                                            : TextTable::Num(r.group_score)});
  }
  return table;
}

namespace {

void AppendCsvField(const std::string& field, std::string* out) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

std::string ResultTable::ToCsv() const {
  std::string out =
      "model,group,measure,hypothesis,unit,unit_score,group_score\n";
  for (const auto& r : rows_) {
    AppendCsvField(r.model_id, &out);
    out += ',';
    AppendCsvField(r.group_id, &out);
    out += ',';
    AppendCsvField(r.measure, &out);
    out += ',';
    AppendCsvField(r.hypothesis, &out);
    out += ',';
    if (r.unit >= 0) out += std::to_string(r.unit);
    out += ',';
    if (!std::isnan(r.unit_score)) out += std::to_string(r.unit_score);
    out += ',';
    if (!std::isnan(r.group_score)) out += std::to_string(r.group_score);
    out += '\n';
  }
  return out;
}

namespace {

constexpr uint32_t kResultTableMagic = 0x44425254;  // "DBRT"
constexpr uint64_t kMaxSerializedRows = 1ull << 32;
constexpr uint64_t kMaxSerializedString = 1ull << 20;

void WriteU32(uint32_t v, std::ostream* out) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(uint64_t v, std::ostream* out) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(const std::string& s, std::ostream* out) {
  WriteU64(s.size(), out);
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Floats travel as raw bits so NaN payloads (the "no score" sentinel)
// survive the round trip unchanged.
void WriteFloatBits(float f, std::ostream* out) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  WriteU32(bits, out);
}

bool ReadU32(std::istream* in, uint32_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

bool ReadU64(std::istream* in, uint64_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

bool ReadString(std::istream* in, std::string* s) {
  uint64_t len = 0;
  if (!ReadU64(in, &len) || len > kMaxSerializedString) return false;
  s->resize(len);
  in->read(s->data(), static_cast<std::streamsize>(len));
  return !in->fail();
}

bool ReadFloatBits(std::istream* in, float* f) {
  uint32_t bits = 0;
  if (!ReadU32(in, &bits)) return false;
  std::memcpy(f, &bits, sizeof(bits));
  return true;
}

}  // namespace

void ResultTable::Serialize(std::ostream* out) const {
  WriteU32(kResultTableMagic, out);
  WriteU64(rows_.size(), out);
  for (const ResultRow& r : rows_) {
    WriteString(r.model_id, out);
    WriteString(r.group_id, out);
    WriteString(r.measure, out);
    WriteString(r.hypothesis, out);
    const int64_t unit = r.unit;
    WriteU64(static_cast<uint64_t>(unit), out);
    WriteFloatBits(r.unit_score, out);
    WriteFloatBits(r.group_score, out);
  }
}

std::string ResultTable::SerializeToString() const {
  std::ostringstream out(std::ios::binary);
  Serialize(&out);
  return std::move(out).str();
}

Result<ResultTable> ResultTable::Deserialize(std::istream* in) {
  uint32_t magic = 0;
  uint64_t n = 0;
  if (!ReadU32(in, &magic) || magic != kResultTableMagic ||
      !ReadU64(in, &n) || n > kMaxSerializedRows) {
    return Status::DataLoss("malformed result table header");
  }
  ResultTable table;
  for (uint64_t i = 0; i < n; ++i) {
    ResultRow r;
    uint64_t unit = 0;
    if (!ReadString(in, &r.model_id) || !ReadString(in, &r.group_id) ||
        !ReadString(in, &r.measure) || !ReadString(in, &r.hypothesis) ||
        !ReadU64(in, &unit) || !ReadFloatBits(in, &r.unit_score) ||
        !ReadFloatBits(in, &r.group_score)) {
      return Status::DataLoss("truncated result table row " +
                              std::to_string(i));
    }
    r.unit = static_cast<int>(static_cast<int64_t>(unit));
    table.Add(std::move(r));
  }
  return table;
}

Result<ResultTable> ResultTable::DeserializeFromString(
    const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return Deserialize(&in);
}

size_t ResultTable::EstimatedBytes() const {
  size_t bytes = sizeof(ResultTable);
  for (const ResultRow& row : rows_) {
    bytes += sizeof(ResultRow) + row.model_id.size() + row.group_id.size() +
             row.measure.size() + row.hypothesis.size();
  }
  return bytes;
}

}  // namespace deepbase
