#include "core/result_table.h"

#include <algorithm>
#include <map>

namespace deepbase {

void ResultTable::Append(const ResultTable& other) {
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

ResultTable ResultTable::Filter(
    const std::function<bool(const ResultRow&)>& pred) const {
  ResultTable out;
  for (const auto& row : rows_) {
    if (pred(row)) out.Add(row);
  }
  return out;
}

ResultTable ResultTable::TopUnits(size_t k, bool by_absolute) const {
  std::vector<ResultRow> unit_rows;
  for (const auto& row : rows_) {
    if (row.unit >= 0 && !std::isnan(row.unit_score)) unit_rows.push_back(row);
  }
  auto key = [by_absolute](const ResultRow& r) {
    return by_absolute ? std::fabs(r.unit_score) : r.unit_score;
  };
  std::sort(unit_rows.begin(), unit_rows.end(),
            [&](const ResultRow& a, const ResultRow& b) {
              return key(a) > key(b);
            });
  if (unit_rows.size() > k) unit_rows.resize(k);
  ResultTable out;
  for (auto& row : unit_rows) out.Add(std::move(row));
  return out;
}

std::vector<int> ResultTable::UnitsAbove(const std::string& measure,
                                         const std::string& hypothesis,
                                         float threshold) const {
  std::vector<int> out;
  for (const auto& row : rows_) {
    if (row.measure == measure && row.hypothesis == hypothesis &&
        row.unit >= 0 && !std::isnan(row.unit_score) &&
        std::fabs(row.unit_score) > threshold) {
      out.push_back(row.unit);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

float ResultTable::GroupScore(const std::string& measure,
                              const std::string& hypothesis,
                              const std::string& group_id) const {
  for (const auto& row : rows_) {
    if (row.measure == measure && row.hypothesis == hypothesis &&
        (group_id.empty() || row.group_id == group_id) &&
        !std::isnan(row.group_score)) {
      return row.group_score;
    }
  }
  return std::numeric_limits<float>::quiet_NaN();
}

float ResultTable::UnitScore(const std::string& measure,
                             const std::string& hypothesis, int unit) const {
  for (const auto& row : rows_) {
    if (row.measure == measure && row.hypothesis == hypothesis &&
        row.unit == unit) {
      return row.unit_score;
    }
  }
  return std::numeric_limits<float>::quiet_NaN();
}

std::vector<std::pair<std::string, size_t>> ResultTable::CountHighScorers(
    const std::string& measure, float threshold) const {
  std::map<std::string, size_t> counts;
  for (const auto& row : rows_) {
    if (row.measure == measure && row.unit >= 0 &&
        !std::isnan(row.unit_score) &&
        std::fabs(row.unit_score) > threshold) {
      ++counts[row.hypothesis];
    }
  }
  return {counts.begin(), counts.end()};
}

TextTable ResultTable::ToTextTable(size_t max_rows) const {
  TextTable table({"model", "group", "measure", "hypothesis", "unit",
                   "unit_score", "group_score"});
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    const auto& r = rows_[i];
    table.AddRow({r.model_id, r.group_id, r.measure, r.hypothesis,
                  r.unit < 0 ? "-" : std::to_string(r.unit),
                  std::isnan(r.unit_score) ? "-" : TextTable::Num(r.unit_score),
                  std::isnan(r.group_score) ? "-"
                                            : TextTable::Num(r.group_score)});
  }
  return table;
}

namespace {

void AppendCsvField(const std::string& field, std::string* out) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

std::string ResultTable::ToCsv() const {
  std::string out =
      "model,group,measure,hypothesis,unit,unit_score,group_score\n";
  for (const auto& r : rows_) {
    AppendCsvField(r.model_id, &out);
    out += ',';
    AppendCsvField(r.group_id, &out);
    out += ',';
    AppendCsvField(r.measure, &out);
    out += ',';
    AppendCsvField(r.hypothesis, &out);
    out += ',';
    if (r.unit >= 0) out += std::to_string(r.unit);
    out += ',';
    if (!std::isnan(r.unit_score)) out += std::to_string(r.unit_score);
    out += ',';
    if (!std::isnan(r.group_score)) out += std::to_string(r.group_score);
    out += '\n';
  }
  return out;
}

}  // namespace deepbase
