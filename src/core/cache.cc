#include "core/cache.h"

namespace deepbase {

const std::vector<float>* HypothesisCache::FindLocked(
    const std::string& hyp_name, size_t record_idx) {
  auto it = entries_.find(hyp_name);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  Touch(hyp_name, &it->second);
  auto rit = it->second.by_record.find(record_idx);
  if (rit == it->second.by_record.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &rit->second;
}

const std::vector<float>* HypothesisCache::Get(const std::string& hyp_name,
                                               size_t record_idx) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(hyp_name, record_idx);
}

bool HypothesisCache::Lookup(const std::string& hyp_name, size_t record_idx,
                             std::vector<float>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<float>* found = FindLocked(hyp_name, record_idx);
  if (found == nullptr) return false;
  *out = *found;
  return true;
}

void HypothesisCache::Put(const std::string& hyp_name, size_t record_idx,
                          std::vector<float> behaviors) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hyp_name);
  if (it == entries_.end()) {
    lru_.push_front(hyp_name);
    HypEntry entry;
    entry.lru_it = lru_.begin();
    it = entries_.emplace(hyp_name, std::move(entry)).first;
  } else {
    Touch(hyp_name, &it->second);
  }
  auto [rit, inserted] = it->second.by_record.emplace(record_idx,
                                                      std::move(behaviors));
  if (inserted) {
    it->second.values += rit->second.size();
    size_values_ += rit->second.size();
    EvictIfNeeded();
  }
}

size_t HypothesisCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t HypothesisCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t HypothesisCache::size_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_values_;
}

void HypothesisCache::Touch(const std::string& hyp_name, HypEntry* entry) {
  lru_.erase(entry->lru_it);
  lru_.push_front(hyp_name);
  entry->lru_it = lru_.begin();
}

void HypothesisCache::EvictIfNeeded() {
  while (size_values_ > max_values_ && entries_.size() > 1) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    size_values_ -= it->second.values;
    entries_.erase(it);
  }
}

void HypothesisCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  size_values_ = 0;
}

}  // namespace deepbase
