// Built-in extractors for the library's model families, plus a
// pre-extracted-behaviors adapter.

#pragma once

#include <memory>

#include "core/extractor.h"
#include "nn/lstm_lm.h"
#include "nn/seq2seq.h"
#include "util/thread_pool.h"

namespace deepbase {

/// \brief Extracts LSTM hidden states from an LstmLm. Unit id u addresses
/// layer u / hidden_dim, unit u % hidden_dim. If a thread pool is given,
/// records in a block are extracted in parallel — the CPU stand-in for the
/// paper's GPU extraction path.
class LstmLmExtractor : public Extractor {
 public:
  LstmLmExtractor(std::string model_id, const LstmLm* model,
                  ThreadPool* pool = nullptr)
      : Extractor(std::move(model_id)), model_(model), pool_(pool) {}

  size_t num_units() const override { return model_->num_units(); }
  Matrix ExtractRecord(const Record& rec,
                       const std::vector<int>& unit_ids) const override;
  Matrix ExtractBlock(const Dataset& dataset,
                      const std::vector<size_t>& record_idx,
                      const std::vector<int>& unit_ids) const override;

 private:
  const LstmLm* model_;
  ThreadPool* pool_;
};

/// \brief Extracts gradient behaviors dL/dh from an LstmLm — the
/// "gradient of the activations instead of their magnitude" behavior type
/// cited in paper §3. Unit numbering matches LstmLmExtractor, so the two
/// extractors can be inspected side by side as different behavior views of
/// the same model.
class LstmLmGradientExtractor : public Extractor {
 public:
  LstmLmGradientExtractor(std::string model_id, const LstmLm* model,
                          ThreadPool* pool = nullptr)
      : Extractor(std::move(model_id)), model_(model), pool_(pool) {}

  size_t num_units() const override { return model_->num_units(); }
  Matrix ExtractRecord(const Record& rec,
                       const std::vector<int>& unit_ids) const override;
  Matrix ExtractBlock(const Dataset& dataset,
                      const std::vector<size_t>& record_idx,
                      const std::vector<int>& unit_ids) const override;

 private:
  const LstmLm* model_;
  ThreadPool* pool_;
};

/// \brief Extracts encoder hidden states (both layers) from a Seq2Seq
/// model — the paper's custom PyTorch/OpenNMT extractor (§6.3).
class Seq2SeqEncoderExtractor : public Extractor {
 public:
  Seq2SeqEncoderExtractor(std::string model_id, const Seq2Seq* model,
                          ThreadPool* pool = nullptr)
      : Extractor(std::move(model_id)), model_(model), pool_(pool) {}

  size_t num_units() const override { return model_->num_encoder_units(); }
  Matrix ExtractRecord(const Record& rec,
                       const std::vector<int>& unit_ids) const override;
  Matrix ExtractBlock(const Dataset& dataset,
                      const std::vector<size_t>& record_idx,
                      const std::vector<int>& unit_ids) const override;

 private:
  const Seq2Seq* model_;
  ThreadPool* pool_;
};

/// \brief Serves behaviors from a fully materialized matrix aligned with a
/// dataset (record i occupies rows [i*ns, (i+1)*ns)) — the paper's "simply
/// read behaviors from pre-extracted files" extension.
class PrecomputedExtractor : public Extractor {
 public:
  PrecomputedExtractor(std::string model_id, Matrix behaviors, size_t ns)
      : PrecomputedExtractor(
            std::move(model_id),
            std::make_shared<const Matrix>(std::move(behaviors)), ns) {}

  /// \brief Shared-handle form: N concurrent jobs served from one stored
  /// matrix (BehaviorStore::GetShared) read a single allocation instead
  /// of holding per-job deep copies.
  PrecomputedExtractor(std::string model_id,
                       std::shared_ptr<const Matrix> behaviors, size_t ns)
      : Extractor(std::move(model_id)),
        behaviors_(std::move(behaviors)),
        ns_(ns) {}

  size_t num_units() const override { return behaviors_->cols(); }
  Matrix ExtractRecord(const Record& rec,
                       const std::vector<int>& unit_ids) const override;
  Matrix ExtractBlock(const Dataset& dataset,
                      const std::vector<size_t>& record_idx,
                      const std::vector<int>& unit_ids) const override;

 private:
  std::shared_ptr<const Matrix> behaviors_;
  size_t ns_;
};

}  // namespace deepbase
