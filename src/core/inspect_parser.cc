#include "core/inspect_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "measures/mlp_probe.h"
#include "measures/multivariate_mi.h"
#include "measures/scores.h"

namespace deepbase {

namespace {

// Whitespace/punctuation tokenizer: identifiers, numbers, and the symbols
// ( ) , > are separate tokens.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (char ch : text) {
    if (std::isspace(static_cast<unsigned char>(ch))) {
      flush();
    } else if (ch == '(' || ch == ')' || ch == ',' || ch == '>') {
      flush();
      tokens.push_back(std::string(1, ch));
    } else {
      cur += ch;
    }
  }
  flush();
  return tokens;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Result<MeasureFactoryPtr> MeasureByName(const std::string& raw) {
  const std::string name = Lower(raw);
  if (name == "pearson" || name == "corr" || name == "correlation") {
    return MeasureFactoryPtr(std::make_shared<CorrelationScore>("pearson"));
  }
  if (name == "spearman") {
    return MeasureFactoryPtr(std::make_shared<CorrelationScore>("spearman"));
  }
  if (name == "mutual_info") {
    return MeasureFactoryPtr(std::make_shared<MutualInfoScore>());
  }
  if (name == "multivariate_mi") {
    return MeasureFactoryPtr(std::make_shared<MultivariateMiScore>());
  }
  if (name == "diff_means") {
    return MeasureFactoryPtr(std::make_shared<DiffMeansScore>());
  }
  if (name == "jaccard") {
    return MeasureFactoryPtr(std::make_shared<JaccardScore>());
  }
  if (name == "logreg_l1") {
    return MeasureFactoryPtr(std::make_shared<LogRegressionScore>("L1"));
  }
  if (name == "logreg_l2") {
    return MeasureFactoryPtr(std::make_shared<LogRegressionScore>("L2"));
  }
  if (name == "mlp_probe") {
    return MeasureFactoryPtr(std::make_shared<MlpProbeScore>());
  }
  if (name == "multiclass") {
    return MeasureFactoryPtr(std::make_shared<MulticlassLogRegScore>());
  }
  if (name == "random_baseline") {
    return MeasureFactoryPtr(std::make_shared<RandomBaselineScore>());
  }
  if (name == "majority_baseline") {
    return MeasureFactoryPtr(std::make_shared<MajorityBaselineScore>());
  }
  return Status::Invalid("unknown measure: " + raw);
}

namespace {

// Sequential token cursor with keyword matching.
class Cursor {
 public:
  explicit Cursor(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  bool Done() const { return pos_ >= tokens_.size(); }
  const std::string& Peek() const {
    static const std::string kEmpty;
    return Done() ? kEmpty : tokens_[pos_];
  }
  std::string Next() { return Done() ? "" : tokens_[pos_++]; }
  bool TryKeyword(const std::string& kw) {
    if (!Done() && Lower(tokens_[pos_]) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (TryKeyword(kw)) return Status::OK();
    return Status::Invalid("expected '" + kw + "' near '" + Peek() + "'");
  }

 private:
  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<InspectRequest> ParseInspect(const std::string& statement,
                                    const Catalog& catalog) {
  Cursor cur(Tokenize(statement));
  DB_RETURN_NOT_OK(cur.ExpectKeyword("inspect"));
  DB_RETURN_NOT_OK(cur.ExpectKeyword("units"));
  DB_RETURN_NOT_OK(cur.ExpectKeyword("of"));

  InspectRequest request;
  InspectRequest::ModelRef model;
  model.name = cur.Next();
  DB_RETURN_NOT_OK(cur.ExpectKeyword("and"));
  request.hypothesis_sets.push_back(cur.Next());

  if (cur.TryKeyword("using")) {
    do {
      const std::string measure_name = cur.Next();
      // Validate eagerly so an unknown measure is reported as a
      // parse-time error at its token, not after the statement is fully
      // consumed — but carry the *name*, not the factory: name-resolved
      // requests keep a stable identity for the result cache and EXPLAIN.
      DB_RETURN_NOT_OK(catalog.GetMeasure(measure_name).status());
      request.measure_names.push_back(measure_name);
    } while (cur.TryKeyword(","));
  }

  DB_RETURN_NOT_OK(cur.ExpectKeyword("over"));
  request.dataset_name = cur.Next();

  if (cur.TryKeyword("group")) {
    DB_RETURN_NOT_OK(cur.ExpectKeyword("by"));
    DB_RETURN_NOT_OK(cur.ExpectKeyword("layer"));
    DB_RETURN_NOT_OK(cur.ExpectKeyword("("));
    const std::string n_str = cur.Next();
    char* end = nullptr;
    const long layer_size = std::strtol(n_str.c_str(), &end, 10);
    if (end == n_str.c_str() || layer_size <= 0) {
      return Status::Invalid("bad LAYER size: " + n_str);
    }
    DB_RETURN_NOT_OK(cur.ExpectKeyword(")"));
    model.group_by_layer = static_cast<size_t>(layer_size);
  }
  request.models.push_back(std::move(model));

  if (cur.TryKeyword("having")) {
    DB_RETURN_NOT_OK(cur.ExpectKeyword("unit_score"));
    DB_RETURN_NOT_OK(cur.ExpectKeyword(">"));
    const std::string x_str = cur.Next();
    char* end = nullptr;
    const double threshold = std::strtod(x_str.c_str(), &end);
    if (end == x_str.c_str()) {
      return Status::Invalid("bad HAVING threshold: " + x_str);
    }
    request.min_abs_unit_score = static_cast<float>(threshold);
  }

  if (!cur.Done()) {
    return Status::Invalid("unexpected trailing token: '" + cur.Peek() + "'");
  }
  return request;
}

Result<ResultTable> ExecuteInspect(const std::string& statement,
                                   const Catalog& catalog,
                                   const InspectOptions& options,
                                   RuntimeStats* stats) {
  DB_ASSIGN_OR_RETURN(InspectRequest request, ParseInspect(statement, catalog));
  request.options = options;
  return RunInspectRequest(request, catalog, options, stats);
}

}  // namespace deepbase
