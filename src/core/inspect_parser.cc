#include "core/inspect_parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "core/inspect_query.h"
#include "measures/mlp_probe.h"
#include "measures/multivariate_mi.h"
#include "measures/scores.h"

namespace deepbase {

const Extractor* Catalog::FindModel(const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

const std::vector<HypothesisPtr>* Catalog::FindHypotheses(
    const std::string& name) const {
  auto it = hypotheses_.find(name);
  return it == hypotheses_.end() ? nullptr : &it->second;
}

const Dataset* Catalog::FindDataset(const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

namespace {

// Whitespace/punctuation tokenizer: identifiers, numbers, and the symbols
// ( ) , > are separate tokens.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (char ch : text) {
    if (std::isspace(static_cast<unsigned char>(ch))) {
      flush();
    } else if (ch == '(' || ch == ')' || ch == ',' || ch == '>') {
      flush();
      tokens.push_back(std::string(1, ch));
    } else {
      cur += ch;
    }
  }
  flush();
  return tokens;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Result<MeasureFactoryPtr> MeasureByName(const std::string& raw) {
  const std::string name = Lower(raw);
  if (name == "pearson" || name == "corr" || name == "correlation") {
    return MeasureFactoryPtr(std::make_shared<CorrelationScore>("pearson"));
  }
  if (name == "spearman") {
    return MeasureFactoryPtr(std::make_shared<CorrelationScore>("spearman"));
  }
  if (name == "mutual_info") {
    return MeasureFactoryPtr(std::make_shared<MutualInfoScore>());
  }
  if (name == "multivariate_mi") {
    return MeasureFactoryPtr(std::make_shared<MultivariateMiScore>());
  }
  if (name == "diff_means") {
    return MeasureFactoryPtr(std::make_shared<DiffMeansScore>());
  }
  if (name == "jaccard") {
    return MeasureFactoryPtr(std::make_shared<JaccardScore>());
  }
  if (name == "logreg_l1") {
    return MeasureFactoryPtr(std::make_shared<LogRegressionScore>("L1"));
  }
  if (name == "logreg_l2") {
    return MeasureFactoryPtr(std::make_shared<LogRegressionScore>("L2"));
  }
  if (name == "mlp_probe") {
    return MeasureFactoryPtr(std::make_shared<MlpProbeScore>());
  }
  if (name == "multiclass") {
    return MeasureFactoryPtr(std::make_shared<MulticlassLogRegScore>());
  }
  if (name == "random_baseline") {
    return MeasureFactoryPtr(std::make_shared<RandomBaselineScore>());
  }
  if (name == "majority_baseline") {
    return MeasureFactoryPtr(std::make_shared<MajorityBaselineScore>());
  }
  return Status::Invalid("unknown measure: " + raw);
}

namespace {

// Sequential token cursor with keyword matching.
class Cursor {
 public:
  explicit Cursor(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  bool Done() const { return pos_ >= tokens_.size(); }
  const std::string& Peek() const {
    static const std::string kEmpty;
    return Done() ? kEmpty : tokens_[pos_];
  }
  std::string Next() { return Done() ? "" : tokens_[pos_++]; }
  bool TryKeyword(const std::string& kw) {
    if (!Done() && Lower(tokens_[pos_]) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (TryKeyword(kw)) return Status::OK();
    return Status::Invalid("expected '" + kw + "' near '" + Peek() + "'");
  }

 private:
  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ResultTable> ExecuteInspect(const std::string& statement,
                                   const Catalog& catalog,
                                   const InspectOptions& options,
                                   RuntimeStats* stats) {
  Cursor cur(Tokenize(statement));
  DB_RETURN_NOT_OK(cur.ExpectKeyword("inspect"));
  DB_RETURN_NOT_OK(cur.ExpectKeyword("units"));
  DB_RETURN_NOT_OK(cur.ExpectKeyword("of"));
  const std::string model_name = cur.Next();
  const Extractor* extractor = catalog.FindModel(model_name);
  if (extractor == nullptr) {
    return Status::NotFound("model not registered: " + model_name);
  }
  DB_RETURN_NOT_OK(cur.ExpectKeyword("and"));
  const std::string hyp_name = cur.Next();
  const std::vector<HypothesisPtr>* hyps = catalog.FindHypotheses(hyp_name);
  if (hyps == nullptr) {
    return Status::NotFound("hypothesis set not registered: " + hyp_name);
  }

  InspectQuery query;
  query.Model(extractor).Hypotheses(*hyps).WithOptions(options);

  if (cur.TryKeyword("using")) {
    do {
      DB_ASSIGN_OR_RETURN(MeasureFactoryPtr measure,
                          MeasureByName(cur.Next()));
      query.Using(std::move(measure));
    } while (cur.TryKeyword(","));
  }

  DB_RETURN_NOT_OK(cur.ExpectKeyword("over"));
  const std::string ds_name = cur.Next();
  const Dataset* dataset = catalog.FindDataset(ds_name);
  if (dataset == nullptr) {
    return Status::NotFound("dataset not registered: " + ds_name);
  }
  query.Over(dataset);

  if (cur.TryKeyword("group")) {
    DB_RETURN_NOT_OK(cur.ExpectKeyword("by"));
    DB_RETURN_NOT_OK(cur.ExpectKeyword("layer"));
    DB_RETURN_NOT_OK(cur.ExpectKeyword("("));
    const std::string n_str = cur.Next();
    char* end = nullptr;
    const long layer_size = std::strtol(n_str.c_str(), &end, 10);
    if (end == n_str.c_str() || layer_size <= 0) {
      return Status::Invalid("bad LAYER size: " + n_str);
    }
    DB_RETURN_NOT_OK(cur.ExpectKeyword(")"));
    query.GroupByLayer(static_cast<size_t>(layer_size));
  }

  if (cur.TryKeyword("having")) {
    DB_RETURN_NOT_OK(cur.ExpectKeyword("unit_score"));
    DB_RETURN_NOT_OK(cur.ExpectKeyword(">"));
    const std::string x_str = cur.Next();
    char* end = nullptr;
    const double threshold = std::strtod(x_str.c_str(), &end);
    if (end == x_str.c_str()) {
      return Status::Invalid("bad HAVING threshold: " + x_str);
    }
    query.HavingUnitScoreAbove(static_cast<float>(threshold));
  }

  if (!cur.Done()) {
    return Status::Invalid("unexpected trailing token: '" + cur.Peek() + "'");
  }
  return query.Execute(stats);
}

}  // namespace deepbase
