#include "core/shared_scan.h"

#include <utility>

namespace deepbase {

namespace {

// Content key of one extraction: the model, the unit union, and the exact
// record indices (in order), serialized with a length prefix so distinct
// tuples can never alias. Jobs with different block sizes or seeds
// produce different index sequences and therefore different keys.
std::string BlockKey(const std::string& model_id,
                     const std::vector<int>& units,
                     const std::vector<size_t>& block) {
  std::string key;
  key.reserve(sizeof(uint64_t) + model_id.size() +
              units.size() * sizeof(int) + block.size() * sizeof(size_t));
  const uint64_t id_len = model_id.size();
  key.append(reinterpret_cast<const char*>(&id_len), sizeof(id_len));
  key.append(model_id);
  const uint64_t n_units = units.size();
  key.append(reinterpret_cast<const char*>(&n_units), sizeof(n_units));
  key.append(reinterpret_cast<const char*>(units.data()),
             units.size() * sizeof(int));
  key.append(reinterpret_cast<const char*>(block.data()),
             block.size() * sizeof(size_t));
  return key;
}

}  // namespace

SharedScan::SharedScan(size_t memory_budget_bytes)
    : memory_budget_(memory_budget_bytes) {}

size_t SharedScan::Attach() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t id = next_client_++;
  clients_.insert(id);
  return id;
}

void SharedScan::Detach(size_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  clients_.erase(client);
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second->pending.erase(client);
    if (it->second->ready.load(std::memory_order_acquire) &&
        it->second->pending.empty()) {
      if (it->second->charged) stats_.bytes -= it->second->bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t SharedScan::attached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clients_.size();
}

void SharedScan::DropEntryLocked(const std::string& key,
                                 const std::shared_ptr<Entry>& entry) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second == entry) {
    if (entry->charged) stats_.bytes -= entry->bytes;
    entries_.erase(it);
  }
}

std::shared_ptr<const Matrix> SharedScan::GetOrExtract(
    size_t client, const std::string& model_id, const std::vector<int>& units,
    const std::vector<size_t>& block, const std::function<Matrix()>& extract,
    bool* extracted) {
  const std::string key = BlockKey(model_id, units, block);
  std::shared_ptr<Entry> entry;
  bool inserter = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<Entry>();
      // Every currently attached member except the inserter still owes
      // this block a read; members joining later are served while the
      // entry survives but never counted (they just re-extract if it is
      // already gone).
      entry->pending = clients_;
      entry->pending.erase(client);
      entries_[key] = entry;
      inserter = true;
    }
  }

  if (inserter) {
    Matrix m;
    try {
      m = extract();
    } catch (...) {
      // Unblock waiters (they extract for themselves) and forget the
      // entry, then let the failure surface to this job alone.
      {
        std::lock_guard<std::mutex> entry_lock(entry->mu);
        entry->failed.store(true, std::memory_order_release);
      }
      entry->cv.notify_all();
      std::lock_guard<std::mutex> lock(mu_);
      DropEntryLocked(key, entry);
      throw;
    }
    auto matrix = std::make_shared<const Matrix>(std::move(m));
    const size_t bytes = matrix->rows() * matrix->cols() * sizeof(float);
    entry->matrix = matrix;
    entry->bytes = bytes;
    {
      // The lock pairs with the waiters' cv.wait; the release-store
      // publishes matrix/bytes to lock-free readers (Detach).
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      entry->ready.store(true, std::memory_order_release);
    }
    entry->cv.notify_all();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.extractions;
    if (extracted != nullptr) *extracted = true;
    if (entry->pending.empty()) {
      // No other member owes a read — nothing to keep.
      DropEntryLocked(key, entry);
    } else if (stats_.bytes + bytes > memory_budget_) {
      // Over budget: serve the inserter, skip caching. Waiters already
      // holding the entry pointer still get the matrix; later readers
      // re-extract.
      ++stats_.overflow;
      DropEntryLocked(key, entry);
    } else {
      entry->charged = true;
      stats_.bytes += bytes;
      if (stats_.bytes > stats_.bytes_peak) stats_.bytes_peak = stats_.bytes;
    }
    return matrix;
  }

  std::shared_ptr<const Matrix> matrix;
  {
    std::unique_lock<std::mutex> entry_lock(entry->mu);
    entry->cv.wait(entry_lock, [&entry] {
      return entry->ready.load(std::memory_order_acquire) ||
             entry->failed.load(std::memory_order_acquire);
    });
    if (entry->failed.load(std::memory_order_acquire)) {
      // The extracting job failed; run the extraction ourselves (the
      // result is not cached — the group is already degrading).
      entry_lock.unlock();
      matrix = std::make_shared<const Matrix>(extract());
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.extractions;
      if (extracted != nullptr) *extracted = true;
      return matrix;
    }
    matrix = entry->matrix;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.shared_hits;
  if (extracted != nullptr) *extracted = false;
  entry->pending.erase(client);
  if (entry->pending.empty()) DropEntryLocked(key, entry);
  return matrix;
}

SharedScan::Stats SharedScan::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace deepbase
