// SharedScan: the multi-query scheduler's shared-extraction substrate
// (paper §5.1/§6: many concurrent hypotheses over the same (model,
// dataset) should share one extraction scan instead of re-running the
// model per query). One SharedScan backs one fused job group: member jobs
// run their own BlockPipeline (own measure states, own early stopping,
// own cancellation — scores stay bit-identical to isolated runs) but
// route per-block unit-behavior extraction through GetOrExtract, which
// memoizes each block the first time any member needs it and hands the
// same immutable matrix to everyone else.
//
// Lifetime of a cached block: an entry remembers which attached clients
// still owe it a read and is freed the moment the last of them consumes
// it (or detaches — a job that early-stops or is cancelled releases its
// pending blocks without disturbing the scan for the rest of the group).
// Blocks are keyed by (model_id, unit union, record indices), so jobs
// with different block sizes or shuffle seeds simply never collide — the
// cache is purely an optimization and never changes results.
//
// Memory: cached bytes are bounded by `memory_budget_bytes`; a block that
// would overflow the budget is served to its extractor but not cached
// (later readers re-extract), so a fused group degrades to isolated scans
// instead of blowing up RSS.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace deepbase {

/// \brief Memoizing block-extraction cache shared by one fused job group.
/// Thread-safe; extraction for a given block runs at most once at a time
/// (concurrent requesters for the same key block until it is ready).
class SharedScan {
 public:
  struct Stats {
    size_t extractions = 0;   ///< blocks actually extracted
    size_t shared_hits = 0;   ///< blocks served from the scan cache
    size_t overflow = 0;      ///< blocks not cached (budget exceeded)
    size_t bytes = 0;         ///< currently cached bytes
    size_t bytes_peak = 0;    ///< high-water mark of cached bytes
  };

  explicit SharedScan(size_t memory_budget_bytes = 128ull << 20);

  /// \brief Register a member job; returns its client id.
  size_t Attach();
  /// \brief Remove a member: its pending claims on cached blocks are
  /// released (entries whose last expected reader left are freed).
  void Detach(size_t client);
  size_t attached() const;

  /// \brief The block matrix for (model_id, units, record block): served
  /// from the cache when another member already extracted it, otherwise
  /// extracted via `extract` (at most once across concurrent requesters).
  /// `extracted`, when non-null, reports whether this call paid the
  /// extraction. The returned matrix is immutable and shared.
  std::shared_ptr<const Matrix> GetOrExtract(
      size_t client, const std::string& model_id,
      const std::vector<int>& units, const std::vector<size_t>& block,
      const std::function<Matrix()>& extract, bool* extracted = nullptr);

  Stats stats() const;

 private:
  struct Entry {
    std::mutex mu;
    std::condition_variable cv;
    /// Publication flag: matrix/bytes are written by the extractor before
    /// the release-store and only read after an acquire-load observes
    /// true (waiters additionally synchronize through mu/cv).
    std::atomic<bool> ready{false};
    /// Set instead of `ready` when extract() threw: waiters fall back to
    /// extracting for themselves.
    std::atomic<bool> failed{false};
    std::shared_ptr<const Matrix> matrix;
    size_t bytes = 0;
    /// True once `bytes` has been added to Stats::bytes (entries dropped
    /// for overflow or lack of readers are never charged). Guarded, like
    /// `pending`, by the scan-level mutex, not entry.mu.
    bool charged = false;
    /// Attached clients (at insert time) that have not read this block
    /// yet; the entry is dropped when the set empties.
    std::set<size_t> pending;
  };

  void DropEntryLocked(const std::string& key,
                       const std::shared_ptr<Entry>& entry);

  const size_t memory_budget_;
  mutable std::mutex mu_;
  size_t next_client_ = 0;
  std::set<size_t> clients_;
  /// Keyed by the exact serialized (model_id, units, block) bytes —
  /// equality, not a hash, so a wrong matrix can never be served.
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  Stats stats_;
};

/// \brief One member job's handle on a SharedScan (what
/// InspectOptions::shared_scan carries). Attaches on construction and
/// detaches on destruction; tracks this job's own hit/extraction counts
/// for per-job RuntimeStats.
class SharedScanClient {
 public:
  explicit SharedScanClient(std::shared_ptr<SharedScan> scan)
      : scan_(std::move(scan)), id_(scan_->Attach()) {}
  ~SharedScanClient() { scan_->Detach(id_); }

  SharedScanClient(const SharedScanClient&) = delete;
  SharedScanClient& operator=(const SharedScanClient&) = delete;

  const std::shared_ptr<SharedScan>& scan() const { return scan_; }

  std::shared_ptr<const Matrix> GetOrExtract(
      const std::string& model_id, const std::vector<int>& units,
      const std::vector<size_t>& block,
      const std::function<Matrix()>& extract) {
    bool extracted = false;
    auto m = scan_->GetOrExtract(id_, model_id, units, block, extract,
                                 &extracted);
    if (extracted) {
      extractions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      shared_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return m;
  }

  /// Per-job counters (extraction may run on several pool threads).
  size_t extractions() const {
    return extractions_.load(std::memory_order_relaxed);
  }
  size_t shared_hits() const {
    return shared_hits_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<SharedScan> scan_;
  size_t id_ = 0;
  std::atomic<size_t> extractions_{0};
  std::atomic<size_t> shared_hits_{0};
};

}  // namespace deepbase
