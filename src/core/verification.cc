#include "core/verification.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace deepbase {

namespace {
double RowDistance(const Matrix& m1, size_t r1, const Matrix& m2, size_t r2) {
  const float* a = m1.row_data(r1);
  const float* b = m2.row_data(r2);
  double acc = 0;
  for (size_t c = 0; c < m1.cols(); ++c) {
    const double d = static_cast<double>(a[c]) - b[c];
    acc += d * d;
  }
  return std::sqrt(acc);
}
}  // namespace

double SilhouetteScore(const Matrix& a, const Matrix& b) {
  const size_t na = a.rows(), nb = b.rows();
  if (na < 2 || nb < 2) return 0.0;
  double total = 0;
  auto point_score = [&](const Matrix& own, size_t i, const Matrix& other) {
    double within = 0;
    for (size_t j = 0; j < own.rows(); ++j) {
      if (j != i) within += RowDistance(own, i, own, j);
    }
    within /= static_cast<double>(own.rows() - 1);
    double between = 0;
    for (size_t j = 0; j < other.rows(); ++j) {
      between += RowDistance(own, i, other, j);
    }
    between /= static_cast<double>(other.rows());
    const double mx = std::max(within, between);
    return mx > 0 ? (between - within) / mx : 0.0;
  };
  for (size_t i = 0; i < na; ++i) total += point_score(a, i, b);
  for (size_t i = 0; i < nb; ++i) total += point_score(b, i, a);
  return total / static_cast<double>(na + nb);
}

VerificationResult VerifyUnits(const Extractor& extractor,
                               const Dataset& dataset,
                               const std::vector<int>& units,
                               const PerturbationSpec& spec,
                               size_t max_samples, uint64_t seed) {
  Rng rng(seed);
  VerificationResult result;
  std::vector<std::vector<float>> base_rows, treat_rows;

  std::vector<size_t> order(dataset.num_records());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);

  for (size_t idx : order) {
    if (base_rows.size() >= max_samples && treat_rows.size() >= max_samples) {
      break;
    }
    const Record& rec = dataset.record(idx);
    // Collect eligible positions and pick one at random per record.
    std::vector<size_t> positions;
    for (size_t k = 0; k < rec.size(); ++k) {
      if (spec.eligible(rec, k)) positions.push_back(k);
    }
    if (positions.empty()) continue;
    const size_t k = positions[rng.UniformInt(positions.size())];

    const Matrix orig = extractor.ExtractRecord(rec, units);
    auto perturb_delta =
        [&](const std::string& token) -> std::optional<std::vector<float>> {
      const int id = dataset.vocab().Lookup(token);
      if (id < 0) return std::nullopt;
      Record mod = rec;
      mod.tokens[k] = token;
      mod.ids[k] = id;
      const Matrix after = extractor.ExtractRecord(mod, units);
      std::vector<float> delta(units.size());
      for (size_t u = 0; u < units.size(); ++u) {
        delta[u] = after(k, u) - orig(k, u);
      }
      return delta;
    };

    if (base_rows.size() < max_samples) {
      if (auto token = spec.baseline(rec, k)) {
        if (auto delta = perturb_delta(*token)) {
          base_rows.push_back(std::move(*delta));
        }
      }
    }
    if (treat_rows.size() < max_samples) {
      if (auto token = spec.treatment(rec, k)) {
        if (auto delta = perturb_delta(*token)) {
          treat_rows.push_back(std::move(*delta));
        }
      }
    }
  }

  result.n_baseline = base_rows.size();
  result.n_treatment = treat_rows.size();
  result.baseline_deltas = Matrix(base_rows.size(), units.size());
  for (size_t i = 0; i < base_rows.size(); ++i) {
    for (size_t u = 0; u < units.size(); ++u) {
      result.baseline_deltas(i, u) = base_rows[i][u];
    }
  }
  result.treatment_deltas = Matrix(treat_rows.size(), units.size());
  for (size_t i = 0; i < treat_rows.size(); ++i) {
    for (size_t u = 0; u < units.size(); ++u) {
      result.treatment_deltas(i, u) = treat_rows[i][u];
    }
  }
  result.silhouette =
      SilhouetteScore(result.baseline_deltas, result.treatment_deltas);
  return result;
}

}  // namespace deepbase
