#include "core/saliency.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace deepbase {

namespace {

// Shared top-k maintenance over per-symbol scores.
SaliencyResult CollectTopK(const Extractor& extractor, const Dataset& dataset,
                           const std::vector<int>& units, size_t k,
                           const std::function<float(const float*, size_t)>&
                               site_score) {
  std::vector<SaliencyItem> items;
  for (size_t i = 0; i < dataset.num_records(); ++i) {
    const Record& rec = dataset.record(i);
    Matrix behaviors = extractor.ExtractRecord(rec, units);
    for (size_t t = 0; t < rec.size(); ++t) {
      SaliencyItem item;
      item.record_idx = i;
      item.position = t;
      item.token = rec.tokens[t];
      item.behavior = site_score(behaviors.row_data(t), units.size());
      items.push_back(std::move(item));
    }
  }
  const size_t keep = std::min(k, items.size());
  std::partial_sort(items.begin(), items.begin() + keep, items.end(),
                    [](const SaliencyItem& a, const SaliencyItem& b) {
                      return a.behavior > b.behavior;
                    });
  items.resize(keep);
  SaliencyResult result;
  for (const auto& item : items) ++result.token_counts[item.token];
  result.top = std::move(items);
  return result;
}

}  // namespace

SaliencyResult TopKSaliency(const Extractor& extractor,
                            const Dataset& dataset, int unit, size_t k,
                            bool by_absolute) {
  return CollectTopK(extractor, dataset, {unit}, k,
                     [by_absolute](const float* row, size_t) {
                       return by_absolute ? std::fabs(row[0]) : row[0];
                     });
}

SaliencyResult TopKGroupSaliency(const Extractor& extractor,
                                 const Dataset& dataset,
                                 const std::vector<int>& units, size_t k) {
  return CollectTopK(extractor, dataset, units, k,
                     [](const float* row, size_t n) {
                       float acc = 0;
                       for (size_t u = 0; u < n; ++u) {
                         acc += std::fabs(row[u]);
                       }
                       return acc / static_cast<float>(n);
                     });
}

}  // namespace deepbase
