// Declarative query builder mirroring the paper's INSPECT clause
// (Appendix B):
//
//   SELECT ... INSPECT U.uid AND H.h USING corr OVER D.seq AS S
//   ... GROUP BY ... HAVING S.unit_score > 0.8
//
// becomes
//
//   InspectQuery()
//       .Model(&extractor)                 // or .Model("catalog_name")
//       .GroupByLayer(hidden_dim)          // or .Group("layer0", units)
//       .Hypotheses(hyps)                  // or .Hypotheses("set_name")
//       .Using(std::make_shared<CorrelationScore>("pearson"))
//       .Over(&dataset)                    // or .Over("dataset_name")
//       .HavingUnitScoreAbove(0.8f)
//       .Execute();
//
// The builder is a thin frontend: it only assembles an InspectRequest.
// Execute() compiles the request against the bound Catalog (or an empty
// one when everything is inline) via the shared RunInspectRequest path —
// the same path used by the textual INSPECT parser, the SQL layer, and
// InspectionSession. To run through a session (shared behavior store,
// hypothesis cache, async jobs), pass the builder or its request() to
// InspectionSession::Inspect / Submit.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/engine.h"

namespace deepbase {

/// \brief Fluent builder over InspectRequest. Inputs are validated at
/// Execute() / Compile time.
class InspectQuery {
 public:
  InspectQuery() = default;
  /// \brief Bind the builder to a catalog so Model("name") /
  /// Hypotheses("set") / Over("dataset") references resolve (not owned).
  explicit InspectQuery(const Catalog* catalog) : catalog_(catalog) {}

  /// \brief Add a model; subsequent Group() calls attach to it. If no
  /// group is added, all units form one group.
  InspectQuery& Model(const Extractor* extractor);
  /// \brief Add a model by catalog name (requires a bound catalog or
  /// execution through an InspectionSession).
  InspectQuery& Model(const std::string& name);

  /// \brief Add a named unit group to the most recent model.
  InspectQuery& Group(const std::string& group_id, std::vector<int> units);

  /// \brief Partition the most recent model's units into per-layer groups
  /// of `layer_size` consecutive units ("layer0", "layer1", ...).
  InspectQuery& GroupByLayer(size_t layer_size);

  InspectQuery& Hypotheses(std::vector<HypothesisPtr> hyps);
  InspectQuery& Hypothesis(HypothesisPtr hyp);
  /// \brief Add a registered hypothesis set by catalog name.
  InspectQuery& Hypotheses(const std::string& set_name);

  InspectQuery& Using(MeasureFactoryPtr score);
  /// \brief Add a measure by registry name (pearson, jaccard, ...).
  InspectQuery& Using(const std::string& measure_name);

  InspectQuery& Over(const Dataset* dataset);
  /// \brief Reference a registered dataset by catalog name.
  InspectQuery& Over(const std::string& dataset_name);

  InspectQuery& WithOptions(InspectOptions options);

  /// \brief HAVING clause on |unit_score| (applied after inspection).
  InspectQuery& HavingUnitScoreAbove(float threshold);

  /// \brief The assembled declarative request (what Execute compiles).
  const InspectRequest& request() const { return request_; }

  /// \brief Validate and run through the shared request path. Defaults to
  /// Pearson correlation if no measure was given (the paper's INSPECT
  /// default).
  Result<ResultTable> Execute(RuntimeStats* stats = nullptr) const;

 private:
  const Catalog* catalog_ = nullptr;
  InspectRequest request_;
};

}  // namespace deepbase
