// Declarative query builder mirroring the paper's INSPECT clause
// (Appendix B):
//
//   SELECT ... INSPECT U.uid AND H.h USING corr OVER D.seq AS S
//   ... GROUP BY ... HAVING S.unit_score > 0.8
//
// becomes
//
//   InspectQuery()
//       .Model(&extractor)
//       .GroupByLayer(hidden_dim)          // or .Group("layer0", units)
//       .Hypotheses(hyps)
//       .Using(std::make_shared<CorrelationScore>("pearson"))
//       .Over(&dataset)
//       .HavingUnitScoreAbove(0.8f)
//       .Execute();

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"

namespace deepbase {

/// \brief Fluent builder over Inspect(). Inputs are validated at Execute().
class InspectQuery {
 public:
  /// \brief Add a model; subsequent Group() calls attach to it. If no
  /// group is added, all units form one group.
  InspectQuery& Model(const Extractor* extractor);

  /// \brief Add a named unit group to the most recent model.
  InspectQuery& Group(const std::string& group_id, std::vector<int> units);

  /// \brief Partition the most recent model's units into per-layer groups
  /// of `layer_size` consecutive units ("layer0", "layer1", ...).
  InspectQuery& GroupByLayer(size_t layer_size);

  InspectQuery& Hypotheses(std::vector<HypothesisPtr> hyps);
  InspectQuery& Hypothesis(HypothesisPtr hyp);
  InspectQuery& Using(MeasureFactoryPtr score);
  InspectQuery& Over(const Dataset* dataset);
  InspectQuery& WithOptions(InspectOptions options);

  /// \brief HAVING clause on |unit_score| (applied after inspection).
  InspectQuery& HavingUnitScoreAbove(float threshold);

  /// \brief Validate and run. Defaults to Pearson correlation if no
  /// measure was given (the paper's INSPECT default).
  Result<ResultTable> Execute(RuntimeStats* stats = nullptr) const;

 private:
  std::vector<ModelSpec> models_;
  std::vector<HypothesisPtr> hypotheses_;
  std::vector<MeasureFactoryPtr> scores_;
  const Dataset* dataset_ = nullptr;
  InspectOptions options_;
  float having_threshold_ = -1.0f;
  bool has_having_ = false;
};

}  // namespace deepbase
