// The shared inspection catalog (paper §4: DNI is declarative — one
// inspect() verb over a catalog of models, hypotheses, and datasets). All
// front doors — the fluent InspectQuery builder, the textual INSPECT
// parser, and the SQL layer's Appendix-B statements — resolve names
// through one Catalog and compile to the same InspectRequest, which is the
// prerequisite for session-level batching, caching, and async serving.
//
// The catalog stores non-owning pointers: registered extractors, datasets,
// and user tables must outlive it.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "relational/datum.h"

namespace deepbase {

/// \brief A registered model: its extractor, the layer partition of its
/// units (0 = one layer), and free-form attributes (e.g. epoch) surfaced
/// by the SQL layer's `models` relation.
struct CatalogModel {
  const Extractor* extractor = nullptr;
  size_t layer_size = 0;
  std::map<std::string, Datum> attrs;
};

/// \brief A registered dataset plus a snapshot of its content fingerprint
/// (informational metadata: the store path recomputes DatasetFingerprint
/// live when keying entries, and the planned session-level result cache
/// keys on it — see ROADMAP).
struct CatalogDataset {
  const Dataset* dataset = nullptr;
  uint64_t fingerprint = 0;
};

/// \brief The declarative form of one inspection (paper Def. 2): models,
/// hypotheses, a dataset, and measures — each referenced either by catalog
/// name or inline. Every frontend compiles to this struct; the engine-
/// facing plan is produced by Catalog::Compile.
struct InspectRequest {
  struct ModelRef {
    /// Catalog name; empty when `extractor` is given inline.
    std::string name;
    const Extractor* extractor = nullptr;
    /// Explicit unit groups. Empty = all units as one group (or per-layer
    /// groups when group_by_layer > 0).
    std::vector<UnitGroupSpec> groups;
    /// Partition the model's units into consecutive layers of this size.
    size_t group_by_layer = 0;
  };

  std::vector<ModelRef> models;
  /// Catalog hypothesis-set names, resolved and concatenated…
  std::vector<std::string> hypothesis_sets;
  /// …plus inline hypotheses. Duplicate function names are dropped.
  std::vector<HypothesisPtr> hypotheses;
  /// If non-empty, keep only hypothesis functions with these names (the
  /// SQL layer's WHERE-clause selection). Unknown names are errors.
  std::vector<std::string> hypothesis_filter;

  /// The OVER dataset: by catalog name, or inline (inline wins).
  std::string dataset_name;
  const Dataset* dataset = nullptr;

  /// Measures by registry name (see Catalog::GetMeasure) and/or inline.
  /// Empty = the paper's INSPECT default, Pearson correlation.
  std::vector<std::string> measure_names;
  std::vector<MeasureFactoryPtr> measures;

  /// HAVING |unit_score| > x, applied after inspection.
  std::optional<float> min_abs_unit_score;

  /// Engine options; unset = the executing session's defaults.
  std::optional<InspectOptions> options;
};

/// \brief A fully resolved inspection, ready for the engine.
struct InspectPlan {
  std::vector<ModelSpec> models;
  std::vector<HypothesisPtr> hypotheses;
  std::vector<MeasureFactoryPtr> measures;
  const Dataset* dataset = nullptr;
  InspectOptions options;
  std::optional<float> min_abs_unit_score;
};

/// \brief Registry of named models, hypothesis sets, datasets, and
/// measures. Registration overwrites; lookups return copies, so a catalog
/// may be read by concurrent inspection jobs while (rarely) being
/// registered into. Version() changes on every registration — the SQL
/// layer uses it to invalidate its materialized catalog relations.
class Catalog {
 public:
  void RegisterModel(const std::string& name, const Extractor* extractor,
                     size_t layer_size = 0,
                     std::map<std::string, Datum> attrs = {});
  void RegisterHypotheses(const std::string& set_name,
                          std::vector<HypothesisPtr> hypotheses);
  void RegisterDataset(const std::string& name, const Dataset* dataset);
  /// \brief Owning registration: the catalog keeps `dataset` alive for
  /// its own lifetime (re-registration under the same name keeps earlier
  /// objects alive too — a running job may still be reading them). Used
  /// by surfaces that materialize datasets on behalf of remote callers
  /// (the network serving layer), where no host object can own them.
  void RegisterDataset(const std::string& name,
                       std::shared_ptr<const Dataset> dataset);
  /// \brief Register a custom measure factory; built-in measure names
  /// (pearson, jaccard, logreg_l1, …) resolve without registration.
  void RegisterMeasure(const std::string& name, MeasureFactoryPtr factory);

  Result<CatalogModel> GetModel(const std::string& name) const;
  Result<std::vector<HypothesisPtr>> GetHypotheses(
      const std::string& set_name) const;
  Result<CatalogDataset> GetDataset(const std::string& name) const;
  Result<MeasureFactoryPtr> GetMeasure(const std::string& name) const;

  std::vector<std::string> ModelNames() const;
  std::vector<std::string> HypothesisSetNames() const;
  std::vector<std::string> DatasetNames() const;

  /// \brief Monotonic counter, bumped by every Register* call.
  uint64_t version() const;

  /// \brief Observer invoked (with the new version, outside the catalog
  /// lock) after every Register* — the synchronous invalidation hook the
  /// scheduler's result cache uses to close the stale-admission window:
  /// the cache's admission floor rises the moment the catalog mutates,
  /// not at the next submission. One listener; nullptr clears it.
  void SetMutationListener(std::function<void(uint64_t)> listener);

  /// \brief Resolve every name in `request` and produce the engine plan.
  /// Returns descriptive errors: kNotFound for unknown catalog names,
  /// kInvalidArgument for structurally invalid requests (no model, no
  /// dataset, empty hypothesis list, out-of-range unit ids).
  Result<InspectPlan> Compile(const InspectRequest& request,
                              const InspectOptions& default_options) const;

 private:
  /// Bump version_ under the lock and invoke the mutation listener after
  /// releasing it (listeners may read back through the catalog).
  void BumpVersion(std::unique_lock<std::mutex> lock);

  mutable std::mutex mu_;
  uint64_t version_ = 0;
  std::function<void(uint64_t)> mutation_listener_;
  std::map<std::string, CatalogModel> models_;
  std::map<std::string, std::vector<HypothesisPtr>> hypothesis_sets_;
  std::map<std::string, CatalogDataset> datasets_;
  /// Keep-alive for owning registrations (append-only; freed with the
  /// catalog, after the owning session has joined its jobs).
  std::vector<std::shared_ptr<const Dataset>> owned_datasets_;
  std::map<std::string, MeasureFactoryPtr> measures_;
};

/// \brief Execute a compiled plan: pre-flight hypothesis output formats,
/// run the engine, and apply the HAVING filter.
Result<ResultTable> RunPlan(const InspectPlan& plan,
                            RuntimeStats* stats = nullptr);

/// \brief Compile + run in one step against `catalog`. This is the single
/// execution path shared by every frontend; InspectionSession layers its
/// store/cache/thread-pool on top by rewriting `default_options`.
Result<ResultTable> RunInspectRequest(
    const InspectRequest& request, const Catalog& catalog,
    const InspectOptions& default_options = {},
    RuntimeStats* stats = nullptr);

}  // namespace deepbase
