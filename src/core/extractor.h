// Unit-behavior extractors (paper §5.1.2): any object that can produce the
// behavior matrix of selected hidden units for input records. Extractors
// for the library's own models live in core/extractors.h; users can plug in
// custom extractors for other model families, or read pre-extracted
// behaviors from memory (PrecomputedExtractor).

#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace deepbase {

/// \brief Produces unit behaviors: one row per input symbol, one column per
/// requested hidden unit (the paper's extract(model, records, hid_units) ->
/// behaviors contract).
class Extractor {
 public:
  explicit Extractor(std::string model_id) : model_id_(std::move(model_id)) {}
  virtual ~Extractor() = default;

  const std::string& model_id() const { return model_id_; }

  /// \brief Total addressable hidden units of the model.
  virtual size_t num_units() const = 0;

  /// \brief Behaviors for one record: rec.size() × |unit_ids|.
  virtual Matrix ExtractRecord(const Record& rec,
                               const std::vector<int>& unit_ids) const = 0;

  /// \brief Behaviors for a block of records, rows concatenated in the
  /// order of `record_idx`: (|record_idx| * ns) × |unit_ids|. The default
  /// loops over ExtractRecord; extractors with batch backends override it.
  virtual Matrix ExtractBlock(const Dataset& dataset,
                              const std::vector<size_t>& record_idx,
                              const std::vector<int>& unit_ids) const;

 private:
  std::string model_id_;
};

}  // namespace deepbase
