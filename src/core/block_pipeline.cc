#include "core/block_pipeline.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "core/behavior_store.h"
#include "core/cache.h"
#include "core/shared_scan.h"
#include "util/logging.h"
#include "util/trace.h"

namespace deepbase {

namespace {

// Upper bound on the effective shard count (replica memory is linear in
// shards; values above this are clamped with a warning).
constexpr size_t kMaxShards = 64;

// Error threshold for a measure family (paper §6.2 defaults).
double EpsilonFor(const MeasureFactory& factory, const InspectOptions& opts) {
  const std::string& name = factory.name();
  if (name.rfind("correlation", 0) == 0) return opts.corr_epsilon;
  if (name.rfind("logreg", 0) == 0) return opts.logreg_epsilon;
  return opts.default_epsilon;
}

size_t ResolveShards(const InspectOptions& options) {
  size_t shards = options.num_shards;
  if (shards == 0) {
    shards = options.pool != nullptr ? options.pool->num_threads() : 1;
  }
  if (shards > kMaxShards) {
    // Clamping changes the effective shard count and therefore the
    // (seed, shards)-keyed determinism contract — say so out loud.
    DB_LOG(Warn) << "num_shards " << shards << " clamped to " << kMaxShards
                 << " (see InspectOptions::num_shards); scores follow the "
                 << "clamped count";
    shards = kMaxShards;
  }
  return std::max<size_t>(shards, 1);
}

}  // namespace

BlockPipeline::BlockPipeline(const std::vector<ModelSpec>& models,
                             const Dataset& dataset,
                             const std::vector<MeasureFactoryPtr>& scores,
                             const std::vector<HypothesisPtr>& hypotheses,
                             const InspectOptions& options)
    : models_(models),
      dataset_(dataset),
      hypotheses_(hypotheses),
      options_(options) {
  num_shards_ = ResolveShards(options);
  pool_ = options.pool;
  if (num_shards_ > 1 && pool_ == nullptr) {
    owned_pool_ =
        std::make_unique<ThreadPool>(std::min<size_t>(num_shards_, 16));
    pool_ = owned_pool_.get();
  }

  // --- Plan extraction: per model, the union of its groups' units, and per
  // group the column indices into that union. Groups that cover the whole
  // extracted union in order are flagged for the zero-copy fast path (no
  // per-block gather at all — the block matrix is used directly).
  model_units_.resize(models_.size());
  group_cols_.resize(models_.size());
  group_identity_.resize(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) {
    std::vector<int> units;
    for (const auto& group : models_[m].groups) {
      units.insert(units.end(), group.unit_ids.begin(), group.unit_ids.end());
    }
    std::sort(units.begin(), units.end());
    units.erase(std::unique(units.begin(), units.end()), units.end());
    model_units_[m] = units;
    group_cols_[m].resize(models_[m].groups.size());
    group_identity_[m].resize(models_[m].groups.size());
    for (size_t g = 0; g < models_[m].groups.size(); ++g) {
      for (int uid : models_[m].groups[g].unit_ids) {
        auto it = std::lower_bound(units.begin(), units.end(), uid);
        DB_DCHECK(it != units.end() && *it == uid);
        group_cols_[m][g].push_back(static_cast<size_t>(it - units.begin()));
      }
      const auto& cols = group_cols_[m][g];
      bool identity = cols.size() == units.size();
      for (size_t j = 0; identity && j < cols.size(); ++j) {
        identity = cols[j] == j;
      }
      group_identity_[m][g] = identity;
    }
  }

  // --- Plan measures: merged states for mergeable joint measures over
  // binary hypotheses (when model merging is on), individual Measure
  // instances for everything else. Pairs whose measure supports
  // CloneState/MergeFrom ride the shard lanes when num_shards > 1;
  // everything else (SGD-trained pairs, merged composites) is pinned to
  // the sequential lane.
  for (size_t m = 0; m < models_.size(); ++m) {
    for (size_t g = 0; g < models_[m].groups.size(); ++g) {
      const size_t nu = models_[m].groups[g].unit_ids.size();
      for (size_t s = 0; s < scores.size(); ++s) {
        const MeasureFactory& factory = *scores[s];
        const double eps = EpsilonFor(factory, options_);
        std::vector<size_t> mergeable_hyps;
        for (size_t h = 0; h < hypotheses_.size(); ++h) {
          const bool binary = hypotheses_[h]->num_classes() == 2;
          if (options_.model_merging && factory.mergeable() && binary) {
            mergeable_hyps.push_back(h);
          } else {
            PipelinePair pair;
            pair.model_i = m;
            pair.group_i = g;
            pair.score_i = s;
            pair.hyp_i = h;
            pair.measure = factory.Create(nu, hypotheses_[h]->num_classes());
            pair.epsilon = eps;
            pair.shardable =
                num_shards_ > 1 &&
                pair.measure->merge_exactness() != MergeExactness::kNone;
            if (pair.shardable) {
              have_shardable_ = true;
            } else {
              have_sequential_ = true;
            }
            pairs_.push_back(std::move(pair));
          }
        }
        if (!mergeable_hyps.empty()) {
          PipelineMerged ms;
          ms.model_i = m;
          ms.group_i = g;
          ms.score_i = s;
          ms.merged = factory.CreateMerged(nu, mergeable_hyps.size());
          DB_DCHECK(ms.merged != nullptr);
          ms.hyp_indices = std::move(mergeable_hyps);
          ms.head_converged.assign(ms.hyp_indices.size(), false);
          ms.epsilon = eps;
          merged_.push_back(std::move(ms));
          have_sequential_ = true;
        }
      }
    }
  }

  warned_bad_size_ =
      std::make_unique<std::atomic<bool>[]>(hypotheses_.size());

  // --- Hypothesis store tier: materialize/load each hypothesis's full
  // behaviors once per (hypothesis name, dataset fingerprint); blocks are
  // then served by row copies instead of HypothesisFn::Eval — reused
  // across jobs sharing the store and across restarts, like the unit
  // tier. Any store failure falls back to live evaluation.
  if (options_.behavior_store != nullptr && options_.hypothesis_store_tier) {
    Stopwatch prelude_watch;
    hyp_stored_.resize(hypotheses_.size());
    for (size_t h = 0; h < hypotheses_.size(); ++h) {
      if (CancelRequested() || DeadlinePassed()) break;
      bool materialized_now = false;
      Result<std::string> key =
          options_.behavior_store->EnsureHypothesisBehaviors(
              *hypotheses_[h], dataset_, &materialized_now);
      if (!key.ok()) {
        DB_LOG(Warn) << "hypothesis store tier unavailable for '"
                     << hypotheses_[h]->name()
                     << "', evaluating live: " << key.status().ToString();
        continue;
      }
      BehaviorStore::Tier tier = BehaviorStore::Tier::kMiss;
      Result<std::shared_ptr<const Matrix>> stored =
          options_.behavior_store->GetShared(*key, &tier);
      if (!stored.ok() || (*stored)->rows() != dataset_.num_records() ||
          (*stored)->cols() != dataset_.ns()) {
        DB_LOG(Warn) << "cannot serve stored hypothesis behaviors for '"
                     << hypotheses_[h]->name() << "', evaluating live";
        continue;
      }
      hyp_stored_[h] = std::move(*stored);
      if (materialized_now) {
        ++store_hyp_misses_;
      } else if (tier == BehaviorStore::Tier::kMemory) {
        ++store_hyp_mem_hits_;
      } else if (tier == BehaviorStore::Tier::kDisk ||
                 tier == BehaviorStore::Tier::kMmap) {
        // Hypothesis matrices are small (records × ns); an mmap handout
        // is still a disk-tier serve for the hyp counter pair.
        ++store_hyp_disk_hits_;
      }
    }
    hyp_tier_prelude_s_ = prelude_watch.Seconds();
  }
}

BlockPipeline::~BlockPipeline() = default;

Status BlockPipeline::RestrictShards(size_t shard_lo, size_t shard_hi) {
  if (num_shards_ <= 1) {
    return Status::Invalid("slice mode requires num_shards > 1");
  }
  if (options_.streaming) {
    return Status::Invalid("slice mode requires a materialized run");
  }
  if (have_sequential_) {
    return Status::Invalid(
        "slice mode cannot host sequential-lane measures; run the job "
        "whole on a single worker instead");
  }
  if (shard_lo >= shard_hi || shard_hi > num_shards_) {
    return Status::Invalid("shard range [" + std::to_string(shard_lo) + ", " +
                           std::to_string(shard_hi) + ") out of bounds for " +
                           std::to_string(num_shards_) + " shards");
  }
  sliced_ = true;
  slice_lo_ = shard_lo;
  slice_hi_ = shard_hi;
  return Status::OK();
}

std::vector<std::unique_ptr<Measure>> BlockPipeline::TakeShardStates() {
  DB_DCHECK(sliced_);
  std::vector<std::unique_ptr<Measure>> out;
  out.reserve(pairs_.size());
  for (auto& pair : pairs_) {
    std::unique_ptr<Measure> state;
    if (slice_lo_ == 0 || pair.replicas.empty()) {
      // Range owners starting at shard 0 hand out the primary (it carries
      // block 0's accumulation plus shard 0's blocks). A pair with no
      // replicas (run cancelled before cloning) degrades the same way.
      state = std::move(pair.measure);
    } else {
      state = std::move(pair.replicas[slice_lo_]);
    }
    if (state != nullptr) {
      // Fold the rest of the owned range in ascending shard order — the
      // same order the coordinator then applies across ranges, so the
      // global merge order is shard 0..S-1 exactly as in-process.
      for (size_t s = std::max<size_t>(slice_lo_, 1);
           s < slice_hi_ && s < pair.replicas.size(); ++s) {
        if (pair.replicas[s] != nullptr) state->MergeFrom(*pair.replicas[s]);
      }
    }
    pair.replicas.clear();
    out.push_back(std::move(state));
  }
  return out;
}

bool BlockPipeline::CancelRequested() const {
  return options_.cancel != nullptr &&
         options_.cancel->load(std::memory_order_relaxed);
}

bool BlockPipeline::OverBudget(const Stopwatch& watch) const {
  // The deadline rides every budget check: both stop the loop at the
  // next block boundary, but a deadline stop is latched (deadline_hit_)
  // so the run surfaces as kDeadlineExceeded instead of a partial table.
  if (DeadlinePassed()) return true;
  return watch.Seconds() >= options_.time_budget_s;
}

bool BlockPipeline::DeadlinePassed() const {
  if (options_.deadline == std::chrono::steady_clock::time_point::max()) {
    return false;
  }
  if (deadline_hit_.load(std::memory_order_relaxed)) return true;
  if (std::chrono::steady_clock::now() < options_.deadline) return false;
  deadline_hit_.store(true, std::memory_order_relaxed);
  return true;
}

void BlockPipeline::ParallelDo(size_t n,
                               const std::function<void(size_t)>& fn) {
  if (pool_ != nullptr) {
    pool_->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

BlockPipeline::LaneScratch BlockPipeline::MakeScratch() const {
  LaneScratch scratch;
  scratch.buf.resize(models_.size());
  scratch.tag.resize(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) {
    scratch.buf[m].resize(models_[m].groups.size());
    scratch.tag[m].assign(models_[m].groups.size(), 0);
  }
  return scratch;
}

// Extraction of one block: unit behaviors for every model, then hypothesis
// behaviors in column-major layout (with optional caching). Output formats
// are checked during execution (paper §4.1): a hypothesis emitting the
// wrong number of behaviors is normalized (zero-pad / truncate) with a
// one-time warning, so a misbehaving user function cannot silently corrupt
// neighboring rows. InspectQuery::Execute additionally pre-flights this as
// a hard error.
void BlockPipeline::ExtractInto(const std::vector<size_t>& block,
                                size_t serial, BlockData* data) {
  const size_t ns = dataset_.ns();
  data->serial = serial;
  data->records = block.size();
  data->rows = block.size() * ns;
  Stopwatch watch;
  data->unit_behaviors.clear();
  data->unit_behaviors.reserve(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) {
    const Extractor* extractor = models_[m].extractor;
    auto extract = [&] {
      return extractor->ExtractBlock(dataset_, block, model_units_[m]);
    };
    if (options_.shared_scan != nullptr) {
      // Fused job group: the first member to need this block extracts it;
      // everyone else shares the same immutable matrix.
      data->unit_behaviors.push_back(options_.shared_scan->GetOrExtract(
          extractor->model_id(), model_units_[m], block, extract));
    } else {
      data->unit_behaviors.push_back(
          std::make_shared<const Matrix>(extract()));
    }
  }
  data->unit_s = watch.Seconds();
  watch.Restart();
  data->hyp_cols.Resize(hypotheses_.size(), data->rows);
  // Hoisted out of the loops so cache hits reuse its capacity instead of
  // allocating per record.
  std::vector<float> behaviors;
  for (size_t h = 0; h < hypotheses_.size(); ++h) {
    const HypothesisFn& hyp = *hypotheses_[h];
    float* const out = data->hyp_cols.row_data(h);
    if (h < hyp_stored_.size() && hyp_stored_[h] != nullptr &&
        !hyp_stored_[h]->empty()) {
      // Hypothesis store tier: row copies from the stored matrix (already
      // normalized to ns behaviors per record).
      const Matrix& stored = *hyp_stored_[h];
      for (size_t i = 0; i < block.size(); ++i) {
        const float* const src = stored.row_data(block[i]);
        std::copy(src, src + ns, out + i * ns);
      }
      continue;
    }
    for (size_t i = 0; i < block.size(); ++i) {
      // Lookup copies out of the cache so concurrent jobs sharing one
      // cache cannot observe an entry being evicted mid-read.
      const bool cached =
          options_.hypothesis_cache != nullptr &&
          options_.hypothesis_cache->Lookup(hyp.name(), block[i], &behaviors);
      if (!cached) {
        behaviors = hyp.Eval(dataset_.record(block[i]));
        if (behaviors.size() != ns) {
          if (!warned_bad_size_[h].exchange(true,
                                            std::memory_order_relaxed)) {
            DB_LOG(Warn)
                << "hypothesis '" << hyp.name() << "' emitted "
                << behaviors.size() << " behaviors for a record of " << ns
                << " symbols; normalizing (zero-pad/truncate)";
          }
          behaviors.resize(ns, 0.0f);
        }
        if (options_.hypothesis_cache != nullptr) {
          options_.hypothesis_cache->Put(hyp.name(), block[i], behaviors);
        }
      }
      std::copy(behaviors.begin(), behaviors.end(), out + i * ns);
    }
  }
  data->hyp_s = watch.Seconds();
}

const Matrix& BlockPipeline::GroupMatrix(const BlockData& data, size_t m,
                                         size_t g, LaneScratch* scratch) {
  if (group_identity_[m][g]) return *data.unit_behaviors[m];
  Matrix& buf = scratch->buf[m][g];
  if (scratch->tag[m][g] != data.serial + 1) {
    const Matrix& src = *data.unit_behaviors[m];
    const auto& cols = group_cols_[m][g];
    buf.Resize(src.rows(), cols.size());
    for (size_t r = 0; r < src.rows(); ++r) {
      const float* const srow = src.row_data(r);
      float* const drow = buf.row_data(r);
      for (size_t j = 0; j < cols.size(); ++j) drow[j] = srow[cols[j]];
    }
    scratch->tag[m][g] = data.serial + 1;
  }
  return buf;
}

std::span<const float> BlockPipeline::HypSpan(const BlockData& data,
                                              size_t h) const {
  return {data.hyp_cols.row_data(h), data.hyp_cols.cols()};
}

void BlockPipeline::InspectShardBlock(const BlockData& data, size_t shard,
                                      LaneScratch* scratch) {
  for (auto& pair : pairs_) {
    if (!pair.shardable) continue;
    if (!pair.shard_converged.empty() && pair.shard_converged[shard]) {
      continue;
    }
    Measure* measure = (shard == 0 || pair.replicas.empty())
                           ? pair.measure.get()
                           : pair.replicas[shard].get();
    const Matrix& units = GroupMatrix(data, pair.model_i, pair.group_i,
                                      scratch);
    // The serial is shard-count-invariant (shuffle position), so the
    // (occurrence, serial) keys a kBitExact measure derives from it are
    // identical no matter which lane or worker consumed the block.
    measure->BeginBlock(data.serial);
    measure->ProcessBlock(units, HypSpan(data, pair.hyp_i));
    if (options_.early_stopping && measure->SupportsConvergence() &&
        measure->ErrorEstimate() < pair.epsilon &&
        !pair.shard_converged.empty()) {
      pair.shard_converged[shard] = 1;
    }
  }
}

void BlockPipeline::InspectSequentialBlock(const BlockData& data,
                                           LaneScratch* scratch,
                                           bool include_shardable_primary) {
  for (auto& pair : pairs_) {
    if (pair.shardable && !include_shardable_primary) continue;
    if (pair.converged) continue;
    const Matrix& units = GroupMatrix(data, pair.model_i, pair.group_i,
                                      scratch);
    pair.measure->BeginBlock(data.serial);
    pair.measure->ProcessBlock(units, HypSpan(data, pair.hyp_i));
    if (options_.early_stopping && pair.measure->SupportsConvergence() &&
        pair.measure->ErrorEstimate() < pair.epsilon) {
      pair.converged = true;
    }
  }
  for (auto& ms : merged_) {
    if (ms.all_converged) continue;
    const Matrix& units = GroupMatrix(data, ms.model_i, ms.group_i, scratch);
    // Reused head-column gather (one buffer per merged state, resized in
    // place — no per-block allocation, satellite of the zero-copy rework).
    Matrix& hyp_sub = ms.hyp_sub_buf;
    hyp_sub.Resize(data.rows, ms.hyp_indices.size());
    float* const dst0 = hyp_sub.row_data(0);
    const size_t stride = hyp_sub.lda();
    for (size_t j = 0; j < ms.hyp_indices.size(); ++j) {
      const float* const src = data.hyp_cols.row_data(ms.hyp_indices[j]);
      float* const dst = dst0 + j;
      for (size_t r = 0; r < data.rows; ++r) dst[r * stride] = src[r];
    }
    ms.merged->ProcessBlock(units, hyp_sub);
    if (options_.early_stopping) {
      bool all_heads = true;
      for (size_t j = 0; j < ms.hyp_indices.size(); ++j) {
        if (!ms.head_converged[j]) {
          ms.head_converged[j] = ms.merged->ErrorEstimate(j) < ms.epsilon;
        }
        all_heads = all_heads && ms.head_converged[j];
      }
      ms.all_converged = all_heads;
    }
  }
}

bool BlockPipeline::SequentialLaneConverged() const {
  for (const auto& pair : pairs_) {
    if (!pair.shardable && !pair.converged) return false;
  }
  for (const auto& ms : merged_) {
    if (!ms.all_converged) return false;
  }
  return true;
}

bool BlockPipeline::ShardLaneConverged(size_t shard) const {
  for (const auto& pair : pairs_) {
    if (!pair.shardable) continue;
    if (pair.shard_converged.empty() || !pair.shard_converged[shard]) {
      return false;
    }
  }
  return true;
}

bool BlockPipeline::AllConverged() const {
  for (const auto& pair : pairs_) {
    if (!pair.FullyConverged()) return false;
  }
  for (const auto& ms : merged_) {
    if (!ms.all_converged) return false;
  }
  return !pairs_.empty() || !merged_.empty();
}

void BlockPipeline::EnsureReplicas() {
  if (num_shards_ <= 1) return;
  for (auto& pair : pairs_) {
    if (!pair.shardable || !pair.replicas.empty()) continue;
    pair.replicas.resize(num_shards_);  // [0] stays null: primary stands in
    for (size_t s = 1; s < num_shards_; ++s) {
      if (!OwnsShard(s)) continue;  // slice mode: clone only owned shards
      pair.replicas[s] = pair.measure->CloneState();
      DB_DCHECK(pair.replicas[s] != nullptr);
    }
    pair.shard_converged.assign(num_shards_, 0);
    if (pair.converged) pair.shard_converged[0] = 1;
  }
}

void BlockPipeline::MergeReplicas() {
  for (auto& pair : pairs_) {
    if (pair.replicas.empty()) continue;
    // Ascending shard order: deterministic for a fixed shard count.
    for (size_t s = 1; s < pair.replicas.size(); ++s) {
      pair.measure->MergeFrom(*pair.replicas[s]);
    }
    pair.replicas.clear();
  }
}

void BlockPipeline::TickProgress(size_t records) const {
  if (options_.progress == nullptr) return;
  options_.progress->blocks_done.fetch_add(1, std::memory_order_relaxed);
  options_.progress->records_done.fetch_add(records,
                                            std::memory_order_relaxed);
}

BlockPipeline::Totals BlockPipeline::Run(const Stopwatch& total_watch) {
  Totals totals;
  totals.num_shards = num_shards_;
  // Plan the progress denominator up front: a full sweep is one dispatch
  // per block per pass (materialized runs re-dispatch the same blocks on
  // every pass; streaming runs re-extract, capped by max_blocks overall).
  {
    const size_t block_size = std::max<size_t>(1, options_.block_size);
    const size_t per_pass =
        (dataset_.num_records() + block_size - 1) / block_size;
    const size_t passes = std::max<size_t>(1, options_.passes);
    size_t planned;
    const bool mul_overflows =
        per_pass != 0 &&
        passes > std::numeric_limits<size_t>::max() / per_pass;
    if (options_.streaming) {
      planned = mul_overflows ? options_.max_blocks
                              : std::min(per_pass * passes,
                                         options_.max_blocks);
    } else {
      const size_t capped = std::min(per_pass, options_.max_blocks);
      planned = (capped != 0 &&
                 passes > std::numeric_limits<size_t>::max() / capped)
                    ? std::numeric_limits<size_t>::max()
                    : capped * passes;
    }
    totals.blocks_planned = planned;
    if (options_.progress != nullptr) {
      options_.progress->blocks_done.store(0, std::memory_order_relaxed);
      options_.progress->records_done.store(0, std::memory_order_relaxed);
      options_.progress->blocks_total.store(planned,
                                            std::memory_order_relaxed);
    }
  }
  const size_t n_lanes =
      num_shards_ == 1 ? 1 : num_shards_ + (have_sequential_ ? 1 : 0);
  totals.lanes.assign(n_lanes, {});
  totals.store_hyp_mem_hits = store_hyp_mem_hits_;
  totals.store_hyp_disk_hits = store_hyp_disk_hits_;
  totals.store_hyp_misses = store_hyp_misses_;
  totals.lanes[0].hyp_extraction_s += hyp_tier_prelude_s_;
  if (num_shards_ == 1) {
    RunSingleLane(total_watch, &totals);
  } else if (options_.streaming) {
    RunShardedStreaming(total_watch, &totals);
  } else {
    RunShardedMaterialized(total_watch, &totals);
  }
  if (num_shards_ > 1 && !sliced_) {
    // Slice mode skips the merge: the owned range's states leave through
    // TakeShardStates() and recombine on the coordinator. Merge time is
    // its own phase (Totals::merge_s) — it used to be folded into lane
    // 0's inspection_s, which double-billed the inspection phase.
    TraceContext trace{options_.tracer, options_.trace_parent_span};
    DB_SPAN(trace, "pipeline.merge");
    Stopwatch merge_watch;
    MergeReplicas();
    totals.merge_s = merge_watch.Seconds();
  }
  totals.deadline_exceeded = deadline_hit_.load(std::memory_order_relaxed);
  return totals;
}

// The classic sequential engine loop (paper §5.2), exactly as before the
// pipeline existed: one lane consumes every block in shuffle order.
void BlockPipeline::RunSingleLane(const Stopwatch& watch, Totals* totals) {
  RuntimeStats::Shard& lane = totals->lanes[0];
  LaneScratch scratch = MakeScratch();
  const size_t passes = std::max<size_t>(1, options_.passes);
  size_t serial = 0;
  bool stopped_early = false;

  auto inspect = [&](const BlockData& data) {
    Stopwatch inspect_watch;
    InspectSequentialBlock(data, &scratch, /*include_shardable_primary=*/true);
    lane.inspection_s += inspect_watch.Seconds();
    ++totals->blocks_processed;
    ++lane.blocks_processed;
    TickProgress(data.records);
    return options_.early_stopping && AllConverged();
  };

  if (options_.streaming) {
    // Online extraction (§5.2.3): stop reading the moment scores converge.
    // Extra passes re-extract with a different shuffle (rare for streaming;
    // multi-pass workloads normally materialize instead).
    for (size_t pass = 0; pass < passes && !stopped_early; ++pass) {
      BlockIterator it(&dataset_, options_.block_size,
                       options_.shuffle_seed + pass);
      while (it.HasNext() &&
             totals->blocks_processed < options_.max_blocks &&
             !OverBudget(watch) && !CancelRequested()) {
        std::vector<size_t> block = it.NextBlock();
        BlockData data;
        ExtractInto(block, serial++, &data);
        lane.unit_extraction_s += data.unit_s;
        lane.hyp_extraction_s += data.hyp_s;
        lane.records_processed += data.records;
        totals->records_processed += data.records;
        if (inspect(data)) {
          stopped_early = true;
          break;
        }
      }
    }
  } else {
    // Full materialization first (naive design, §5.1.2): all behaviors are
    // extracted regardless of convergence; early stopping (if enabled) can
    // only save inspection work. Additional passes reuse the materialized
    // blocks at no extraction cost (the §6.3 multi-pass pattern).
    std::vector<BlockData> materialized;
    BlockIterator it(&dataset_, options_.block_size, options_.shuffle_seed);
    while (it.HasNext() && materialized.size() < options_.max_blocks &&
           !OverBudget(watch) && !CancelRequested()) {
      std::vector<size_t> block = it.NextBlock();
      BlockData data;
      ExtractInto(block, serial++, &data);
      lane.unit_extraction_s += data.unit_s;
      lane.hyp_extraction_s += data.hyp_s;
      lane.records_processed += data.records;
      totals->records_processed += data.records;
      materialized.push_back(std::move(data));
    }
    for (size_t pass = 0; pass < passes && !stopped_early; ++pass) {
      for (const BlockData& data : materialized) {
        if (OverBudget(watch) || CancelRequested()) break;
        if (inspect(data)) {
          stopped_early = true;
          break;
        }
      }
    }
  }
  totals->stopped_early = stopped_early;
}

void BlockPipeline::RunShardedMaterialized(const Stopwatch& watch,
                                           Totals* totals) {
  const size_t S = num_shards_;
  const size_t passes = std::max<size_t>(1, options_.passes);

  // --- Enumerate blocks (cheap index shuffling only).
  std::vector<std::vector<size_t>> block_idx;
  BlockIterator it(&dataset_, options_.block_size, options_.shuffle_seed);
  while (it.HasNext() && block_idx.size() < options_.max_blocks &&
         !OverBudget(watch) && !CancelRequested()) {
    block_idx.push_back(it.NextBlock());
  }
  if (block_idx.empty()) return;

  // --- Parallel extraction over blocks. Budget/cancel are re-checked in
  // the tasks; a truncated block stays empty and is skipped by every lane
  // (nondeterministic only in the ways budget/cancel always were).
  std::vector<BlockData> blocks(block_idx.size());
  {
    TraceContext trace{options_.tracer, options_.trace_parent_span};
    DB_SPAN_NAMED(extract_span, trace, "pipeline.extract");
    extract_span.Tag("blocks", static_cast<uint64_t>(block_idx.size()));
    ParallelDo(block_idx.size(), [&](size_t b) {
      if (!OwnsBlock(b)) return;  // slice mode: another worker's block
      if (OverBudget(watch) || CancelRequested()) return;
      ExtractInto(block_idx[b], b, &blocks[b]);
    });
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    const size_t slot = b == 0 ? 0 : (b - 1) % S;
    totals->lanes[slot].unit_extraction_s += blocks[b].unit_s;
    totals->lanes[slot].hyp_extraction_s += blocks[b].hyp_s;
    totals->records_processed += blocks[b].records;
  }
  if (blocks[0].rows == 0) return;  // cancelled before anything ran

  // --- Pass 0, block 0 on the caller: calibrates the primary states
  // (thresholds, bin edges) that CloneState() hands to every replica.
  {
    LaneScratch scratch = MakeScratch();
    Stopwatch inspect_watch;
    InspectSequentialBlock(blocks[0], &scratch,
                           /*include_shardable_primary=*/true);
    totals->lanes[0].inspection_s += inspect_watch.Seconds();
    totals->lanes[0].blocks_processed += 1;
    totals->lanes[0].records_processed += blocks[0].records;
    // In slice mode every worker runs block 0 (calibration), but only the
    // shard-0 owner counts it toward progress — the coordinator sums the
    // per-range counters, so the block must tick exactly once cluster-wide.
    if (OwnsShard(0)) TickProgress(blocks[0].records);
    if (have_sequential_) {
      totals->lanes[S].blocks_processed += 1;
      totals->lanes[S].records_processed += blocks[0].records;
    }
  }
  EnsureReplicas();

  // --- Lanes: every shard (and the sequential lane, when present) runs
  // its own pass loop without barriers; lane state is private, so the only
  // synchronization is the final join.
  const size_t n_lanes = S + (have_sequential_ ? 1 : 0);
  std::vector<RuntimeStats::Shard> lane_acc(n_lanes);
  ParallelDo(n_lanes, [&](size_t t) {
    if (t < S && !OwnsShard(t)) return;  // slice mode: not our shard
    // Each lane carries a private TraceContext (the shared Tracer's ring
    // is internally locked) so lane spans parent to the pipeline caller
    // without racing on a shared parent cursor.
    TraceContext trace{options_.tracer, options_.trace_parent_span};
    DB_SPAN_NAMED(lane_span, trace,
                  t < S ? "pipeline.lane" : "pipeline.seq_lane");
    if (t < S) lane_span.Tag("shard", static_cast<uint64_t>(t));
    LaneScratch scratch = MakeScratch();
    RuntimeStats::Shard& acc = lane_acc[t];
    bool stop = false;
    if (t < S) {
      for (size_t pass = 0; pass < passes && !stop; ++pass) {
        if (options_.early_stopping && ShardLaneConverged(t)) break;
        // Shard t owns blocks {b >= 1 : (b-1) % S == t}; shard 0 re-plays
        // block 0 on passes >= 1 (pass 0 ran it on the caller above).
        if (pass > 0 && t == 0) {
          if (OverBudget(watch) || CancelRequested()) break;
          Stopwatch inspect_watch;
          InspectShardBlock(blocks[0], 0, &scratch);
          acc.inspection_s += inspect_watch.Seconds();
          acc.blocks_processed += 1;
          acc.records_processed += blocks[0].records;
          TickProgress(blocks[0].records);
        }
        for (size_t b = t + 1; b < blocks.size(); b += S) {
          if (OverBudget(watch) || CancelRequested()) {
            stop = true;
            break;
          }
          if (options_.early_stopping && ShardLaneConverged(t)) break;
          if (blocks[b].rows == 0) continue;  // truncated by budget/cancel
          Stopwatch inspect_watch;
          InspectShardBlock(blocks[b], t, &scratch);
          acc.inspection_s += inspect_watch.Seconds();
          acc.blocks_processed += 1;
          acc.records_processed += blocks[b].records;
          TickProgress(blocks[b].records);
        }
      }
    } else {
      // Sequential lane: non-mergeable pairs + merged composites, all
      // blocks in global order (bit-exact at any shard count).
      for (size_t pass = 0; pass < passes && !stop; ++pass) {
        if (options_.early_stopping && SequentialLaneConverged()) break;
        for (size_t b = pass == 0 ? 1 : 0; b < blocks.size(); ++b) {
          if (OverBudget(watch) || CancelRequested()) {
            stop = true;
            break;
          }
          if (options_.early_stopping && SequentialLaneConverged()) break;
          if (blocks[b].rows == 0) continue;
          Stopwatch inspect_watch;
          InspectSequentialBlock(blocks[b], &scratch,
                                 /*include_shardable_primary=*/false);
          acc.inspection_s += inspect_watch.Seconds();
          acc.blocks_processed += 1;
          acc.records_processed += blocks[b].records;
        }
      }
    }
  });
  for (size_t t = 0; t < n_lanes; ++t) {
    totals->lanes[t].Accumulate(lane_acc[t]);
  }
  size_t shard_dispatch = 0;
  for (size_t s = 0; s < S; ++s) {
    shard_dispatch += totals->lanes[s].blocks_processed;
  }
  const size_t seq_dispatch =
      have_sequential_ ? totals->lanes[S].blocks_processed : 0;
  totals->blocks_processed = std::max(shard_dispatch, seq_dispatch);
  totals->stopped_early = options_.early_stopping && AllConverged();
}

void BlockPipeline::RunShardedStreaming(const Stopwatch& watch,
                                        Totals* totals) {
  const size_t S = num_shards_;
  const size_t passes = std::max<size_t>(1, options_.passes);
  const size_t n_lanes = S + (have_sequential_ ? 1 : 0);
  std::vector<LaneScratch> lane_scratch;
  lane_scratch.reserve(n_lanes);
  for (size_t t = 0; t < n_lanes; ++t) lane_scratch.push_back(MakeScratch());
  std::vector<RuntimeStats::Shard> lane_acc(n_lanes);
  size_t serial = 0;
  size_t dispatched = 0;
  bool stopped_early = false;
  // One span over the whole streaming loop: per-wave spans would flood
  // the trace ring on long runs without adding timeline structure.
  TraceContext trace{options_.tracer, options_.trace_parent_span};
  DB_SPAN_NAMED(stream_span, trace, "pipeline.stream");

  for (size_t pass = 0; pass < passes && !stopped_early; ++pass) {
    BlockIterator it(&dataset_, options_.block_size,
                     options_.shuffle_seed + pass);
    if (!it.HasNext() || dispatched >= options_.max_blocks ||
        OverBudget(watch) || CancelRequested()) {
      break;
    }
    // --- Per-pass block 0 on the caller thread. On pass 0 it calibrates
    // the primaries before the replicas are cloned; on later passes it is
    // shard 0's block (plus the sequential lane's, like every block).
    {
      std::vector<size_t> block = it.NextBlock();
      BlockData data;
      ExtractInto(block, serial++, &data);
      totals->lanes[0].unit_extraction_s += data.unit_s;
      totals->lanes[0].hyp_extraction_s += data.hyp_s;
      totals->records_processed += data.records;
      Stopwatch inspect_watch;
      if (pass == 0) {
        InspectSequentialBlock(data, &lane_scratch[0],
                               /*include_shardable_primary=*/true);
        EnsureReplicas();
      } else {
        InspectSequentialBlock(data, &lane_scratch[0],
                               /*include_shardable_primary=*/false);
        InspectShardBlock(data, 0, &lane_scratch[0]);
      }
      totals->lanes[0].inspection_s += inspect_watch.Seconds();
      totals->lanes[0].blocks_processed += 1;
      totals->lanes[0].records_processed += data.records;
      TickProgress(data.records);
      if (have_sequential_) {
        totals->lanes[S].blocks_processed += 1;
        totals->lanes[S].records_processed += data.records;
      }
      ++dispatched;
      if (options_.early_stopping && AllConverged()) {
        stopped_early = true;
        break;
      }
    }
    // --- Waves of up to S blocks: parallel extraction, then one lane per
    // block (wave offset i is shard i by construction) plus the sequential
    // lane over the whole wave in order. Early stopping and the time
    // budget are enforced at wave boundaries.
    std::vector<std::vector<size_t>> wave_idx;
    std::vector<BlockData> wave(S);
    while (!stopped_early && it.HasNext() &&
           dispatched < options_.max_blocks && !OverBudget(watch) &&
           !CancelRequested()) {
      wave_idx.clear();
      while (wave_idx.size() < S && it.HasNext() &&
             dispatched + wave_idx.size() < options_.max_blocks) {
        wave_idx.push_back(it.NextBlock());
      }
      if (wave_idx.empty()) break;
      const size_t wn = wave_idx.size();
      const size_t base_serial = serial;
      serial += wn;
      ParallelDo(wn, [&](size_t i) {
        ExtractInto(wave_idx[i], base_serial + i, &wave[i]);
      });
      for (size_t i = 0; i < wn; ++i) {
        totals->lanes[i].unit_extraction_s += wave[i].unit_s;
        totals->lanes[i].hyp_extraction_s += wave[i].hyp_s;
        totals->records_processed += wave[i].records;
      }
      const size_t tasks = wn + (have_sequential_ ? 1 : 0);
      ParallelDo(tasks, [&](size_t t) {
        if (t < wn) {
          Stopwatch inspect_watch;
          InspectShardBlock(wave[t], t, &lane_scratch[t]);
          lane_acc[t].inspection_s += inspect_watch.Seconds();
          lane_acc[t].blocks_processed += 1;
          lane_acc[t].records_processed += wave[t].records;
          TickProgress(wave[t].records);
        } else {
          Stopwatch inspect_watch;
          for (size_t i = 0; i < wn; ++i) {
            InspectSequentialBlock(wave[i], &lane_scratch[S],
                                   /*include_shardable_primary=*/false);
            lane_acc[S].blocks_processed += 1;
            lane_acc[S].records_processed += wave[i].records;
          }
          lane_acc[S].inspection_s += inspect_watch.Seconds();
        }
      });
      dispatched += wn;
      if (options_.early_stopping && AllConverged()) stopped_early = true;
    }
  }
  for (size_t t = 0; t < n_lanes; ++t) {
    totals->lanes[t].Accumulate(lane_acc[t]);
  }
  size_t shard_dispatch = 0;
  for (size_t s = 0; s < S; ++s) {
    shard_dispatch += totals->lanes[s].blocks_processed;
  }
  const size_t seq_dispatch =
      have_sequential_ ? totals->lanes[S].blocks_processed : 0;
  totals->blocks_processed = std::max(shard_dispatch, seq_dispatch);
  totals->stopped_early =
      stopped_early || (options_.early_stopping && AllConverged());
  stream_span.Tag("blocks", static_cast<uint64_t>(dispatched));
}

}  // namespace deepbase
