// The DeepBase engine (paper §5, Figure 4): given models/unit groups, a
// dataset, measures, and hypotheses, compute all affinity scores. The
// optimization flags correspond exactly to the paper's ablation systems:
//
//   streaming=false, model_merging=false, early_stopping=false  -> PyBase
//   streaming=false, model_merging=true,  early_stopping=false  -> +MM
//   streaming=false, model_merging=true,  early_stopping=true   -> +MM+ES
//   streaming=true,  model_merging=true,  early_stopping=true   -> DeepBase
//
// plus the shared hypothesis-behavior cache (Figure 9) and thread-pool
// batch extraction (the GPU substitute; Figures 5/7).

#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/cache.h"
#include "core/extractor.h"
#include "core/result_table.h"
#include "hypothesis/hypothesis.h"
#include "measures/measure.h"

namespace deepbase {

class BehaviorStore;
class SharedScanClient;
class ThreadPool;
class Tracer;

/// \brief A named subset of one model's hidden units (paper Def. 1 takes
/// unit groups, not whole models, so per-group joint measures are scoped
/// correctly — e.g. "layer0", "layer1", "all").
struct UnitGroupSpec {
  std::string group_id;
  std::vector<int> unit_ids;
};

/// \brief One model to inspect and the unit groups to score within it.
struct ModelSpec {
  const Extractor* extractor = nullptr;  // not owned
  std::vector<UnitGroupSpec> groups;
};

/// \brief All units of the extractor as a single group.
ModelSpec AllUnitsGroup(const Extractor* extractor,
                        const std::string& group_id = "all");

/// \brief Live progress counters of one engine run, safe to read from any
/// thread while the run is in flight. The block pipeline stores the
/// planned dispatch count into `blocks_total` when its block loop starts
/// (resetting `blocks_done`), then bumps `blocks_done`/`records_done` as
/// block inspections complete — the counter JobHandle::Poll snapshots and
/// the serving layer streams to remote clients as progress events. Early
/// stopping, budgets, and cancellation may finish a run below
/// `blocks_total`; `blocks_done` never exceeds it.
struct ProgressCounter {
  std::atomic<uint64_t> blocks_done{0};
  std::atomic<uint64_t> blocks_total{0};
  std::atomic<uint64_t> records_done{0};
};

/// \brief Engine configuration (defaults = full DeepBase, paper §6.2).
struct InspectOptions {
  size_t block_size = 512;
  uint64_t shuffle_seed = 7;

  /// Number of passes over the dataset. SGD-based joint measures on small
  /// datasets need several passes (§6.3: DeepBase extracts activations once
  /// and makes subsequent passes on the cached/materialized version, which
  /// is what streaming=false + passes>1 reproduces).
  size_t passes = 1;

  /// Lazy/online behavior extraction (§5.2.3).
  bool streaming = true;
  /// Convergence-based early stopping (§5.2.2).
  bool early_stopping = true;
  /// Composite-model training for mergeable joint measures (§5.2.1).
  bool model_merging = true;

  /// Error thresholds per measure family (paper defaults: ε=0.025 at 95%
  /// confidence for correlation, 0.01 for logistic regression).
  double corr_epsilon = 0.025;
  double logreg_epsilon = 0.01;
  double default_epsilon = 0.01;

  /// Optional shared hypothesis-behavior cache (one per dataset).
  HypothesisCache* hypothesis_cache = nullptr;

  /// Optional disk-backed behavior store (the Mistique-style substrate,
  /// §5.1.2/§6.3). When set, each model's unit behaviors are materialized
  /// into the store on first inspection and served from it afterwards, so
  /// re-inspection skips the forward passes entirely — including across
  /// process restarts. Typically owned by an InspectionSession.
  ///
  /// Caveats: entries are keyed by (model_id, dataset fingerprint), so a
  /// retrained model must get a fresh model_id or the store serves its
  /// old behaviors; and the one-time materialization extracts the full
  /// dataset upfront, outside the time_budget_s/max_blocks limits (only
  /// cancellation is honored between models).
  BehaviorStore* behavior_store = nullptr;

  /// When a behavior store is attached, also persist each hypothesis's
  /// full behaviors under HypothesisBehaviorKey (keyed by hypothesis name
  /// + dataset fingerprint) and serve block extraction from the stored
  /// matrix — compiled hypothesis behaviors are reused across jobs and
  /// across restarts, like the unit tier. The one-time materialization
  /// evaluates the hypothesis over the whole dataset upfront (same §6.3
  /// trade-off as unit materialization). Ignored without a store.
  ///
  /// Caveat (same contract as the unit tier's model_id): the hypothesis
  /// *name* is its store identity. A changed hypothesis function must be
  /// registered under a fresh name, or its stale stored behaviors are
  /// served — including across restarts. Disable this flag for
  /// hypotheses whose definition churns under a fixed name.
  bool hypothesis_store_tier = true;

  /// Shared-scan membership for the multi-query scheduler: when set, unit
  /// behaviors of each block are fetched through the fused group's
  /// SharedScan, so N concurrent jobs over one (model, dataset) pay one
  /// extraction pass. Never changes scores — the scan memoizes the exact
  /// per-block matrices this job would have extracted itself. Typically
  /// set by InspectionSession's scheduler, not by hand.
  SharedScanClient* shared_scan = nullptr;

  /// Intra-job parallelism: shard this job's block loop into this many
  /// deterministic lanes (block b > 0 belongs to shard (b-1) % num_shards;
  /// block 0 calibrates the primary state). 0 = one shard per pool thread
  /// (sequential when no pool is attached); 1 = the classic sequential
  /// engine. Scores depend only on (shuffle seed, num_shards), never on
  /// the thread count: mergeable measures recombine shard partials via
  /// Measure::MergeFrom in shard order (bit-exact for integer-count
  /// measures, FP-rounding-exact for moment sums), and non-mergeable
  /// (SGD-trained) measures run on a sequential lane in global block
  /// order. Pin num_shards explicitly when bitwise reproducibility across
  /// machines matters. Values above 64 are clamped (with a warning): the
  /// effective, clamped count is what keys the determinism contract and
  /// is reported in RuntimeStats::num_shards.
  size_t num_shards = 0;

  /// Worker pool shared by extraction fan-out and shard lanes. Typically
  /// the session pool (jobs and shards share it; ThreadPool::ParallelFor
  /// is cooperative, so each job's own thread is a guaranteed budget and
  /// idle capacity is divided first-come). When null and num_shards > 1,
  /// the engine spins up a transient pool for the call.
  ThreadPool* pool = nullptr;

  /// Hard limits (the paper enforces a 30-minute benchmark timeout).
  double time_budget_s = std::numeric_limits<double>::infinity();
  size_t max_blocks = std::numeric_limits<size_t>::max();

  /// Absolute completion deadline, checked at the same block boundaries
  /// as time_budget_s. The semantics differ: a budget-truncated run
  /// returns its partial scores as a normal result, while a run that
  /// crosses its deadline is reported via RuntimeStats::deadline_exceeded
  /// and surfaced by the serving layers as kDeadlineExceeded — callers
  /// with a deadline want a definitive outcome, not a silently partial
  /// table. steady_clock (never wall clock): deadlines cross hosts as
  /// relative remaining budgets, re-anchored on arrival (see
  /// server/wire.h), so clock skew cannot shrink or stretch them.
  /// time_point::max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Cooperative cancellation: checked between blocks, like the time
  /// budget. Set by JobHandle::Cancel() for async jobs; the engine stops
  /// and returns the partial scores accumulated so far.
  const std::atomic<bool>* cancel = nullptr;

  /// Live progress sink (not owned; may be shared with pollers on other
  /// threads). Set by the session scheduler for async jobs so
  /// JobHandle::Poll and the network serving layer report blocks
  /// completed / total planned while the run is in flight.
  ProgressCounter* progress = nullptr;

  /// Span sink for this run (util/trace.h) and the parent span new spans
  /// hang off. Local-only pointers, like cancel/progress: they never
  /// cross the wire (trace *ids* do, via the Submit/Assign frames) and
  /// never participate in request fingerprints — two jobs differing only
  /// in tracing dedup and cache-hit against each other. null = tracing
  /// off for this run (DB_SPAN sites cost one branch).
  Tracer* tracer = nullptr;
  uint64_t trace_parent_span = 0;
};

/// X-macro over every accumulated scalar field of RuntimeStats::Shard.
/// RuntimeStats::Shard::Accumulate is generated from this list, and a
/// static_assert in engine.cc pins sizeof(Shard) to the listed fields —
/// a new field that is not added here fails the build instead of being
/// silently dropped from accumulation.
#define DEEPBASE_RUNTIME_STATS_SHARD_FIELDS(X) \
  X(double, unit_extraction_s)                 \
  X(double, hyp_extraction_s)                  \
  X(double, inspection_s)                      \
  X(size_t, blocks_processed)                  \
  X(size_t, records_processed)

/// X-macro over every summed scalar field of RuntimeStats (everything
/// except `shards`, `num_shards`, and the three latched bools, which
/// have bespoke merge rules). Same drift guard as the Shard list.
#define DEEPBASE_RUNTIME_STATS_SCALAR_FIELDS(X) \
  X(double, unit_extraction_s)                  \
  X(double, hyp_extraction_s)                   \
  X(double, inspection_s)                       \
  X(double, merge_s)                            \
  X(double, worker_hop_s)                       \
  X(double, total_s)                            \
  X(size_t, blocks_processed)                   \
  X(size_t, records_processed)                  \
  X(size_t, blocks_total_planned)               \
  X(size_t, cache_hits)                         \
  X(size_t, cache_misses)                       \
  X(size_t, store_mem_hits)                     \
  X(size_t, store_disk_hits)                    \
  X(size_t, store_mmap_hits)                    \
  X(size_t, store_misses)                       \
  X(size_t, store_evictions)                    \
  X(size_t, store_evicted_bytes)                \
  X(size_t, store_bytes_written)                \
  X(size_t, store_hyp_mem_hits)                 \
  X(size_t, store_hyp_disk_hits)                \
  X(size_t, store_hyp_misses)                   \
  X(size_t, result_cache_hits)                  \
  X(size_t, result_cache_misses)                \
  X(size_t, dedup_hits)                         \
  X(size_t, scan_extractions)                   \
  X(size_t, scan_shared_hits)

/// \brief Engine instrumentation for the runtime-breakdown experiments
/// (Figure 8) and cache studies (Figure 9).
///
/// Concurrency: phase seconds are summed from per-lane accumulators (each
/// lane times its own work; no shared stopwatch), so under sharding they
/// are CPU-seconds that may exceed the wall-clock total_s. blocks_processed
/// counts block-inspection dispatches; under sharding a block inspected by
/// both a shard lane and the sequential lane is counted once.
struct RuntimeStats {
  /// \brief One lane's runtime breakdown (see `shards`).
  struct Shard {
    double unit_extraction_s = 0;
    double hyp_extraction_s = 0;
    double inspection_s = 0;
    size_t blocks_processed = 0;
    size_t records_processed = 0;

    void Accumulate(const Shard& other);
  };

  double unit_extraction_s = 0;
  double hyp_extraction_s = 0;
  double inspection_s = 0;
  /// Time folding shard replicas back into the primary states — the
  /// in-process MergeReplicas pass, or the coordinator's cross-worker
  /// state merge for a distributed run. Kept out of inspection_s so the
  /// score phase reports pure block-scoring time.
  double merge_s = 0;
  /// Distributed runs only: dispatch-to-result time on the coordinator
  /// beyond what the worker spent executing — wire transfer, queueing on
  /// the worker, reassignment backoff. 0 for local runs.
  double worker_hop_s = 0;
  double total_s = 0;
  size_t blocks_processed = 0;
  size_t records_processed = 0;
  /// Planned block dispatches of the run (per-pass block count × passes,
  /// capped by max_blocks) — the denominator of a progress display.
  /// blocks_processed < blocks_total_planned means early stopping, a
  /// budget, or cancellation ended the run before the full sweep.
  size_t blocks_total_planned = 0;
  /// Per-lane breakdown: entries [0, num_shards) are the shard lanes; when
  /// non-mergeable or merged measures forced a sequential lane at
  /// num_shards > 1, one extra trailing entry carries it. Sequential runs
  /// have exactly one entry.
  std::vector<Shard> shards;
  /// Effective shard count of the run (resolved from
  /// InspectOptions::num_shards).
  size_t num_shards = 1;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Behavior-store counters for this inspection (the unified view of the
  /// former BehaviorStore::Stats — one counter set for the Figure 9 /
  /// store benchmarks instead of two). mem/disk hits count store reads
  /// that skipped live extraction; misses count materializations.
  size_t store_mem_hits = 0;
  size_t store_disk_hits = 0;
  /// Out-of-core reads: stored behaviors served as a read-only mmap of
  /// the v2 file payload because they exceed the memory tier's limit.
  size_t store_mmap_hits = 0;
  size_t store_misses = 0;
  size_t store_evictions = 0;
  /// Byte-valued store accounting (evictions above counts events; these
  /// report actual sizes — bytes freed by evictions and bytes written to
  /// disk including file framing).
  size_t store_evicted_bytes = 0;
  size_t store_bytes_written = 0;
  /// Hypothesis-tier store counters (HypothesisBehaviorKey entries), kept
  /// separate from the unit-tier store_* trio above.
  size_t store_hyp_mem_hits = 0;
  size_t store_hyp_disk_hits = 0;
  size_t store_hyp_misses = 0;
  /// Session result cache (InspectionSession scheduler): a hit means the
  /// engine never ran (blocks_processed == 0).
  size_t result_cache_hits = 0;
  size_t result_cache_misses = 0;
  /// In-flight dedup (scheduler): this job attached as a waiter on an
  /// identical running job and received its table — the engine never ran
  /// for it (blocks_processed == 0).
  size_t dedup_hits = 0;
  /// Shared-scan counters for fused job groups: blocks this job extracted
  /// itself vs blocks served from a co-scheduled job's extraction.
  size_t scan_extractions = 0;
  size_t scan_shared_hits = 0;
  /// True if every score converged before the data ran out.
  bool all_converged = false;
  /// True if the run was stopped by InspectOptions::cancel.
  bool cancelled = false;
  /// True if the run was stopped by InspectOptions::deadline. The table
  /// returned by Inspect() is partial; RunPlan/RunInspectRequest convert
  /// this flag into a kDeadlineExceeded error so no caller above the raw
  /// engine ever mistakes the truncation for a complete result.
  bool deadline_exceeded = false;

  /// \brief Sum another run's counters/timings into this one (used when a
  /// statement fans out into several engine calls, e.g. SQL GROUP BY).
  void Accumulate(const RuntimeStats& other);
};

/// \brief Run Deep Neural Inspection (paper Def. 2 / deepbase.inspect()):
/// returns scores for every (unit group, hypothesis, measure) triple.
ResultTable Inspect(const std::vector<ModelSpec>& models,
                    const Dataset& dataset,
                    const std::vector<MeasureFactoryPtr>& scores,
                    const std::vector<HypothesisPtr>& hypotheses,
                    const InspectOptions& options = {},
                    RuntimeStats* stats = nullptr);

}  // namespace deepbase
