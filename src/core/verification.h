// Perturbation-based verification (paper §4.4): to check that high-scoring
// units really track a hypothesis, swap a symbol with a hypothesis-
// consistent replacement (baseline) and a hypothesis-inconsistent one
// (treatment), and test whether the units' activation deltas separate the
// two conditions. Separation is scored with the Silhouette coefficient
// (Rousseeuw 1987), as in the paper's Appendix C.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/extractor.h"
#include "tensor/matrix.h"

namespace deepbase {

/// \brief User-supplied perturbation logic for one hypothesis.
struct PerturbationSpec {
  /// Positions eligible for perturbation (typically where h(d) is active).
  std::function<bool(const Record&, size_t)> eligible;
  /// Replacement token that keeps the hypothesis behavior at the position
  /// unchanged (e.g. '(' -> ')'); nullopt if no such swap exists here.
  std::function<std::optional<std::string>(const Record&, size_t)> baseline;
  /// Replacement token that changes the hypothesis behavior (e.g. '(' ->
  /// '7'); nullopt if no such swap exists here.
  std::function<std::optional<std::string>(const Record&, size_t)> treatment;
};

/// \brief Outcome of a verification run.
struct VerificationResult {
  /// Mean Silhouette coefficient over the two perturbation clusters;
  /// near 0 = indistinguishable, towards 1 = clearly separated.
  double silhouette = 0;
  size_t n_baseline = 0;
  size_t n_treatment = 0;
  /// Δactivation vectors (one row per perturbed input, |units| columns).
  Matrix baseline_deltas;
  Matrix treatment_deltas;
};

/// \brief Mean Silhouette coefficient of a 2-cluster labeling (Euclidean).
/// Rows of `a` form cluster 0, rows of `b` cluster 1.
double SilhouetteScore(const Matrix& a, const Matrix& b);

/// \brief Run the §4.4 randomized-perturbation procedure on `units` of the
/// model behind `extractor`, sampling up to `max_samples` perturbations of
/// each kind from `dataset`. Deterministic in `seed`.
VerificationResult VerifyUnits(const Extractor& extractor,
                               const Dataset& dataset,
                               const std::vector<int>& units,
                               const PerturbationSpec& spec,
                               size_t max_samples, uint64_t seed);

}  // namespace deepbase
