#include "core/engine.h"

#include <algorithm>
#include <memory>

#include "core/behavior_store.h"
#include "core/block_pipeline.h"
#include "core/shared_scan.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace deepbase {

// Drift guards for the X-macro field lists: every scalar is 8 bytes on
// the supported targets, so a field added to the struct but not to the
// macro changes sizeof and fails these asserts instead of silently
// skipping accumulation. The trailing bools pad to one alignment unit.
namespace {
#define DEEPBASE_COUNT_FIELD(type, name) +1
constexpr size_t kShardFieldCount =
    0 DEEPBASE_RUNTIME_STATS_SHARD_FIELDS(DEEPBASE_COUNT_FIELD);
constexpr size_t kScalarFieldCount =
    0 DEEPBASE_RUNTIME_STATS_SCALAR_FIELDS(DEEPBASE_COUNT_FIELD);
#undef DEEPBASE_COUNT_FIELD
static_assert(kShardFieldCount == 5,
              "RuntimeStats::Shard field list changed; update the X-macro "
              "and this count together");
static_assert(kScalarFieldCount == 26,
              "RuntimeStats scalar field list changed; update the X-macro "
              "and this count together");
static_assert(sizeof(RuntimeStats::Shard) == kShardFieldCount * 8,
              "RuntimeStats::Shard has a field missing from "
              "DEEPBASE_RUNTIME_STATS_SHARD_FIELDS");
static_assert(sizeof(RuntimeStats) ==
                  kScalarFieldCount * 8 +
                      sizeof(std::vector<RuntimeStats::Shard>) +
                      /*num_shards*/ 8 + /*bools, padded*/ 8,
              "RuntimeStats has a field missing from "
              "DEEPBASE_RUNTIME_STATS_SCALAR_FIELDS");
}  // namespace

void RuntimeStats::Shard::Accumulate(const Shard& other) {
#define DEEPBASE_SUM_FIELD(type, name) name += other.name;
  DEEPBASE_RUNTIME_STATS_SHARD_FIELDS(DEEPBASE_SUM_FIELD)
#undef DEEPBASE_SUM_FIELD
}

void RuntimeStats::Accumulate(const RuntimeStats& other) {
#define DEEPBASE_SUM_FIELD(type, name) name += other.name;
  DEEPBASE_RUNTIME_STATS_SCALAR_FIELDS(DEEPBASE_SUM_FIELD)
#undef DEEPBASE_SUM_FIELD
  // Per-lane breakdown: shard lanes merge by index; the trailing
  // sequential-lane entry (present when shards.size() > num_shards) merges
  // into our trailing entry, so sequential-lane time is never attributed
  // to a shard lane even across runs with different lane layouts.
  const size_t other_shard_lanes =
      std::min(other.num_shards, other.shards.size());
  const bool other_has_seq = other.shards.size() > other_shard_lanes;
  size_t shard_lanes = std::min(num_shards, shards.size());
  bool has_seq = shards.size() > shard_lanes;
  if (other_shard_lanes > shard_lanes) {
    shards.insert(shards.begin() + shard_lanes,
                  other_shard_lanes - shard_lanes, Shard{});
    shard_lanes = other_shard_lanes;
  }
  for (size_t i = 0; i < other_shard_lanes; ++i) {
    shards[i].Accumulate(other.shards[i]);
  }
  if (other_has_seq) {
    if (!has_seq) shards.push_back(Shard{});
    shards.back().Accumulate(other.shards.back());
  }
  num_shards = std::max(num_shards, other.num_shards);
  all_converged = all_converged && other.all_converged;
  cancelled = cancelled || other.cancelled;
  deadline_exceeded = deadline_exceeded || other.deadline_exceeded;
}

ModelSpec AllUnitsGroup(const Extractor* extractor,
                        const std::string& group_id) {
  ModelSpec spec;
  spec.extractor = extractor;
  UnitGroupSpec group;
  group.group_id = group_id;
  group.unit_ids.resize(extractor->num_units());
  for (size_t u = 0; u < group.unit_ids.size(); ++u) {
    group.unit_ids[u] = static_cast<int>(u);
  }
  spec.groups.push_back(std::move(group));
  return spec;
}

ResultTable Inspect(const std::vector<ModelSpec>& models_in,
                    const Dataset& dataset,
                    const std::vector<MeasureFactoryPtr>& scores,
                    const std::vector<HypothesisPtr>& hypotheses,
                    const InspectOptions& options, RuntimeStats* stats) {
  Stopwatch total_watch;
  TraceContext trace{options.tracer, options.trace_parent_span};
  DB_SPAN(trace, "engine.inspect");

  auto cancel_requested = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  // Caches/stores shared across calls (and across concurrent jobs) carry
  // cumulative counters; snapshot them so this call's RuntimeStats report
  // deltas. Under concurrency the attribution is approximate (another
  // job's hits can land in this window) but bounded, instead of every job
  // re-reporting the session-lifetime totals.
  size_t cache_hits0 = 0, cache_misses0 = 0;
  if (options.hypothesis_cache != nullptr) {
    cache_hits0 = options.hypothesis_cache->hits();
    cache_misses0 = options.hypothesis_cache->misses();
  }
  size_t store_evictions0 = 0, store_bytes0 = 0, store_evicted_bytes0 = 0;
  if (options.behavior_store != nullptr) {
    store_evictions0 = options.behavior_store->evictions();
    store_evicted_bytes0 = options.behavior_store->evicted_bytes();
    store_bytes0 = options.behavior_store->bytes_written();
  }

  // --- Behavior-store substitution (§5.1.2/§6.3): when a store is
  // attached, each model's full unit behaviors are materialized once per
  // (model, dataset fingerprint) and every block is then served from the
  // store's memory/disk tiers instead of live forward passes. The specs
  // are only copied when substitution actually happens.
  const std::vector<ModelSpec>* models_ptr = &models_in;
  std::vector<ModelSpec> substituted;
  std::vector<std::unique_ptr<PrecomputedExtractor>> stored_extractors;
  size_t store_mem_hits = 0, store_disk_hits = 0, store_mmap_hits = 0;
  size_t store_misses = 0;
  double store_prelude_s = 0;
  if (options.behavior_store != nullptr) {
    Stopwatch prelude_watch;
    DB_SPAN(trace, "engine.store_prelude");
    substituted = models_in;
    models_ptr = &substituted;
    for (ModelSpec& model : substituted) {
      // Materialization is an upfront full-dataset extraction (the §6.3
      // one-time cost) and is not bounded by time_budget_s/max_blocks;
      // honor cancellation between models at least.
      if (cancel_requested()) break;
      bool materialized_now = false;
      Result<std::string> key = options.behavior_store->EnsureUnitBehaviors(
          *model.extractor, dataset, &materialized_now);
      if (!key.ok()) {
        DB_LOG(Warn) << "behavior store unavailable for model '"
                     << model.extractor->model_id()
                     << "', extracting live: " << key.status().ToString();
        continue;
      }
      BehaviorStore::Tier tier = BehaviorStore::Tier::kMiss;
      Result<PrecomputedExtractor> stored =
          OpenStoredExtractor(*key, model.extractor->model_id(), dataset,
                              options.behavior_store, &tier);
      if (!stored.ok()) {
        DB_LOG(Warn) << "cannot read stored behaviors for key '" << *key
                     << "', extracting live: " << stored.status().ToString();
        continue;
      }
      if (materialized_now) {
        ++store_misses;  // this call paid the one-time materialization
      } else if (tier == BehaviorStore::Tier::kMemory) {
        ++store_mem_hits;
      } else if (tier == BehaviorStore::Tier::kDisk) {
        ++store_disk_hits;
      } else if (tier == BehaviorStore::Tier::kMmap) {
        ++store_mmap_hits;
      }
      stored_extractors.push_back(
          std::make_unique<PrecomputedExtractor>(std::move(*stored)));
      model.extractor = stored_extractors.back().get();
    }
    store_prelude_s = prelude_watch.Seconds();
  }
  const std::vector<ModelSpec>& models = *models_ptr;

  // --- The block loop: planning, extraction fan-out, shard lanes, and
  // partial-state merging all live in the pipeline (see block_pipeline.h
  // for the determinism contract). The pipeline's spans nest under
  // engine.inspect via the rebased parent in run_options.
  InspectOptions run_options = options;
  run_options.trace_parent_span = trace.parent_span;
  BlockPipeline pipeline(models, dataset, scores, hypotheses, run_options);
  BlockPipeline::Totals totals = pipeline.Run(total_watch);

  // --- Assemble the result relation.
  ResultTable results;
  auto emit = [&](size_t m, size_t g, size_t s, size_t h,
                  const MeasureScores& ms) {
    const ModelSpec& model = models[m];
    const UnitGroupSpec& group = model.groups[g];
    ResultRow base;
    base.model_id = model.extractor->model_id();
    base.group_id = group.group_id;
    base.measure = scores[s]->name();
    base.hypothesis = hypotheses[h]->name();
    base.group_score = ms.group_score;
    if (ms.unit_scores.empty()) {
      results.Add(base);
      return;
    }
    DB_DCHECK(ms.unit_scores.size() == group.unit_ids.size());
    for (size_t u = 0; u < ms.unit_scores.size(); ++u) {
      ResultRow row = base;
      row.unit = group.unit_ids[u];
      row.unit_score = ms.unit_scores[u];
      results.Add(row);
    }
  };
  for (const auto& pair : pipeline.pairs()) {
    emit(pair.model_i, pair.group_i, pair.score_i, pair.hyp_i,
         pair.measure->Scores());
  }
  for (const auto& ms : pipeline.merged_states()) {
    for (size_t j = 0; j < ms.hyp_indices.size(); ++j) {
      emit(ms.model_i, ms.group_i, ms.score_i, ms.hyp_indices[j],
           ms.merged->ScoresFor(j));
    }
  }

  if (stats != nullptr) {
    stats->shards = totals.lanes;
    stats->num_shards = totals.num_shards;
    // Phase totals are per-lane accumulator sums (CPU-seconds under
    // sharding); the store prelude counts as unit extraction, as before.
    stats->unit_extraction_s = store_prelude_s;
    stats->hyp_extraction_s = 0;
    stats->inspection_s = 0;
    for (const RuntimeStats::Shard& lane : totals.lanes) {
      stats->unit_extraction_s += lane.unit_extraction_s;
      stats->hyp_extraction_s += lane.hyp_extraction_s;
      stats->inspection_s += lane.inspection_s;
    }
    stats->merge_s = totals.merge_s;
    stats->total_s = total_watch.Seconds();
    stats->blocks_processed = totals.blocks_processed;
    stats->records_processed = totals.records_processed;
    stats->blocks_total_planned = totals.blocks_planned;
    stats->all_converged = totals.stopped_early || pipeline.AllConverged();
    stats->cancelled = cancel_requested();
    stats->deadline_exceeded = totals.deadline_exceeded;
    if (options.hypothesis_cache != nullptr) {
      stats->cache_hits = options.hypothesis_cache->hits() - cache_hits0;
      stats->cache_misses =
          options.hypothesis_cache->misses() - cache_misses0;
    } else {
      stats->cache_misses = totals.blocks_processed * hypotheses.size();
    }
    stats->store_mem_hits = store_mem_hits;
    stats->store_disk_hits = store_disk_hits;
    stats->store_mmap_hits = store_mmap_hits;
    stats->store_misses = store_misses;
    stats->store_hyp_mem_hits = totals.store_hyp_mem_hits;
    stats->store_hyp_disk_hits = totals.store_hyp_disk_hits;
    stats->store_hyp_misses = totals.store_hyp_misses;
    if (options.behavior_store != nullptr) {
      stats->store_evictions =
          options.behavior_store->evictions() - store_evictions0;
      stats->store_evicted_bytes =
          options.behavior_store->evicted_bytes() - store_evicted_bytes0;
      stats->store_bytes_written =
          options.behavior_store->bytes_written() - store_bytes0;
    }
    if (options.shared_scan != nullptr) {
      // The client is per-job and this engine call is its one run, so the
      // cumulative client counters are this run's counters.
      stats->scan_extractions = options.shared_scan->extractions();
      stats->scan_shared_hits = options.shared_scan->shared_hits();
    }
  }
  return results;
}

}  // namespace deepbase
