#include "core/engine.h"

#include <algorithm>
#include <memory>

#include "core/behavior_store.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace deepbase {

void RuntimeStats::Accumulate(const RuntimeStats& other) {
  unit_extraction_s += other.unit_extraction_s;
  hyp_extraction_s += other.hyp_extraction_s;
  inspection_s += other.inspection_s;
  total_s += other.total_s;
  blocks_processed += other.blocks_processed;
  records_processed += other.records_processed;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  store_mem_hits += other.store_mem_hits;
  store_disk_hits += other.store_disk_hits;
  store_misses += other.store_misses;
  store_evictions += other.store_evictions;
  store_bytes_written += other.store_bytes_written;
  all_converged = all_converged && other.all_converged;
  cancelled = cancelled || other.cancelled;
}

namespace {

// Error threshold for a measure family (paper §6.2 defaults).
double EpsilonFor(const MeasureFactory& factory, const InspectOptions& opts) {
  const std::string& name = factory.name();
  if (name.rfind("correlation", 0) == 0) return opts.corr_epsilon;
  if (name.rfind("logreg", 0) == 0) return opts.logreg_epsilon;
  return opts.default_epsilon;
}

struct PairState {
  size_t model_i, group_i, score_i, hyp_i;
  std::unique_ptr<Measure> measure;
  double epsilon;
  bool converged = false;
};

struct MergedState {
  size_t model_i, group_i, score_i;
  std::unique_ptr<MergedMeasure> merged;
  std::vector<size_t> hyp_indices;  // indices into the hypothesis list
  std::vector<bool> head_converged;
  double epsilon;
  bool all_converged = false;
};

struct BlockData {
  std::vector<Matrix> unit_behaviors;  // one per model
  Matrix hyp_behaviors;                // nsym × |H|
};

}  // namespace

ModelSpec AllUnitsGroup(const Extractor* extractor,
                        const std::string& group_id) {
  ModelSpec spec;
  spec.extractor = extractor;
  UnitGroupSpec group;
  group.group_id = group_id;
  group.unit_ids.resize(extractor->num_units());
  for (size_t u = 0; u < group.unit_ids.size(); ++u) {
    group.unit_ids[u] = static_cast<int>(u);
  }
  spec.groups.push_back(std::move(group));
  return spec;
}

ResultTable Inspect(const std::vector<ModelSpec>& models_in,
                    const Dataset& dataset,
                    const std::vector<MeasureFactoryPtr>& scores,
                    const std::vector<HypothesisPtr>& hypotheses,
                    const InspectOptions& options, RuntimeStats* stats) {
  Stopwatch total_watch;
  TimeAccumulator unit_time, hyp_time, inspect_time;

  auto cancel_requested = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  // Caches/stores shared across calls (and across concurrent jobs) carry
  // cumulative counters; snapshot them so this call's RuntimeStats report
  // deltas. Under concurrency the attribution is approximate (another
  // job's hits can land in this window) but bounded, instead of every job
  // re-reporting the session-lifetime totals.
  size_t cache_hits0 = 0, cache_misses0 = 0;
  if (options.hypothesis_cache != nullptr) {
    cache_hits0 = options.hypothesis_cache->hits();
    cache_misses0 = options.hypothesis_cache->misses();
  }
  size_t store_evictions0 = 0, store_bytes0 = 0;
  if (options.behavior_store != nullptr) {
    store_evictions0 = options.behavior_store->evictions();
    store_bytes0 = options.behavior_store->bytes_written();
  }

  // --- Behavior-store substitution (§5.1.2/§6.3): when a store is
  // attached, each model's full unit behaviors are materialized once per
  // (model, dataset fingerprint) and every block is then served from the
  // store's memory/disk tiers instead of live forward passes. The specs
  // are only copied when substitution actually happens.
  const std::vector<ModelSpec>* models_ptr = &models_in;
  std::vector<ModelSpec> substituted;
  std::vector<std::unique_ptr<PrecomputedExtractor>> stored_extractors;
  size_t store_mem_hits = 0, store_disk_hits = 0, store_misses = 0;
  if (options.behavior_store != nullptr) {
    substituted = models_in;
    models_ptr = &substituted;
    unit_time.Start();
    for (ModelSpec& model : substituted) {
      // Materialization is an upfront full-dataset extraction (the §6.3
      // one-time cost) and is not bounded by time_budget_s/max_blocks;
      // honor cancellation between models at least.
      if (cancel_requested()) break;
      bool materialized_now = false;
      Result<std::string> key = options.behavior_store->EnsureUnitBehaviors(
          *model.extractor, dataset, &materialized_now);
      if (!key.ok()) {
        DB_LOG(Warn) << "behavior store unavailable for model '"
                     << model.extractor->model_id()
                     << "', extracting live: " << key.status().ToString();
        continue;
      }
      BehaviorStore::Tier tier = BehaviorStore::Tier::kMiss;
      Result<PrecomputedExtractor> stored =
          OpenStoredExtractor(*key, model.extractor->model_id(), dataset,
                              options.behavior_store, &tier);
      if (!stored.ok()) {
        DB_LOG(Warn) << "cannot read stored behaviors for key '" << *key
                     << "', extracting live: " << stored.status().ToString();
        continue;
      }
      if (materialized_now) {
        ++store_misses;  // this call paid the one-time materialization
      } else if (tier == BehaviorStore::Tier::kMemory) {
        ++store_mem_hits;
      } else if (tier == BehaviorStore::Tier::kDisk) {
        ++store_disk_hits;
      }
      stored_extractors.push_back(
          std::make_unique<PrecomputedExtractor>(std::move(*stored)));
      model.extractor = stored_extractors.back().get();
    }
    unit_time.Stop();
  }
  const std::vector<ModelSpec>& models = *models_ptr;

  // --- Plan extraction: per model, the union of its groups' units, and per
  // group the column indices into that union.
  std::vector<std::vector<int>> model_units(models.size());
  std::vector<std::vector<std::vector<size_t>>> group_cols(models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    std::vector<int> units;
    for (const auto& group : models[m].groups) {
      units.insert(units.end(), group.unit_ids.begin(), group.unit_ids.end());
    }
    std::sort(units.begin(), units.end());
    units.erase(std::unique(units.begin(), units.end()), units.end());
    model_units[m] = units;
    group_cols[m].resize(models[m].groups.size());
    for (size_t g = 0; g < models[m].groups.size(); ++g) {
      for (int uid : models[m].groups[g].unit_ids) {
        auto it = std::lower_bound(units.begin(), units.end(), uid);
        DB_DCHECK(it != units.end() && *it == uid);
        group_cols[m][g].push_back(
            static_cast<size_t>(it - units.begin()));
      }
    }
  }

  // --- Plan measures: merged states for mergeable joint measures over
  // binary hypotheses (when model merging is on), individual Measure
  // instances for everything else.
  std::vector<PairState> pairs;
  std::vector<MergedState> merged_states;
  for (size_t m = 0; m < models.size(); ++m) {
    for (size_t g = 0; g < models[m].groups.size(); ++g) {
      const size_t nu = models[m].groups[g].unit_ids.size();
      for (size_t s = 0; s < scores.size(); ++s) {
        const MeasureFactory& factory = *scores[s];
        const double eps = EpsilonFor(factory, options);
        std::vector<size_t> mergeable_hyps;
        for (size_t h = 0; h < hypotheses.size(); ++h) {
          const bool binary = hypotheses[h]->num_classes() == 2;
          if (options.model_merging && factory.mergeable() && binary) {
            mergeable_hyps.push_back(h);
          } else {
            PairState pair;
            pair.model_i = m;
            pair.group_i = g;
            pair.score_i = s;
            pair.hyp_i = h;
            pair.measure = factory.Create(nu, hypotheses[h]->num_classes());
            pair.epsilon = eps;
            pairs.push_back(std::move(pair));
          }
        }
        if (!mergeable_hyps.empty()) {
          MergedState ms;
          ms.model_i = m;
          ms.group_i = g;
          ms.score_i = s;
          ms.merged = factory.CreateMerged(nu, mergeable_hyps.size());
          DB_DCHECK(ms.merged != nullptr);
          ms.hyp_indices = std::move(mergeable_hyps);
          ms.head_converged.assign(ms.hyp_indices.size(), false);
          ms.epsilon = eps;
          merged_states.push_back(std::move(ms));
        }
      }
    }
  }

  auto all_converged = [&] {
    for (const auto& pair : pairs) {
      if (!pair.converged) return false;
    }
    for (const auto& ms : merged_states) {
      if (!ms.all_converged) return false;
    }
    return !pairs.empty() || !merged_states.empty();
  };

  size_t records_processed = 0;

  // --- Hypothesis extraction for one block (with optional caching).
  // Output formats are checked during execution (paper §4.1): a hypothesis
  // emitting the wrong number of behaviors is normalized (zero-pad /
  // truncate) with a one-time warning, so a misbehaving user function
  // cannot silently corrupt neighboring rows. InspectQuery::Execute
  // additionally pre-flights this as a hard error.
  std::vector<bool> warned_bad_size(hypotheses.size(), false);
  auto extract_hypotheses = [&](const std::vector<size_t>& block) {
    const size_t ns = dataset.ns();
    Matrix hyp_m(block.size() * ns, hypotheses.size());
    // Hoisted out of the loops so cache hits reuse its capacity instead
    // of allocating per record.
    std::vector<float> behaviors;
    for (size_t h = 0; h < hypotheses.size(); ++h) {
      const HypothesisFn& hyp = *hypotheses[h];
      for (size_t i = 0; i < block.size(); ++i) {
        // Lookup copies out of the cache so concurrent jobs sharing one
        // cache cannot observe an entry being evicted mid-read.
        const bool cached =
            options.hypothesis_cache != nullptr &&
            options.hypothesis_cache->Lookup(hyp.name(), block[i],
                                             &behaviors);
        if (!cached) {
          behaviors = hyp.Eval(dataset.record(block[i]));
          if (behaviors.size() != ns) {
            if (!warned_bad_size[h]) {
              DB_LOG(Warn)
                  << "hypothesis '" << hyp.name() << "' emitted "
                  << behaviors.size() << " behaviors for a record of " << ns
                  << " symbols; normalizing (zero-pad/truncate)";
              warned_bad_size[h] = true;
            }
            behaviors.resize(ns, 0.0f);
          }
          if (options.hypothesis_cache != nullptr) {
            options.hypothesis_cache->Put(hyp.name(), block[i], behaviors);
          }
        }
        for (size_t t = 0; t < ns; ++t) {
          hyp_m(i * ns + t, h) = behaviors[t];
        }
      }
    }
    return hyp_m;
  };

  // --- Inspection of one block; returns true if all scores converged.
  auto inspect_block = [&](const BlockData& data) {
    // Gather per-(model, group) behavior submatrices once per block.
    std::vector<std::vector<Matrix>> group_behaviors(models.size());
    for (size_t m = 0; m < models.size(); ++m) {
      group_behaviors[m].resize(models[m].groups.size());
    }
    auto group_matrix = [&](size_t m, size_t g) -> const Matrix& {
      Matrix& cached = group_behaviors[m][g];
      if (cached.empty()) {
        cached = data.unit_behaviors[m].GatherCols(group_cols[m][g]);
      }
      return cached;
    };

    for (auto& pair : pairs) {
      if (pair.converged) continue;
      const Matrix& units = group_matrix(pair.model_i, pair.group_i);
      std::vector<float> hyp_col(data.hyp_behaviors.rows());
      for (size_t r = 0; r < hyp_col.size(); ++r) {
        hyp_col[r] = data.hyp_behaviors(r, pair.hyp_i);
      }
      pair.measure->ProcessBlock(units, hyp_col);
      if (options.early_stopping && pair.measure->SupportsConvergence() &&
          pair.measure->ErrorEstimate() < pair.epsilon) {
        pair.converged = true;
      }
    }
    for (auto& ms : merged_states) {
      if (ms.all_converged) continue;
      const Matrix& units = group_matrix(ms.model_i, ms.group_i);
      Matrix hyp_sub(data.hyp_behaviors.rows(), ms.hyp_indices.size());
      for (size_t r = 0; r < hyp_sub.rows(); ++r) {
        for (size_t j = 0; j < ms.hyp_indices.size(); ++j) {
          hyp_sub(r, j) = data.hyp_behaviors(r, ms.hyp_indices[j]);
        }
      }
      ms.merged->ProcessBlock(units, hyp_sub);
      if (options.early_stopping) {
        bool all_heads = true;
        for (size_t j = 0; j < ms.hyp_indices.size(); ++j) {
          if (!ms.head_converged[j]) {
            ms.head_converged[j] = ms.merged->ErrorEstimate(j) < ms.epsilon;
          }
          all_heads = all_heads && ms.head_converged[j];
        }
        ms.all_converged = all_heads;
      }
    }
    return options.early_stopping && all_converged();
  };

  size_t blocks_processed = 0;
  bool stopped_early = false;
  const size_t passes = std::max<size_t>(1, options.passes);

  if (options.streaming) {
    // Online extraction (§5.2.3): stop reading the moment scores converge.
    // Extra passes re-extract with a different shuffle (rare for streaming;
    // multi-pass workloads normally materialize instead).
    for (size_t pass = 0; pass < passes && !stopped_early; ++pass) {
      BlockIterator it(&dataset, options.block_size,
                       options.shuffle_seed + pass);
      while (it.HasNext() && blocks_processed < options.max_blocks &&
             total_watch.Seconds() < options.time_budget_s &&
             !cancel_requested()) {
        std::vector<size_t> block = it.NextBlock();
        records_processed += block.size();
        BlockData data;
        unit_time.Start();
        for (size_t m = 0; m < models.size(); ++m) {
          data.unit_behaviors.push_back(models[m].extractor->ExtractBlock(
              dataset, block, model_units[m]));
        }
        unit_time.Stop();
        hyp_time.Start();
        data.hyp_behaviors = extract_hypotheses(block);
        hyp_time.Stop();
        inspect_time.Start();
        const bool done = inspect_block(data);
        inspect_time.Stop();
        ++blocks_processed;
        if (done) {
          stopped_early = true;
          break;
        }
      }
    }
  } else {
    // Full materialization first (naive design, §5.1.2): all behaviors are
    // extracted regardless of convergence; early stopping (if enabled) can
    // only save inspection work. Additional passes reuse the materialized
    // blocks at no extraction cost (the §6.3 multi-pass pattern).
    std::vector<BlockData> materialized;
    BlockIterator it(&dataset, options.block_size, options.shuffle_seed);
    while (it.HasNext() && materialized.size() < options.max_blocks &&
           total_watch.Seconds() < options.time_budget_s &&
           !cancel_requested()) {
      std::vector<size_t> block = it.NextBlock();
      records_processed += block.size();
      BlockData data;
      unit_time.Start();
      for (size_t m = 0; m < models.size(); ++m) {
        data.unit_behaviors.push_back(models[m].extractor->ExtractBlock(
            dataset, block, model_units[m]));
      }
      unit_time.Stop();
      hyp_time.Start();
      data.hyp_behaviors = extract_hypotheses(block);
      hyp_time.Stop();
      materialized.push_back(std::move(data));
    }
    for (size_t pass = 0; pass < passes && !stopped_early; ++pass) {
      for (const BlockData& data : materialized) {
        if (total_watch.Seconds() >= options.time_budget_s ||
            cancel_requested()) {
          break;
        }
        inspect_time.Start();
        const bool done = inspect_block(data);
        inspect_time.Stop();
        ++blocks_processed;
        if (done) {
          stopped_early = true;
          break;
        }
      }
    }
  }

  // --- Assemble the result relation.
  ResultTable results;
  auto emit = [&](size_t m, size_t g, size_t s, size_t h,
                  const MeasureScores& ms) {
    const ModelSpec& model = models[m];
    const UnitGroupSpec& group = model.groups[g];
    ResultRow base;
    base.model_id = model.extractor->model_id();
    base.group_id = group.group_id;
    base.measure = scores[s]->name();
    base.hypothesis = hypotheses[h]->name();
    base.group_score = ms.group_score;
    if (ms.unit_scores.empty()) {
      results.Add(base);
      return;
    }
    DB_DCHECK(ms.unit_scores.size() == group.unit_ids.size());
    for (size_t u = 0; u < ms.unit_scores.size(); ++u) {
      ResultRow row = base;
      row.unit = group.unit_ids[u];
      row.unit_score = ms.unit_scores[u];
      results.Add(row);
    }
  };
  for (const auto& pair : pairs) {
    emit(pair.model_i, pair.group_i, pair.score_i, pair.hyp_i,
         pair.measure->Scores());
  }
  for (const auto& ms : merged_states) {
    for (size_t j = 0; j < ms.hyp_indices.size(); ++j) {
      emit(ms.model_i, ms.group_i, ms.score_i, ms.hyp_indices[j],
           ms.merged->ScoresFor(j));
    }
  }

  if (stats != nullptr) {
    stats->unit_extraction_s = unit_time.Seconds();
    stats->hyp_extraction_s = hyp_time.Seconds();
    stats->inspection_s = inspect_time.Seconds();
    stats->total_s = total_watch.Seconds();
    stats->blocks_processed = blocks_processed;
    stats->records_processed = records_processed;
    stats->all_converged = stopped_early || all_converged();
    stats->cancelled = cancel_requested();
    if (options.hypothesis_cache != nullptr) {
      stats->cache_hits = options.hypothesis_cache->hits() - cache_hits0;
      stats->cache_misses =
          options.hypothesis_cache->misses() - cache_misses0;
    } else {
      stats->cache_misses = blocks_processed * hypotheses.size();
    }
    stats->store_mem_hits = store_mem_hits;
    stats->store_disk_hits = store_disk_hits;
    stats->store_misses = store_misses;
    if (options.behavior_store != nullptr) {
      stats->store_evictions =
          options.behavior_store->evictions() - store_evictions0;
      stats->store_bytes_written =
          options.behavior_store->bytes_written() - store_bytes0;
    }
  }
  return results;
}

}  // namespace deepbase
