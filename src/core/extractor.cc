#include "core/extractor.h"

#include "util/logging.h"

namespace deepbase {

Matrix Extractor::ExtractBlock(const Dataset& dataset,
                               const std::vector<size_t>& record_idx,
                               const std::vector<int>& unit_ids) const {
  const size_t ns = dataset.ns();
  Matrix out(record_idx.size() * ns, unit_ids.size());
  for (size_t i = 0; i < record_idx.size(); ++i) {
    Matrix rec_m = ExtractRecord(dataset.record(record_idx[i]), unit_ids);
    DB_DCHECK(rec_m.rows() == ns);
    for (size_t t = 0; t < ns; ++t) out.SetRow(i * ns + t, rec_m.Row(t));
  }
  return out;
}

}  // namespace deepbase
