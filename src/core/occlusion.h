// Occlusion analysis (paper §7: "machine learning engineers selectively
// replace patches of an image by a black area and observe which hidden
// units are affected" [65]). A patch slides over the image; each unit's
// sensitivity at a pixel is the mean activation drop caused by the patches
// covering that pixel. Scoring sensitivity maps against per-pixel concept
// annotations identifies which units depend on which concepts — the
// occlusion counterpart of the §4.4 perturbation verification.

#pragma once

#include <vector>

#include "data/images.h"
#include "nn/conv.h"
#include "util/status.h"

namespace deepbase {

struct OcclusionOptions {
  /// Side length of the square occluder.
  size_t patch = 4;
  /// Slide stride; must divide the work into overlapping or abutting
  /// placements (stride <= patch keeps full coverage).
  size_t stride = 2;
  /// Occluder pixel value (0 = the literature's black patch).
  float fill = 0.0f;
};

/// \brief Per-unit occlusion sensitivity maps for one image, each H×W and
/// aligned with the input: map[u](y, x) = mean over patch placements
/// covering (y, x) of the drop in unit u's mean activation.
std::vector<Matrix> OcclusionSensitivity(const TextureCnn& cnn,
                                         const Matrix& image,
                                         const OcclusionOptions& opts = {});

/// \brief Affinity of one unit's sensitivity to one concept: mean
/// sensitivity inside the concept's annotated pixels minus the mean
/// outside (difference of means over the sensitivity map).
struct OcclusionScore {
  size_t unit = 0;
  int concept_id = 0;
  float score = 0;
};

/// \brief Score every (unit, concept) pair over a corpus of annotated
/// images. Images without a given concept contribute nothing to that
/// concept's score. Returns scores sorted by (unit, concept_id).
Result<std::vector<OcclusionScore>> ScoreOcclusion(
    const TextureCnn& cnn, const std::vector<AnnotatedImage>& images,
    int num_concepts, const OcclusionOptions& opts = {});

/// \brief The concept each unit is most sensitive to (score argmax), or -1
/// for units with no positive score — the "unit u is a chair detector"
/// readout.
std::vector<int> AssignConcepts(const std::vector<OcclusionScore>& scores,
                                size_t num_units, int num_concepts);

}  // namespace deepbase
