#include "core/extractors.h"

#include "util/logging.h"

namespace deepbase {

namespace {

// Stack per-record behavior matrices for a block, optionally in parallel.
template <typename ExtractFn>
Matrix BlockFromRecords(const Dataset& dataset,
                        const std::vector<size_t>& record_idx,
                        size_t num_cols, ThreadPool* pool,
                        const ExtractFn& extract) {
  const size_t ns = dataset.ns();
  Matrix out(record_idx.size() * ns, num_cols);
  auto fill = [&](size_t i) {
    Matrix rec_m = extract(dataset.record(record_idx[i]));
    DB_DCHECK(rec_m.rows() == ns && rec_m.cols() == num_cols);
    for (size_t t = 0; t < ns; ++t) {
      out.SetRow(i * ns + t, rec_m.Row(t));
    }
  };
  if (pool) {
    pool->ParallelFor(record_idx.size(), fill);
  } else {
    for (size_t i = 0; i < record_idx.size(); ++i) fill(i);
  }
  return out;
}

}  // namespace

Matrix LstmLmExtractor::ExtractRecord(
    const Record& rec, const std::vector<int>& unit_ids) const {
  std::vector<size_t> cols(unit_ids.begin(), unit_ids.end());
  return model_->HiddenStates(rec.ids).GatherCols(cols);
}

Matrix LstmLmExtractor::ExtractBlock(const Dataset& dataset,
                                     const std::vector<size_t>& record_idx,
                                     const std::vector<int>& unit_ids) const {
  return BlockFromRecords(dataset, record_idx, unit_ids.size(), pool_,
                          [&](const Record& rec) {
                            return ExtractRecord(rec, unit_ids);
                          });
}

Matrix LstmLmGradientExtractor::ExtractRecord(
    const Record& rec, const std::vector<int>& unit_ids) const {
  std::vector<size_t> cols(unit_ids.begin(), unit_ids.end());
  return model_->HiddenGradients(rec.ids).GatherCols(cols);
}

Matrix LstmLmGradientExtractor::ExtractBlock(
    const Dataset& dataset, const std::vector<size_t>& record_idx,
    const std::vector<int>& unit_ids) const {
  return BlockFromRecords(dataset, record_idx, unit_ids.size(), pool_,
                          [&](const Record& rec) {
                            return ExtractRecord(rec, unit_ids);
                          });
}

Matrix Seq2SeqEncoderExtractor::ExtractRecord(
    const Record& rec, const std::vector<int>& unit_ids) const {
  std::vector<size_t> cols(unit_ids.begin(), unit_ids.end());
  return model_->EncoderStates(rec.ids).GatherCols(cols);
}

Matrix Seq2SeqEncoderExtractor::ExtractBlock(
    const Dataset& dataset, const std::vector<size_t>& record_idx,
    const std::vector<int>& unit_ids) const {
  return BlockFromRecords(dataset, record_idx, unit_ids.size(), pool_,
                          [&](const Record& rec) {
                            return ExtractRecord(rec, unit_ids);
                          });
}

Matrix PrecomputedExtractor::ExtractRecord(
    const Record& rec, const std::vector<int>& unit_ids) const {
  (void)rec;
  (void)unit_ids;
  DB_DCHECK(false && "PrecomputedExtractor requires index-based access");
  return Matrix();
}

Matrix PrecomputedExtractor::ExtractBlock(
    const Dataset& dataset, const std::vector<size_t>& record_idx,
    const std::vector<int>& unit_ids) const {
  (void)dataset;
  std::vector<size_t> cols(unit_ids.begin(), unit_ids.end());
  Matrix out(record_idx.size() * ns_, unit_ids.size());
  for (size_t i = 0; i < record_idx.size(); ++i) {
    for (size_t t = 0; t < ns_; ++t) {
      const float* src = behaviors_->row_data(record_idx[i] * ns_ + t);
      float* dst = out.row_data(i * ns_ + t);
      for (size_t j = 0; j < cols.size(); ++j) dst[j] = src[cols[j]];
    }
  }
  return out;
}

}  // namespace deepbase
