// Disk-backed behavior store — the Mistique-style substrate the paper
// names as future work for managing extracted unit/hypothesis behaviors
// (§5.1.2). Behavior matrices are persisted once per (key, dataset
// fingerprint) and served from a bounded in-memory LRU tier backed by
// checksummed files, so re-inspecting a model after a restart skips
// extraction entirely (the §6.3 workflow: "DeepBase extracts the
// activations once and makes the subsequent passes on the cached
// version").

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/extractors.h"
#include "hypothesis/hypothesis.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace deepbase {

/// \brief A stable fingerprint of a dataset's contents (records, ids, and
/// shape). Keys derived from it invalidate automatically when the dataset
/// changes.
uint64_t DatasetFingerprint(const Dataset& dataset);

/// \brief Tiered (memory LRU over disk, with out-of-core mmap handout for
/// matrices bigger than the memory tier) store of behavior matrices.
///
/// Thread-safety: all operations are serialized by an internal mutex, so
/// one store may back several concurrent inspection jobs
/// (InspectionSession::Submit). Counters are cumulative over the store's
/// lifetime; AddStatsTo() folds them into a RuntimeStats snapshot.
class BehaviorStore {
 public:
  /// Which tier served a Get (kMiss = not stored at all). kMmap means the
  /// matrix was handed out as a read-only map of the on-disk payload —
  /// out-of-core: the bytes stream through the page cache on access
  /// instead of being deserialized into the memory tier.
  enum class Tier { kMemory, kDisk, kMmap, kMiss };

  /// \param root_dir directory for the persisted matrices (created on
  ///        first Put if missing).
  /// \param memory_budget_bytes LRU tier capacity; 0 disables the memory
  ///        tier (every Get reads from disk).
  explicit BehaviorStore(std::string root_dir,
                         size_t memory_budget_bytes = 64ull << 20);

  /// \brief Per-namespace memory-tier quota (a key's namespace is its
  /// prefix up to the first ':', e.g. "unit" / "hyp"). 0 removes the
  /// quota. Quotas bound each tenant's share of the LRU tier on top of
  /// the global budget; the disk tier is never quota-limited.
  void SetNamespaceQuota(const std::string& ns, size_t bytes);

  /// \brief Persist `behaviors` under `key` (overwrites) and admit it to
  /// the memory tier. `cost` is the seconds it took to materialize the
  /// matrix; the cost-aware evictor prefers dropping cheap-to-recreate
  /// bytes first.
  Status Put(const std::string& key, const Matrix& behaviors,
             double cost = 1.0);

  /// \brief Fetch a matrix: memory tier first, then disk (re-admitting to
  /// memory). kNotFound if the key was never Put — or if the on-disk file
  /// failed validation (bad header, key mismatch, checksum mismatch), in
  /// which case the file is quarantined (renamed `.quarantined`) so the
  /// caller recomputes once instead of hitting kDataLoss on every read
  /// across restarts. `served_from`, when non-null, reports which tier
  /// answered (kMiss on any error).
  Result<Matrix> Get(const std::string& key, Tier* served_from = nullptr);

  /// \brief Like Get, but returns a shared read-only handle on the memory
  /// tier's allocation instead of a deep copy — N concurrent jobs reading
  /// one stored matrix share a single allocation (the fused-job
  /// hypothesis-tier / PrecomputedExtractor path). Eviction only drops
  /// the store's reference; live handles stay valid.
  ///
  /// Out-of-core: when the stored payload is larger than the memory
  /// tier's effective limit (the global budget, tightened by the key's
  /// namespace quota), the matrix would evict everything and still not
  /// fit — so instead of deserializing, the store maps the v2 file's
  /// 64-byte-aligned float payload read-only (Tier::kMmap) and the page
  /// cache streams it. Mmap handouts bypass the LRU and skip checksum
  /// verification (validating would read the whole payload, defeating
  /// the point); the header and file size are still validated.
  Result<std::shared_ptr<const Matrix>> GetShared(
      const std::string& key, Tier* served_from = nullptr);

  /// \brief True if the key is available (either tier) without reading the
  /// payload.
  bool Contains(const std::string& key) const;

  /// \brief The tier a GetShared would be served from right now, without
  /// serving it: kMemory (resident), kMmap (on disk but bigger than the
  /// effective memory limit, so it would be handed out as a read-only
  /// map), kDisk (on disk, would deserialize + admit), or kMiss (would
  /// extract). Counts nothing and never touches LRU order — EXPLAIN's
  /// residency probe. The mmap verdict keys on the file footprint, a
  /// header-sized overestimate of the payload GetShared compares.
  Tier PeekTier(const std::string& key) const;

  /// \brief Drop from the memory tier only (the persisted file survives).
  void EvictFromMemory(const std::string& key);

  /// \brief Delete from both tiers.
  Status Remove(const std::string& key);

  /// \brief All persisted keys, sorted.
  std::vector<std::string> Keys() const;

  // --- Blob (file-only) tier — opaque byte payloads persisted with the
  // same key/checksum framing as matrices but never admitted to the
  // memory LRU. The scheduler's persistent result cache lives here under
  // the "cache:" namespace; its own in-memory ResultCache is the memory
  // tier. Blobs are bounded per namespace by SetBlobNamespaceQuota
  // (oldest-written evicted first).

  /// \brief Persist `bytes` under `key` (overwrites), then enforce the
  /// key's namespace blob quota.
  Status PutBlob(const std::string& key, const std::string& bytes);
  /// \brief Read a blob; kNotFound if absent or if the file failed
  /// validation (the corrupt file is quarantined aside, same contract as
  /// Get).
  Result<std::string> GetBlob(const std::string& key);
  bool ContainsBlob(const std::string& key) const;
  Status RemoveBlob(const std::string& key);
  /// \brief All persisted blob keys, sorted.
  std::vector<std::string> BlobKeys() const;
  /// \brief On-disk byte quota for one blob namespace (key prefix up to
  /// the first ':'); 0 removes the quota. Over-quota namespaces evict
  /// their oldest-written blobs.
  void SetBlobNamespaceQuota(const std::string& ns, size_t bytes);
  /// \brief Current on-disk bytes of one blob namespace.
  size_t blob_namespace_bytes(const std::string& ns) const;

  size_t memory_bytes() const;
  /// \brief Memory-tier bytes held by one namespace.
  size_t namespace_bytes(const std::string& ns) const;

  // Cumulative counters (formerly BehaviorStore::Stats; the engine folds
  // per-inspection deltas of these into RuntimeStats::store_*).
  // Size accounting is in bytes: evicted_bytes() reports memory actually
  // freed by evictions, bytes_written() the on-disk footprint including
  // file framing (not entry counts).
  size_t mem_hits() const;
  size_t disk_hits() const;
  /// \brief Reads served as out-of-core mmap handouts (see GetShared).
  size_t mmap_hits() const;
  size_t misses() const;
  size_t evictions() const;
  size_t evicted_bytes() const;
  size_t bytes_written() const;
  size_t blob_hits() const;
  size_t blob_misses() const;
  size_t blob_evictions() const;
  /// \brief Files renamed aside after failing validation (see Get/GetBlob:
  /// corrupt entries quarantine as `<file>.quarantined` and read as a
  /// miss, so one bad file costs one recompute instead of a permanent
  /// kDataLoss).
  size_t quarantines() const;

  /// \brief Ensure `extractor`'s full unit behaviors over `dataset` are
  /// stored (extracting and persisting them if not) and return the key.
  /// Concurrent callers for the same store are serialized, so the
  /// extraction runs at most once per (model, dataset fingerprint).
  /// `materialized_now`, when non-null, reports whether this call paid
  /// the extraction (a store miss).
  Result<std::string> EnsureUnitBehaviors(const Extractor& extractor,
                                          const Dataset& dataset,
                                          bool* materialized_now = nullptr);

  /// \brief Ensure `hyp`'s full behaviors over `dataset` (one row per
  /// record, normalized to ns columns like live extraction) are stored
  /// under HypothesisBehaviorKey and return the key — the hypothesis-tier
  /// counterpart of EnsureUnitBehaviors, reused across jobs and restarts.
  Result<std::string> EnsureHypothesisBehaviors(
      const HypothesisFn& hyp, const Dataset& dataset,
      bool* materialized_now = nullptr);

 private:
  struct MemEntry {
    std::string key;
    std::string ns;  // key prefix up to the first ':'
    /// Shared so GetShared handles survive eviction (readers keep the
    /// allocation alive; the store only drops its own reference).
    std::shared_ptr<const Matrix> matrix;
    size_t bytes = 0;
    double cost = 1.0;  // materialization seconds (eviction value)
  };

  struct BlobEntry {
    std::string key;
    size_t bytes = 0;  // whole-file footprint incl. framing
  };

  std::string PathForKey(const std::string& key) const;
  std::string PathForBlob(const std::string& key) const;
  void AdmitLocked(const std::string& key,
                   std::shared_ptr<const Matrix> matrix, double cost);
  void EraseLocked(std::list<MemEntry>::iterator it, bool count_eviction);
  /// Evict until `ns` (when non-empty) fits its quota and the whole tier
  /// fits the global budget. Cost-aware: among the least-recent
  /// candidates, the lowest cost-per-byte entry goes first.
  void EnforceBudgetLocked();
  std::mutex* MaterializeLockFor(const std::string& key);
  /// Build the per-namespace blob manifest (one directory scan, oldest
  /// file first) on first blob operation.
  void EnsureBlobManifestLocked() const;
  void DropBlobFromManifestLocked(const std::string& key) const;
  void EnforceBlobQuotaLocked(const std::string& ns);
  /// Rename a corrupt file to `<path>.quarantined` (kept for forensics,
  /// invisible to every scan) and count it.
  void QuarantineLocked(const std::string& path);

  std::string root_dir_;
  size_t memory_budget_;
  std::map<std::string, size_t> namespace_quotas_;

  // Per-key locks so EnsureUnitBehaviors extracts each (model, dataset)
  // at most once without serializing unrelated materializations against
  // each other. materialize_mu_ only guards the lock map and is ordered
  // before mu_ (a key lock is held across Contains/Put, which take mu_).
  std::mutex materialize_mu_;
  std::map<std::string, std::unique_ptr<std::mutex>> materialize_locks_;
  mutable std::mutex mu_;
  size_t memory_bytes_ = 0;
  std::map<std::string, size_t> namespace_bytes_;
  // LRU: most-recent at the front.
  std::list<MemEntry> lru_;
  std::map<std::string, std::list<MemEntry>::iterator> index_;
  size_t mem_hits_ = 0;
  size_t disk_hits_ = 0;
  size_t mmap_hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  size_t evicted_bytes_ = 0;
  size_t bytes_written_ = 0;

  // Blob tier (guarded by mu_; manifest is lazily built, hence mutable).
  std::map<std::string, size_t> blob_quotas_;
  mutable bool blob_manifest_loaded_ = false;
  /// Per namespace, oldest-written first (the blob eviction order).
  mutable std::map<std::string, std::list<BlobEntry>> blob_manifest_;
  mutable std::map<std::string, size_t> blob_ns_bytes_;
  size_t blob_hits_ = 0;
  size_t blob_misses_ = 0;
  size_t blob_evictions_ = 0;
  size_t quarantines_ = 0;
};

/// \brief Canonical store key for a model's unit behaviors over a dataset.
std::string UnitBehaviorKey(const std::string& model_id,
                            const Dataset& dataset);

/// \brief Canonical store key for a hypothesis set's behaviors.
std::string HypothesisBehaviorKey(const std::string& set_name,
                                  const Dataset& dataset);

/// \brief Extract all behaviors of `extractor` over `dataset` and persist
/// them under UnitBehaviorKey. No-op (returns the key) if already stored.
Result<std::string> MaterializeUnitBehaviors(const Extractor& extractor,
                                             const Dataset& dataset,
                                             BehaviorStore* store);

/// \brief Build a PrecomputedExtractor serving a stored behavior matrix.
/// `served_from`, when non-null, reports the tier that answered.
Result<PrecomputedExtractor> OpenStoredExtractor(
    const std::string& key, const std::string& model_id,
    const Dataset& dataset, BehaviorStore* store,
    BehaviorStore::Tier* served_from = nullptr);

}  // namespace deepbase
