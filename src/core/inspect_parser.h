// Textual front-end for the INSPECT clause (paper Appendix B): parses a
// SQL-flavored statement into an InspectQuery and executes it against a
// catalog of registered models, hypothesis sets, and datasets.
//
//   INSPECT units OF <model> AND <hypotheses>
//     [USING <measure> [, <measure>]...]
//     OVER <dataset>
//     [GROUP BY LAYER(<n>)]
//     [HAVING unit_score > <x>]
//
// Measure names: pearson | spearman | mutual_info | diff_means | jaccard |
// logreg_l1 | logreg_l2 | multiclass. Default (as in the paper) is
// per-unit Pearson correlation. Keywords are case-insensitive; names are
// case-sensitive identifiers resolved through the Catalog.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace deepbase {

/// \brief Name resolution for INSPECT statements. The paper models units,
/// hypotheses, and inputs as relations; the catalog is the registry those
/// names resolve against.
class Catalog {
 public:
  void RegisterModel(const std::string& name, const Extractor* extractor) {
    models_[name] = extractor;
  }
  void RegisterHypotheses(const std::string& name,
                          std::vector<HypothesisPtr> hyps) {
    hypotheses_[name] = std::move(hyps);
  }
  void RegisterDataset(const std::string& name, const Dataset* dataset) {
    datasets_[name] = dataset;
  }

  const Extractor* FindModel(const std::string& name) const;
  const std::vector<HypothesisPtr>* FindHypotheses(
      const std::string& name) const;
  const Dataset* FindDataset(const std::string& name) const;

 private:
  std::map<std::string, const Extractor*> models_;
  std::map<std::string, std::vector<HypothesisPtr>> hypotheses_;
  std::map<std::string, const Dataset*> datasets_;
};

/// \brief Parse and execute one INSPECT statement.
Result<ResultTable> ExecuteInspect(const std::string& statement,
                                   const Catalog& catalog,
                                   const InspectOptions& options = {},
                                   RuntimeStats* stats = nullptr);

/// \brief Resolve a measure name (pearson, corr, spearman, mutual_info,
/// multivariate_mi, diff_means, jaccard, logreg_l1, logreg_l2, multiclass,
/// random_baseline, majority_baseline) to a factory. Shared by the INSPECT
/// front-end and the SQL layer.
Result<MeasureFactoryPtr> MeasureByName(const std::string& name);

}  // namespace deepbase
