// Textual front-end for the INSPECT clause (paper Appendix B): parses a
// SQL-flavored statement into an InspectRequest and executes it against
// the shared Catalog of registered models, hypothesis sets, and datasets
// (core/catalog.h) — the same registry behind InspectQuery, SqlSession,
// and InspectionSession.
//
//   INSPECT units OF <model> AND <hypotheses>
//     [USING <measure> [, <measure>]...]
//     OVER <dataset>
//     [GROUP BY LAYER(<n>)]
//     [HAVING unit_score > <x>]
//
// Measure names: pearson | spearman | mutual_info | diff_means | jaccard |
// logreg_l1 | logreg_l2 | multiclass. Default (as in the paper) is
// per-unit Pearson correlation. Keywords are case-insensitive; names are
// case-sensitive identifiers resolved through the Catalog.

#pragma once

#include <string>

#include "core/catalog.h"
#include "core/engine.h"

namespace deepbase {

/// \brief Parse one INSPECT statement into an InspectRequest without
/// executing it. Measure names in the USING clause are validated against
/// `catalog` at their token (parse-time errors) but stored by *name* in
/// `measure_names`, so parsed requests stay fully name-resolved — and
/// therefore fingerprintable by the scheduler's result cache — and can be
/// dry-run through EXPLAIN. `request.options` is left unset (the caller
/// decides).
Result<InspectRequest> ParseInspect(const std::string& statement,
                                    const Catalog& catalog);

/// \brief Parse and execute one INSPECT statement.
Result<ResultTable> ExecuteInspect(const std::string& statement,
                                   const Catalog& catalog,
                                   const InspectOptions& options = {},
                                   RuntimeStats* stats = nullptr);

/// \brief Resolve a measure name (pearson, corr, spearman, mutual_info,
/// multivariate_mi, diff_means, jaccard, logreg_l1, logreg_l2, multiclass,
/// random_baseline, majority_baseline) to a factory. Shared by the INSPECT
/// front-end, the Catalog measure registry, and the SQL layer.
Result<MeasureFactoryPtr> MeasureByName(const std::string& name);

}  // namespace deepbase
