#include "core/inspect_query.h"

namespace deepbase {

InspectQuery& InspectQuery::Model(const Extractor* extractor) {
  InspectRequest::ModelRef ref;
  ref.extractor = extractor;
  request_.models.push_back(std::move(ref));
  return *this;
}

InspectQuery& InspectQuery::Model(const std::string& name) {
  InspectRequest::ModelRef ref;
  ref.name = name;
  request_.models.push_back(std::move(ref));
  return *this;
}

InspectQuery& InspectQuery::Group(const std::string& group_id,
                                  std::vector<int> units) {
  if (!request_.models.empty()) {
    request_.models.back().groups.push_back(
        UnitGroupSpec{group_id, std::move(units)});
  }
  return *this;
}

InspectQuery& InspectQuery::GroupByLayer(size_t layer_size) {
  if (!request_.models.empty() && layer_size > 0) {
    request_.models.back().group_by_layer = layer_size;
  }
  return *this;
}

InspectQuery& InspectQuery::Hypotheses(std::vector<HypothesisPtr> hyps) {
  for (auto& h : hyps) request_.hypotheses.push_back(std::move(h));
  return *this;
}

InspectQuery& InspectQuery::Hypothesis(HypothesisPtr hyp) {
  request_.hypotheses.push_back(std::move(hyp));
  return *this;
}

InspectQuery& InspectQuery::Hypotheses(const std::string& set_name) {
  request_.hypothesis_sets.push_back(set_name);
  return *this;
}

InspectQuery& InspectQuery::Using(MeasureFactoryPtr score) {
  request_.measures.push_back(std::move(score));
  return *this;
}

InspectQuery& InspectQuery::Using(const std::string& measure_name) {
  request_.measure_names.push_back(measure_name);
  return *this;
}

InspectQuery& InspectQuery::Over(const Dataset* dataset) {
  request_.dataset = dataset;
  return *this;
}

InspectQuery& InspectQuery::Over(const std::string& dataset_name) {
  request_.dataset_name = dataset_name;
  return *this;
}

InspectQuery& InspectQuery::WithOptions(InspectOptions options) {
  request_.options = std::move(options);
  return *this;
}

InspectQuery& InspectQuery::HavingUnitScoreAbove(float threshold) {
  request_.min_abs_unit_score = threshold;
  return *this;
}

Result<ResultTable> InspectQuery::Execute(RuntimeStats* stats) const {
  if (catalog_ != nullptr) {
    return RunInspectRequest(request_, *catalog_, InspectOptions{}, stats);
  }
  // Fully inline query: compile against an empty catalog. Name references
  // (if any) fail with the same descriptive errors a session would give.
  static const Catalog kEmptyCatalog;
  return RunInspectRequest(request_, kEmptyCatalog, InspectOptions{}, stats);
}

}  // namespace deepbase
