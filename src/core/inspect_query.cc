#include "core/inspect_query.h"

#include "measures/scores.h"

namespace deepbase {

InspectQuery& InspectQuery::Model(const Extractor* extractor) {
  ModelSpec spec;
  spec.extractor = extractor;
  models_.push_back(std::move(spec));
  return *this;
}

InspectQuery& InspectQuery::Group(const std::string& group_id,
                                  std::vector<int> units) {
  if (!models_.empty()) {
    models_.back().groups.push_back(UnitGroupSpec{group_id, std::move(units)});
  }
  return *this;
}

InspectQuery& InspectQuery::GroupByLayer(size_t layer_size) {
  if (models_.empty() || layer_size == 0) return *this;
  ModelSpec& model = models_.back();
  const size_t total = model.extractor->num_units();
  for (size_t begin = 0, layer = 0; begin < total;
       begin += layer_size, ++layer) {
    UnitGroupSpec group;
    group.group_id = "layer" + std::to_string(layer);
    for (size_t u = begin; u < std::min(total, begin + layer_size); ++u) {
      group.unit_ids.push_back(static_cast<int>(u));
    }
    model.groups.push_back(std::move(group));
  }
  return *this;
}

InspectQuery& InspectQuery::Hypotheses(std::vector<HypothesisPtr> hyps) {
  for (auto& h : hyps) hypotheses_.push_back(std::move(h));
  return *this;
}

InspectQuery& InspectQuery::Hypothesis(HypothesisPtr hyp) {
  hypotheses_.push_back(std::move(hyp));
  return *this;
}

InspectQuery& InspectQuery::Using(MeasureFactoryPtr score) {
  scores_.push_back(std::move(score));
  return *this;
}

InspectQuery& InspectQuery::Over(const Dataset* dataset) {
  dataset_ = dataset;
  return *this;
}

InspectQuery& InspectQuery::WithOptions(InspectOptions options) {
  options_ = options;
  return *this;
}

InspectQuery& InspectQuery::HavingUnitScoreAbove(float threshold) {
  having_threshold_ = threshold;
  has_having_ = true;
  return *this;
}

Result<ResultTable> InspectQuery::Execute(RuntimeStats* stats) const {
  if (models_.empty()) return Status::Invalid("INSPECT requires a model");
  if (dataset_ == nullptr) {
    return Status::Invalid("INSPECT requires an OVER dataset");
  }
  if (hypotheses_.empty()) {
    return Status::Invalid("INSPECT requires at least one hypothesis");
  }
  std::vector<ModelSpec> models = models_;
  for (auto& model : models) {
    if (model.extractor == nullptr) {
      return Status::Invalid("model extractor is null");
    }
    if (model.groups.empty()) {
      model = AllUnitsGroup(model.extractor);
    }
  }
  std::vector<MeasureFactoryPtr> scores = scores_;
  if (scores.empty()) {
    // The paper's INSPECT default measure is correlation.
    scores.push_back(std::make_shared<CorrelationScore>("pearson"));
  }
  // Pre-flight the hypothesis output format (paper §4.1: "output formats
  // are checked during execution"): every hypothesis must emit one
  // behavior per record symbol.
  if (dataset_->num_records() > 0) {
    const Record& probe = dataset_->record(0);
    for (const HypothesisPtr& hyp : hypotheses_) {
      const size_t got = hyp->Eval(probe).size();
      if (got != dataset_->ns()) {
        return Status::Invalid(
            "hypothesis '" + hyp->name() + "' emitted " +
            std::to_string(got) + " behaviors for a record of " +
            std::to_string(dataset_->ns()) + " symbols");
      }
    }
  }
  ResultTable results =
      Inspect(models, *dataset_, scores, hypotheses_, options_, stats);
  if (has_having_) {
    const float threshold = having_threshold_;
    results = results.Filter([threshold](const ResultRow& row) {
      return row.unit >= 0 && !std::isnan(row.unit_score) &&
             std::fabs(row.unit_score) > threshold;
    });
  }
  return results;
}

}  // namespace deepbase
