// The output relation of Inspect() (paper §4.1): one affinity row per
// (model, unit group, measure, hypothesis, unit), plus group-level rows.
// Supports the relational post-processing users apply to DNI results
// (top-k, filtering, grouping by layer, counting high scorers).

#pragma once

#include <cmath>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/text_table.h"

namespace deepbase {

/// \brief One affinity score. unit == -1 marks a group-level row.
struct ResultRow {
  std::string model_id;
  std::string group_id;
  std::string measure;
  std::string hypothesis;
  int unit = -1;
  float unit_score = std::numeric_limits<float>::quiet_NaN();
  float group_score = std::numeric_limits<float>::quiet_NaN();
};

/// \brief In-memory result relation with relational conveniences.
class ResultTable {
 public:
  void Add(ResultRow row) { rows_.push_back(std::move(row)); }
  void Append(const ResultTable& other);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<ResultRow>& rows() const { return rows_; }
  const ResultRow& row(size_t i) const { return rows_[i]; }

  /// \brief Rows satisfying the predicate.
  ResultTable Filter(const std::function<bool(const ResultRow&)>& pred) const;

  /// \brief Top-k unit rows by |unit_score| (or signed score).
  ResultTable TopUnits(size_t k, bool by_absolute = true) const;

  /// \brief Unit ids whose |unit_score| exceeds the threshold for a given
  /// measure and hypothesis (the HAVING S.unit_score > x idiom).
  std::vector<int> UnitsAbove(const std::string& measure,
                              const std::string& hypothesis,
                              float threshold) const;

  /// \brief Group score for (measure, hypothesis) in a group (first match);
  /// NaN if absent.
  float GroupScore(const std::string& measure, const std::string& hypothesis,
                   const std::string& group_id = "") const;

  /// \brief Unit score of a specific unit (first match); NaN if absent.
  float UnitScore(const std::string& measure, const std::string& hypothesis,
                  int unit) const;

  /// \brief Number of units with |unit_score| > threshold per hypothesis —
  /// the "group the scores by layer and count high scorers" idiom.
  std::vector<std::pair<std::string, size_t>> CountHighScorers(
      const std::string& measure, float threshold) const;

  /// \brief Render (at most max_rows) as an aligned text table.
  TextTable ToTextTable(size_t max_rows = 50) const;

  /// \brief Render all rows as CSV with header (model, group, measure,
  /// hypothesis, unit, unit_score, group_score); NaNs and the -1 group
  /// sentinel render as empty fields. The standard sink for feeding
  /// results into external analysis (paper §4.1's post-processing).
  std::string ToCsv() const;

  /// \brief Binary serialization (magic + row count + length-prefixed
  /// fields; float scores round-trip bit-exactly, including NaN). The
  /// persistent result cache stores tables in this format.
  void Serialize(std::ostream* out) const;
  std::string SerializeToString() const;
  /// \brief Inverse of Serialize; kDataLoss on malformed input.
  static Result<ResultTable> Deserialize(std::istream* in);
  static Result<ResultTable> DeserializeFromString(const std::string& bytes);

  /// \brief Approximate heap footprint (rows + string payloads) — the byte
  /// accounting unit of the result cache.
  size_t EstimatedBytes() const;

 private:
  std::vector<ResultRow> rows_;
};

}  // namespace deepbase
