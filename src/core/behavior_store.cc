#include "core/behavior_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/extractors.h"

namespace deepbase {

namespace {

constexpr uint32_t kStoreMagic = 0x44425354;  // "DBST"

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MatrixChecksum(const Matrix& m) {
  uint64_t h = 1469598103934665603ull;
  h = Fnv1a(&m, 0, h);  // fold in the seed only
  const uint64_t rows = m.rows(), cols = m.cols();
  h = Fnv1a(&rows, sizeof(rows), h);
  h = Fnv1a(&cols, sizeof(cols), h);
  for (size_t r = 0; r < m.rows(); ++r) {
    h = Fnv1a(m.row_data(r), m.cols() * sizeof(float), h);
  }
  return h;
}

std::string HexKey(uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint64_t h = 1469598103934665603ull;
  const uint64_t nd = dataset.num_records(), ns = dataset.ns();
  h = Fnv1a(&nd, sizeof(nd), h);
  h = Fnv1a(&ns, sizeof(ns), h);
  for (const Record& rec : dataset.records()) {
    h = Fnv1a(rec.ids.data(), rec.ids.size() * sizeof(int), h);
  }
  return h;
}

BehaviorStore::BehaviorStore(std::string root_dir,
                             size_t memory_budget_bytes)
    : root_dir_(std::move(root_dir)), memory_budget_(memory_budget_bytes) {}

std::string BehaviorStore::PathForKey(const std::string& key) const {
  // Hash the key for the file name: keys may contain characters that are
  // not filesystem-safe.
  return root_dir_ + "/" + HexKey(Fnv1a(key.data(), key.size(),
                                        1469598103934665603ull)) +
         ".behaviors";
}

Status BehaviorStore::Put(const std::string& key, const Matrix& behaviors) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  std::filesystem::create_directories(root_dir_, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + root_dir_ +
                           ": " + ec.message());
  }
  const std::string path = PathForKey(key);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + path);
    const uint32_t magic = kStoreMagic;
    const uint64_t key_len = key.size();
    const uint64_t checksum = MatrixChecksum(behaviors);
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&key_len), sizeof(key_len));
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    WriteMatrix(behaviors, &out);
    if (!out) return Status::IOError("write failed for " + path);
    bytes_written_ += behaviors.rows() * behaviors.cols() * sizeof(float);
  }
  AdmitLocked(key, behaviors);
  return Status::OK();
}

Result<Matrix> BehaviorStore::Get(const std::string& key,
                                  Tier* served_from) {
  if (served_from != nullptr) *served_from = Tier::kMiss;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++mem_hits_;
    if (served_from != nullptr) *served_from = Tier::kMemory;
    // Move to the front of the LRU.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  const std::string path = PathForKey(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++misses_;
    return Status::NotFound("no stored behaviors for key: " + key);
  }
  uint32_t magic = 0;
  uint64_t key_len = 0, checksum = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&key_len), sizeof(key_len));
  if (!in || magic != kStoreMagic || key_len > (1u << 20)) {
    return Status::DataLoss("corrupt store file header: " + path);
  }
  std::string stored_key(key_len, '\0');
  in.read(stored_key.data(), static_cast<std::streamsize>(key_len));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in || stored_key != key) {
    return Status::DataLoss("store file key mismatch (hash collision?): " +
                            path);
  }
  DB_ASSIGN_OR_RETURN(Matrix m, ReadMatrix(&in));
  if (MatrixChecksum(m) != checksum) {
    return Status::DataLoss("checksum mismatch for key: " + key);
  }
  ++disk_hits_;
  if (served_from != nullptr) *served_from = Tier::kDisk;
  AdmitLocked(key, m);
  return m;
}

bool BehaviorStore::Contains(const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.count(key) > 0) return true;
  }
  std::error_code ec;
  return std::filesystem::exists(PathForKey(key), ec);
}

void BehaviorStore::EvictFromMemory(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  memory_bytes_ -=
      it->second->second.rows() * it->second->second.cols() * sizeof(float);
  lru_.erase(it->second);
  index_.erase(it);
  ++evictions_;
}

Status BehaviorStore::Remove(const std::string& key) {
  EvictFromMemory(key);
  std::error_code ec;
  std::filesystem::remove(PathForKey(key), ec);
  if (ec) return Status::IOError("cannot remove " + PathForKey(key));
  return Status::OK();
}

std::vector<std::string> BehaviorStore::Keys() const {
  std::vector<std::string> keys;
  std::error_code ec;
  if (!std::filesystem::exists(root_dir_, ec)) return keys;
  for (const auto& entry :
       std::filesystem::directory_iterator(root_dir_, ec)) {
    if (entry.path().extension() != ".behaviors") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    uint32_t magic = 0;
    uint64_t key_len = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&key_len), sizeof(key_len));
    if (!in || magic != kStoreMagic || key_len > (1u << 20)) continue;
    std::string key(key_len, '\0');
    in.read(key.data(), static_cast<std::streamsize>(key_len));
    if (in) keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t BehaviorStore::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_bytes_;
}

size_t BehaviorStore::mem_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_hits_;
}

size_t BehaviorStore::disk_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_hits_;
}

size_t BehaviorStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t BehaviorStore::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t BehaviorStore::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

void BehaviorStore::AdmitLocked(const std::string& key, Matrix matrix) {
  if (memory_budget_ == 0) return;
  // Self-replacement is not an eviction; drop any existing entry silently.
  auto it = index_.find(key);
  if (it != index_.end()) {
    memory_bytes_ -= it->second->second.rows() * it->second->second.cols() *
                     sizeof(float);
    lru_.erase(it->second);
    index_.erase(it);
  }
  const size_t bytes = matrix.rows() * matrix.cols() * sizeof(float);
  lru_.emplace_front(key, std::move(matrix));
  index_[key] = lru_.begin();
  memory_bytes_ += bytes;
  EnforceBudgetLocked();
}

void BehaviorStore::EnforceBudgetLocked() {
  while (memory_bytes_ > memory_budget_ && lru_.size() > 1) {
    const auto& back = lru_.back();
    memory_bytes_ -= back.second.rows() * back.second.cols() * sizeof(float);
    index_.erase(back.first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::string UnitBehaviorKey(const std::string& model_id,
                            const Dataset& dataset) {
  return "unit:" + model_id + ":" + HexKey(DatasetFingerprint(dataset));
}

std::string HypothesisBehaviorKey(const std::string& set_name,
                                  const Dataset& dataset) {
  return "hyp:" + set_name + ":" + HexKey(DatasetFingerprint(dataset));
}

Result<std::string> BehaviorStore::EnsureUnitBehaviors(
    const Extractor& extractor, const Dataset& dataset,
    bool* materialized_now) {
  if (materialized_now != nullptr) *materialized_now = false;
  const std::string key = UnitBehaviorKey(extractor.model_id(), dataset);
  std::mutex* key_mu;
  {
    std::lock_guard<std::mutex> lock(materialize_mu_);
    std::unique_ptr<std::mutex>& slot = materialize_locks_[key];
    if (slot == nullptr) slot = std::make_unique<std::mutex>();
    key_mu = slot.get();
  }
  std::lock_guard<std::mutex> materialize_lock(*key_mu);
  if (Contains(key)) return key;
  std::vector<int> unit_ids(extractor.num_units());
  for (size_t u = 0; u < unit_ids.size(); ++u) {
    unit_ids[u] = static_cast<int>(u);
  }
  std::vector<size_t> record_idx(dataset.num_records());
  for (size_t i = 0; i < record_idx.size(); ++i) record_idx[i] = i;
  Matrix behaviors = extractor.ExtractBlock(dataset, record_idx, unit_ids);
  DB_RETURN_NOT_OK(Put(key, behaviors));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;  // a request for behaviors that were not yet stored
  }
  if (materialized_now != nullptr) *materialized_now = true;
  return key;
}

Result<std::string> MaterializeUnitBehaviors(const Extractor& extractor,
                                             const Dataset& dataset,
                                             BehaviorStore* store) {
  return store->EnsureUnitBehaviors(extractor, dataset);
}

Result<PrecomputedExtractor> OpenStoredExtractor(
    const std::string& key, const std::string& model_id,
    const Dataset& dataset, BehaviorStore* store,
    BehaviorStore::Tier* served_from) {
  DB_ASSIGN_OR_RETURN(Matrix behaviors, store->Get(key, served_from));
  if (behaviors.rows() != dataset.num_records() * dataset.ns()) {
    return Status::Invalid(
        "stored behaviors do not align with the dataset: " +
        std::to_string(behaviors.rows()) + " rows vs " +
        std::to_string(dataset.num_records() * dataset.ns()) + " symbols");
  }
  return PrecomputedExtractor(model_id, std::move(behaviors), dataset.ns());
}

}  // namespace deepbase
