#include "core/behavior_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>

#include "core/extractors.h"
#include "util/failpoint.h"
#include "util/fnv.h"
#include "util/stopwatch.h"

namespace deepbase {

namespace {

// Eviction candidates examined per round: the scan looks at the
// least-recently-used kEvictScan entries and drops the one with the
// lowest cost-per-byte (cheapest re-materialization per byte freed), so
// recency still dominates but an expensive matrix is not dumped while a
// cheap neighbor of similar age would free the same memory.
constexpr size_t kEvictScan = 8;

std::string NamespaceOf(const std::string& key) {
  const size_t colon = key.find(':');
  return colon == std::string::npos ? key : key.substr(0, colon);
}

constexpr uint32_t kStoreMagicV1 = 0x44425354;  // "DBST" (legacy, read-only)
constexpr uint32_t kStoreMagicV2 = 0x44425332;  // "DBS2"
constexpr uint32_t kBlobMagic = 0x44425342;     // "DBSB"

// The v2 behavior-file layout places the raw float payload (packed
// logical rows×cols, row-major) at the first 64-byte boundary after the
// header, so MmapMatrixStore can serve it in place: mapped pages are
// cache-line aligned exactly like MemMatrixStore allocations. v1 files
// (WriteMatrix framing at an arbitrary offset) are still readable but
// never mmap-served; Put always writes v2.
constexpr size_t kPayloadAlign = 64;

size_t AlignUp(size_t n, size_t align) {
  return (n + align - 1) / align * align;
}

/// Byte offset of the float payload in a v2 file whose key is `key_len`
/// bytes long: magic(4) + key_len(8) + key + checksum(8) + rows(8) +
/// cols(8), rounded up to the alignment boundary.
size_t V2PayloadOffset(size_t key_len) {
  return AlignUp(sizeof(uint32_t) + 4 * sizeof(uint64_t) + key_len,
                 kPayloadAlign);
}

uint64_t MatrixChecksum(const Matrix& m) {
  uint64_t h = kFnvOffsetBasis;
  h = Fnv1a(&m, 0, h);  // fold in the seed only
  const uint64_t rows = m.rows(), cols = m.cols();
  h = Fnv1a(&rows, sizeof(rows), h);
  h = Fnv1a(&cols, sizeof(cols), h);
  for (size_t r = 0; r < m.rows(); ++r) {
    h = Fnv1a(m.row_data(r), m.cols() * sizeof(float), h);
  }
  return h;
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint64_t h = kFnvOffsetBasis;
  const uint64_t nd = dataset.num_records(), ns = dataset.ns();
  h = Fnv1a(&nd, sizeof(nd), h);
  h = Fnv1a(&ns, sizeof(ns), h);
  for (const Record& rec : dataset.records()) {
    h = Fnv1a(rec.ids.data(), rec.ids.size() * sizeof(int), h);
  }
  return h;
}

BehaviorStore::BehaviorStore(std::string root_dir,
                             size_t memory_budget_bytes)
    : root_dir_(std::move(root_dir)), memory_budget_(memory_budget_bytes) {}

void BehaviorStore::SetNamespaceQuota(const std::string& ns, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes == 0) {
    namespace_quotas_.erase(ns);
  } else {
    namespace_quotas_[ns] = bytes;
  }
  EnforceBudgetLocked();
}

std::string BehaviorStore::PathForKey(const std::string& key) const {
  // Hash the key for the file name: keys may contain characters that are
  // not filesystem-safe.
  return root_dir_ + "/" + HexU64(Fnv1a(key.data(), key.size())) +
         ".behaviors";
}

std::string BehaviorStore::PathForBlob(const std::string& key) const {
  return root_dir_ + "/" + HexU64(Fnv1a(key.data(), key.size())) +
         ".blob";
}

Status BehaviorStore::Put(const std::string& key, const Matrix& behaviors,
                          double cost) {
  DB_FAILPOINT("store.write");
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  std::filesystem::create_directories(root_dir_, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + root_dir_ +
                           ": " + ec.message());
  }
  const std::string path = PathForKey(key);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + path);
    const uint32_t magic = kStoreMagicV2;
    const uint64_t key_len = key.size();
    const uint64_t checksum = MatrixChecksum(behaviors);
    const uint64_t rows = behaviors.rows();
    const uint64_t cols = behaviors.cols();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&key_len), sizeof(key_len));
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    // Zero-pad the header so the payload starts 64-byte-aligned — the
    // precondition for serving the file through MmapMatrixStore.
    const size_t header_end = sizeof(magic) + 4 * sizeof(uint64_t) + key.size();
    const size_t payload_offset = V2PayloadOffset(key.size());
    const std::string pad(payload_offset - header_end, '\0');
    out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    // Logical rows×cols row by row — never the padded lda, so files are
    // identical across SIMD/scalar builds.
    for (size_t r = 0; r < behaviors.rows(); ++r) {
      out.write(reinterpret_cast<const char*>(behaviors.row_data(r)),
                static_cast<std::streamsize>(cols * sizeof(float)));
    }
    if (!out) return Status::IOError("write failed for " + path);
    // Actual file footprint (header + padding + payload), not an entry
    // count or a payload-only estimate.
    const auto pos = out.tellp();
    bytes_written_ += pos > 0 ? static_cast<size_t>(pos) : 0;
  }
  AdmitLocked(key, std::make_shared<const Matrix>(behaviors), cost);
  return Status::OK();
}

Result<Matrix> BehaviorStore::Get(const std::string& key,
                                  Tier* served_from) {
  DB_ASSIGN_OR_RETURN(std::shared_ptr<const Matrix> shared,
                      GetShared(key, served_from));
  return *shared;
}

Result<std::shared_ptr<const Matrix>> BehaviorStore::GetShared(
    const std::string& key, Tier* served_from) {
  if (served_from != nullptr) *served_from = Tier::kMiss;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++mem_hits_;
    if (served_from != nullptr) *served_from = Tier::kMemory;
    // Move to the front of the LRU.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->matrix;
  }

  DB_FAILPOINT("store.read");
  const std::string path = PathForKey(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++misses_;
    return Status::NotFound("no stored behaviors for key: " + key);
  }
  // A file that fails validation is quarantined (renamed aside) and the
  // read degrades to a miss: the caller re-materializes and the next Put
  // repopulates the entry, instead of every restart re-failing kDataLoss
  // on the same bytes forever.
  auto corrupt = [&](const std::string& what) -> Status {
    in.close();
    QuarantineLocked(path);
    ++misses_;
    return Status::NotFound("stored behaviors for key '" + key +
                            "' failed validation (" + what +
                            "); file quarantined");
  };
  uint32_t magic = 0;
  uint64_t key_len = 0, checksum = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&key_len), sizeof(key_len));
  if (!in || (magic != kStoreMagicV1 && magic != kStoreMagicV2) ||
      key_len > (1u << 20)) {
    return corrupt("corrupt store file header");
  }
  std::string stored_key(key_len, '\0');
  in.read(stored_key.data(), static_cast<std::streamsize>(key_len));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in || stored_key != key) {
    return corrupt("key mismatch (hash collision?)");
  }

  if (magic == kStoreMagicV1) {
    // Legacy framing (WriteMatrix at an arbitrary offset): deserialize
    // only; never mmap-servable.
    Result<Matrix> read = ReadMatrix(&in);
    if (!read.ok()) {
      return corrupt("unreadable matrix payload: " +
                     read.status().ToString());
    }
    Matrix m = std::move(read).ValueOrDie();
    if (MatrixChecksum(m) != checksum) {
      return corrupt("checksum mismatch");
    }
    ++disk_hits_;
    if (served_from != nullptr) *served_from = Tier::kDisk;
    auto shared = std::make_shared<const Matrix>(std::move(m));
    AdmitLocked(key, shared, /*cost=*/1.0);
    return shared;
  }

  uint64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  // Shape sanity before any multiply: reject products that would
  // overflow rows*cols*sizeof(float).
  constexpr uint64_t kMaxFloats =
      std::numeric_limits<size_t>::max() / sizeof(float);
  if (!in || (cols != 0 && rows > kMaxFloats / cols)) {
    return corrupt("corrupt v2 store file shape");
  }
  const size_t payload_offset = V2PayloadOffset(key_len);
  const size_t payload_bytes = rows * cols * sizeof(float);
  std::error_code size_ec;
  const auto file_size = std::filesystem::file_size(path, size_ec);
  if (size_ec || file_size < payload_offset + payload_bytes) {
    return corrupt("v2 store file truncated");
  }

  // Out-of-core handout: a payload larger than the memory tier's
  // effective limit would evict the whole LRU and still not fit, so map
  // the aligned payload read-only and let the page cache stream it.
  size_t mem_limit = memory_budget_;
  auto quota_it = namespace_quotas_.find(NamespaceOf(key));
  if (quota_it != namespace_quotas_.end()) {
    mem_limit = std::min(mem_limit, quota_it->second);
  }
  if (mem_limit > 0 && payload_bytes > mem_limit) {
    std::shared_ptr<MmapMatrixStore> mapped =
        MmapMatrixStore::Map(path, payload_offset, rows, cols);
    if (mapped != nullptr) {
      ++mmap_hits_;
      if (served_from != nullptr) *served_from = Tier::kMmap;
      return std::make_shared<const Matrix>(Matrix(std::move(mapped)));
    }
    // Map failure degrades to the deserializing path below.
  }

  in.seekg(static_cast<std::streamoff>(payload_offset));
  Matrix m(rows, cols);
  for (size_t r = 0; r < m.rows(); ++r) {
    in.read(reinterpret_cast<char*>(m.row_data(r)),
            static_cast<std::streamsize>(cols * sizeof(float)));
  }
  if (in.fail()) return corrupt("unreadable v2 matrix payload");
  if (MatrixChecksum(m) != checksum) {
    return corrupt("checksum mismatch");
  }
  ++disk_hits_;
  if (served_from != nullptr) *served_from = Tier::kDisk;
  auto shared = std::make_shared<const Matrix>(std::move(m));
  AdmitLocked(key, shared, /*cost=*/1.0);
  return shared;
}

BehaviorStore::Tier BehaviorStore::PeekTier(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.count(key) > 0) return Tier::kMemory;
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(PathForKey(key), ec);
  if (ec) return Tier::kMiss;
  // Mirror GetShared's out-of-core rule: a payload bigger than the
  // effective memory limit (global budget tightened by the namespace
  // quota) is handed out as an mmap instead of deserializing.
  size_t mem_limit = memory_budget_;
  auto quota_it = namespace_quotas_.find(NamespaceOf(key));
  if (quota_it != namespace_quotas_.end()) {
    mem_limit = std::min(mem_limit, quota_it->second);
  }
  if (mem_limit > 0 && file_size > mem_limit) return Tier::kMmap;
  return Tier::kDisk;
}

bool BehaviorStore::Contains(const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.count(key) > 0) return true;
  }
  std::error_code ec;
  return std::filesystem::exists(PathForKey(key), ec);
}

void BehaviorStore::EvictFromMemory(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  EraseLocked(it->second, /*count_eviction=*/true);
}

Status BehaviorStore::Remove(const std::string& key) {
  EvictFromMemory(key);
  std::error_code ec;
  std::filesystem::remove(PathForKey(key), ec);
  if (ec) return Status::IOError("cannot remove " + PathForKey(key));
  return Status::OK();
}

std::vector<std::string> BehaviorStore::Keys() const {
  std::vector<std::string> keys;
  std::error_code ec;
  if (!std::filesystem::exists(root_dir_, ec)) return keys;
  for (const auto& entry :
       std::filesystem::directory_iterator(root_dir_, ec)) {
    if (entry.path().extension() != ".behaviors") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    uint32_t magic = 0;
    uint64_t key_len = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&key_len), sizeof(key_len));
    if (!in || (magic != kStoreMagicV1 && magic != kStoreMagicV2) ||
        key_len > (1u << 20)) {
      continue;
    }
    std::string key(key_len, '\0');
    in.read(key.data(), static_cast<std::streamsize>(key_len));
    if (in) keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t BehaviorStore::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_bytes_;
}

size_t BehaviorStore::namespace_bytes(const std::string& ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = namespace_bytes_.find(ns);
  return it != namespace_bytes_.end() ? it->second : 0;
}

size_t BehaviorStore::evicted_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_bytes_;
}

size_t BehaviorStore::mem_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_hits_;
}

size_t BehaviorStore::disk_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_hits_;
}

size_t BehaviorStore::mmap_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mmap_hits_;
}

size_t BehaviorStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t BehaviorStore::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t BehaviorStore::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

size_t BehaviorStore::blob_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blob_hits_;
}

size_t BehaviorStore::blob_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blob_misses_;
}

size_t BehaviorStore::blob_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blob_evictions_;
}

size_t BehaviorStore::quarantines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantines_;
}

void BehaviorStore::QuarantineLocked(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  // A failed rename leaves the corrupt file in place; the next read
  // retries the quarantine. Count only completed renames so tests can
  // assert "renamed aside exactly once".
  if (!ec) ++quarantines_;
}

size_t BehaviorStore::blob_namespace_bytes(const std::string& ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureBlobManifestLocked();
  auto it = blob_ns_bytes_.find(ns);
  return it != blob_ns_bytes_.end() ? it->second : 0;
}

// ---------------------------------------------------------------------------
// Blob tier.
// ---------------------------------------------------------------------------

void BehaviorStore::EnsureBlobManifestLocked() const {
  if (blob_manifest_loaded_) return;
  blob_manifest_loaded_ = true;
  blob_manifest_.clear();
  blob_ns_bytes_.clear();
  std::error_code ec;
  if (!std::filesystem::exists(root_dir_, ec)) return;
  // Oldest-written first: the per-namespace eviction order survives a
  // restart because it is reconstructed from file mtimes.
  struct Found {
    std::filesystem::file_time_type mtime;
    std::string key;
    size_t bytes = 0;
  };
  std::vector<Found> found;
  for (const auto& entry :
       std::filesystem::directory_iterator(root_dir_, ec)) {
    if (entry.path().extension() != ".blob") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    uint32_t magic = 0;
    uint64_t key_len = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&key_len), sizeof(key_len));
    if (!in || magic != kBlobMagic || key_len > (1u << 20)) continue;
    std::string key(key_len, '\0');
    in.read(key.data(), static_cast<std::streamsize>(key_len));
    if (!in) continue;
    std::error_code size_ec, time_ec;
    const auto bytes = std::filesystem::file_size(entry.path(), size_ec);
    const auto mtime =
        std::filesystem::last_write_time(entry.path(), time_ec);
    if (size_ec) continue;
    found.push_back({mtime, std::move(key), static_cast<size_t>(bytes)});
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.key < b.key;
  });
  for (Found& f : found) {
    const std::string ns = NamespaceOf(f.key);
    blob_ns_bytes_[ns] += f.bytes;
    blob_manifest_[ns].push_back({std::move(f.key), f.bytes});
  }
}

void BehaviorStore::DropBlobFromManifestLocked(const std::string& key) const {
  const std::string ns = NamespaceOf(key);
  auto it = blob_manifest_.find(ns);
  if (it == blob_manifest_.end()) return;
  for (auto entry = it->second.begin(); entry != it->second.end(); ++entry) {
    if (entry->key != key) continue;
    blob_ns_bytes_[ns] -= entry->bytes;
    it->second.erase(entry);
    break;
  }
}

void BehaviorStore::EnforceBlobQuotaLocked(const std::string& ns) {
  auto quota_it = blob_quotas_.find(ns);
  if (quota_it == blob_quotas_.end()) return;
  auto list_it = blob_manifest_.find(ns);
  while (list_it != blob_manifest_.end() && !list_it->second.empty() &&
         blob_ns_bytes_[ns] > quota_it->second) {
    const BlobEntry victim = list_it->second.front();
    std::error_code ec;
    std::filesystem::remove(PathForBlob(victim.key), ec);
    blob_ns_bytes_[ns] -= victim.bytes;
    list_it->second.pop_front();
    ++blob_evictions_;
  }
}

void BehaviorStore::SetBlobNamespaceQuota(const std::string& ns,
                                          size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureBlobManifestLocked();
  if (bytes == 0) {
    blob_quotas_.erase(ns);
  } else {
    blob_quotas_[ns] = bytes;
    EnforceBlobQuotaLocked(ns);
  }
}

Status BehaviorStore::PutBlob(const std::string& key,
                              const std::string& bytes) {
  DB_FAILPOINT("store.blob.write");
  std::lock_guard<std::mutex> lock(mu_);
  EnsureBlobManifestLocked();
  std::error_code ec;
  std::filesystem::create_directories(root_dir_, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + root_dir_ +
                           ": " + ec.message());
  }
  const std::string path = PathForBlob(key);
  size_t file_bytes = 0;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + path);
    const uint32_t magic = kBlobMagic;
    const uint64_t key_len = key.size();
    const uint64_t checksum =
        Fnv1a(bytes.data(), bytes.size());
    const uint64_t payload_len = bytes.size();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&key_len), sizeof(key_len));
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.write(reinterpret_cast<const char*>(&payload_len),
              sizeof(payload_len));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("write failed for " + path);
    const auto pos = out.tellp();
    file_bytes = pos > 0 ? static_cast<size_t>(pos) : 0;
    bytes_written_ += file_bytes;
  }
  const std::string ns = NamespaceOf(key);
  DropBlobFromManifestLocked(key);  // overwrite: replace the old entry
  blob_ns_bytes_[ns] += file_bytes;
  blob_manifest_[ns].push_back({key, file_bytes});
  EnforceBlobQuotaLocked(ns);
  return Status::OK();
}

Result<std::string> BehaviorStore::GetBlob(const std::string& key) {
  DB_FAILPOINT("store.blob.read");
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = PathForBlob(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++blob_misses_;
    return Status::NotFound("no stored blob for key: " + key);
  }
  // Same quarantine contract as GetShared's disk path: corrupt blobs are
  // renamed aside, dropped from the manifest, and read as a miss so the
  // caller recomputes exactly once.
  auto corrupt = [&](const std::string& what) -> Status {
    in.close();
    QuarantineLocked(path);
    EnsureBlobManifestLocked();
    DropBlobFromManifestLocked(key);
    ++blob_misses_;
    return Status::NotFound("stored blob for key '" + key +
                            "' failed validation (" + what +
                            "); file quarantined");
  };
  uint32_t magic = 0;
  uint64_t key_len = 0, checksum = 0, payload_len = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&key_len), sizeof(key_len));
  if (!in || magic != kBlobMagic || key_len > (1u << 20)) {
    return corrupt("corrupt blob file header");
  }
  std::string stored_key(key_len, '\0');
  in.read(stored_key.data(), static_cast<std::streamsize>(key_len));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len));
  if (!in || stored_key != key) {
    return corrupt("key mismatch (hash collision?)");
  }
  if (payload_len > (1ull << 32)) {
    return corrupt("implausible payload size");
  }
  std::string payload(payload_len, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (in.fail() ||
      Fnv1a(payload.data(), payload.size()) !=
          checksum) {
    return corrupt("checksum mismatch");
  }
  ++blob_hits_;
  return payload;
}

bool BehaviorStore::ContainsBlob(const std::string& key) const {
  std::error_code ec;
  return std::filesystem::exists(PathForBlob(key), ec);
}

Status BehaviorStore::RemoveBlob(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureBlobManifestLocked();
  DropBlobFromManifestLocked(key);
  std::error_code ec;
  std::filesystem::remove(PathForBlob(key), ec);
  if (ec) return Status::IOError("cannot remove " + PathForBlob(key));
  return Status::OK();
}

std::vector<std::string> BehaviorStore::BlobKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureBlobManifestLocked();
  std::vector<std::string> keys;
  for (const auto& [ns, entries] : blob_manifest_) {
    for (const BlobEntry& entry : entries) keys.push_back(entry.key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void BehaviorStore::AdmitLocked(const std::string& key,
                                std::shared_ptr<const Matrix> matrix,
                                double cost) {
  if (memory_budget_ == 0) return;
  // Self-replacement is not an eviction; drop any existing entry silently.
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second, /*count_eviction=*/false);
  MemEntry entry;
  entry.key = key;
  entry.ns = NamespaceOf(key);
  entry.bytes = matrix->rows() * matrix->cols() * sizeof(float);
  // A payload that can never fit its effective limit (global budget, or
  // the namespace quota if tighter) is out-of-core territory: caching it
  // would evict the entire working set only to be re-evicted itself, and
  // GetShared serves it by mmap anyway. Leave it to the disk tier.
  size_t limit = memory_budget_;
  auto quota_it = namespace_quotas_.find(entry.ns);
  if (quota_it != namespace_quotas_.end()) {
    limit = std::min(limit, quota_it->second);
  }
  if (entry.bytes > limit) return;
  entry.cost = cost;
  entry.matrix = std::move(matrix);
  memory_bytes_ += entry.bytes;
  namespace_bytes_[entry.ns] += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  EnforceBudgetLocked();
}

void BehaviorStore::EraseLocked(std::list<MemEntry>::iterator it,
                                bool count_eviction) {
  memory_bytes_ -= it->bytes;
  auto ns_it = namespace_bytes_.find(it->ns);
  if (ns_it != namespace_bytes_.end()) {
    ns_it->second -= it->bytes;
    if (ns_it->second == 0) namespace_bytes_.erase(ns_it);
  }
  if (count_eviction) {
    ++evictions_;
    evicted_bytes_ += it->bytes;
  }
  index_.erase(it->key);
  lru_.erase(it);
}

void BehaviorStore::EnforceBudgetLocked() {
  // Pick a victim among the kEvictScan least-recent entries satisfying
  // `match`: the lowest materialization cost per byte goes first.
  auto evict_one = [this](const std::function<bool(const MemEntry&)>& match) {
    if (lru_.empty()) return false;
    auto best = lru_.end();
    double best_score = std::numeric_limits<double>::infinity();
    size_t seen = 0;
    for (auto it = std::prev(lru_.end());; --it) {
      if (match(*it)) {
        const double score =
            it->cost / static_cast<double>(std::max<size_t>(it->bytes, 1));
        if (score < best_score) {
          best_score = score;
          best = it;
        }
        if (++seen >= kEvictScan) break;
      }
      if (it == lru_.begin()) break;
    }
    if (best == lru_.end()) return false;
    EraseLocked(best, /*count_eviction=*/true);
    return true;
  };

  for (const auto& [ns, quota] : namespace_quotas_) {
    while (true) {
      auto bytes_it = namespace_bytes_.find(ns);
      if (bytes_it == namespace_bytes_.end() || bytes_it->second <= quota) {
        break;
      }
      if (!evict_one([&ns = ns](const MemEntry& e) { return e.ns == ns; })) {
        break;
      }
    }
  }
  while (memory_bytes_ > memory_budget_ && lru_.size() > 1) {
    if (!evict_one([](const MemEntry&) { return true; })) break;
  }
}

std::string UnitBehaviorKey(const std::string& model_id,
                            const Dataset& dataset) {
  return "unit:" + model_id + ":" + HexU64(DatasetFingerprint(dataset));
}

std::string HypothesisBehaviorKey(const std::string& set_name,
                                  const Dataset& dataset) {
  return "hyp:" + set_name + ":" + HexU64(DatasetFingerprint(dataset));
}

std::mutex* BehaviorStore::MaterializeLockFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(materialize_mu_);
  std::unique_ptr<std::mutex>& slot = materialize_locks_[key];
  if (slot == nullptr) slot = std::make_unique<std::mutex>();
  return slot.get();
}

Result<std::string> BehaviorStore::EnsureUnitBehaviors(
    const Extractor& extractor, const Dataset& dataset,
    bool* materialized_now) {
  if (materialized_now != nullptr) *materialized_now = false;
  const std::string key = UnitBehaviorKey(extractor.model_id(), dataset);
  std::lock_guard<std::mutex> materialize_lock(*MaterializeLockFor(key));
  if (Contains(key)) return key;
  std::vector<int> unit_ids(extractor.num_units());
  for (size_t u = 0; u < unit_ids.size(); ++u) {
    unit_ids[u] = static_cast<int>(u);
  }
  std::vector<size_t> record_idx(dataset.num_records());
  for (size_t i = 0; i < record_idx.size(); ++i) record_idx[i] = i;
  Stopwatch watch;
  Matrix behaviors = extractor.ExtractBlock(dataset, record_idx, unit_ids);
  DB_RETURN_NOT_OK(Put(key, behaviors, watch.Seconds()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;  // a request for behaviors that were not yet stored
  }
  if (materialized_now != nullptr) *materialized_now = true;
  return key;
}

Result<std::string> BehaviorStore::EnsureHypothesisBehaviors(
    const HypothesisFn& hyp, const Dataset& dataset,
    bool* materialized_now) {
  if (materialized_now != nullptr) *materialized_now = false;
  const std::string key = HypothesisBehaviorKey(hyp.name(), dataset);
  std::lock_guard<std::mutex> materialize_lock(*MaterializeLockFor(key));
  if (Contains(key)) return key;
  const size_t ns = dataset.ns();
  Stopwatch watch;
  // One row per record, normalized to ns behaviors exactly like the live
  // extraction path (zero-pad / truncate), so stored and live scores are
  // identical.
  Matrix behaviors(dataset.num_records(), ns);
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    std::vector<float> row = hyp.Eval(dataset.record(r));
    row.resize(ns, 0.0f);
    std::copy(row.begin(), row.end(), behaviors.row_data(r));
  }
  DB_RETURN_NOT_OK(Put(key, behaviors, watch.Seconds()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }
  if (materialized_now != nullptr) *materialized_now = true;
  return key;
}

Result<std::string> MaterializeUnitBehaviors(const Extractor& extractor,
                                             const Dataset& dataset,
                                             BehaviorStore* store) {
  return store->EnsureUnitBehaviors(extractor, dataset);
}

Result<PrecomputedExtractor> OpenStoredExtractor(
    const std::string& key, const std::string& model_id,
    const Dataset& dataset, BehaviorStore* store,
    BehaviorStore::Tier* served_from) {
  // Shared handle, not a deep copy: fused jobs opening the same stored
  // matrix all read the memory tier's single allocation.
  DB_ASSIGN_OR_RETURN(std::shared_ptr<const Matrix> behaviors,
                      store->GetShared(key, served_from));
  if (behaviors->rows() != dataset.num_records() * dataset.ns()) {
    return Status::Invalid(
        "stored behaviors do not align with the dataset: " +
        std::to_string(behaviors->rows()) + " rows vs " +
        std::to_string(dataset.num_records() * dataset.ns()) + " symbols");
  }
  return PrecomputedExtractor(model_id, std::move(behaviors), dataset.ns());
}

}  // namespace deepbase
