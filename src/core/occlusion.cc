#include "core/occlusion.h"

#include <algorithm>

namespace deepbase {

namespace {

// Mean of all entries of a matrix.
float MatrixMean(const Matrix& m) {
  if (m.rows() == 0 || m.cols() == 0) return 0.0f;
  double acc = 0;
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row_data(r);
    for (size_t c = 0; c < m.cols(); ++c) acc += row[c];
  }
  return static_cast<float>(acc / (m.rows() * m.cols()));
}

}  // namespace

std::vector<Matrix> OcclusionSensitivity(const TextureCnn& cnn,
                                         const Matrix& image,
                                         const OcclusionOptions& opts) {
  const size_t h = image.rows(), w = image.cols();
  const size_t num_units = cnn.num_units();

  // Baseline mean activation per unit.
  std::vector<Matrix> base_maps = cnn.UnitActivations(image);
  std::vector<float> base_mean(num_units);
  for (size_t u = 0; u < num_units; ++u) {
    base_mean[u] = MatrixMean(base_maps[u]);
  }

  std::vector<Matrix> sensitivity(num_units, Matrix(h, w));
  Matrix coverage(h, w);

  const size_t stride = std::max<size_t>(opts.stride, 1);
  for (size_t y0 = 0; y0 < h; y0 += stride) {
    for (size_t x0 = 0; x0 < w; x0 += stride) {
      const size_t y1 = std::min(y0 + opts.patch, h);
      const size_t x1 = std::min(x0 + opts.patch, w);
      // Occlude.
      Matrix occluded = image;
      for (size_t y = y0; y < y1; ++y) {
        for (size_t x = x0; x < x1; ++x) occluded(y, x) = opts.fill;
      }
      std::vector<Matrix> maps = cnn.UnitActivations(occluded);
      for (size_t u = 0; u < num_units; ++u) {
        const float drop = base_mean[u] - MatrixMean(maps[u]);
        for (size_t y = y0; y < y1; ++y) {
          for (size_t x = x0; x < x1; ++x) sensitivity[u](y, x) += drop;
        }
      }
      for (size_t y = y0; y < y1; ++y) {
        for (size_t x = x0; x < x1; ++x) coverage(y, x) += 1.0f;
      }
    }
  }

  // Normalize by how many placements covered each pixel.
  for (size_t u = 0; u < num_units; ++u) {
    for (size_t y = 0; y < h; ++y) {
      for (size_t x = 0; x < w; ++x) {
        if (coverage(y, x) > 0) sensitivity[u](y, x) /= coverage(y, x);
      }
    }
  }
  return sensitivity;
}

Result<std::vector<OcclusionScore>> ScoreOcclusion(
    const TextureCnn& cnn, const std::vector<AnnotatedImage>& images,
    int num_concepts, const OcclusionOptions& opts) {
  if (images.empty()) return Status::Invalid("no images to score");
  if (num_concepts <= 0) return Status::Invalid("num_concepts must be > 0");
  const size_t num_units = cnn.num_units();

  // Accumulated (sum, count) of sensitivity inside/outside each concept.
  std::vector<double> in_sum(num_units * num_concepts, 0.0);
  std::vector<double> in_cnt(num_units * num_concepts, 0.0);
  std::vector<double> out_sum(num_units * num_concepts, 0.0);
  std::vector<double> out_cnt(num_units * num_concepts, 0.0);

  for (const AnnotatedImage& image : images) {
    const size_t h = image.pixels.rows(), w = image.pixels.cols();
    if (image.labels.size() != h * w) {
      return Status::Invalid("annotation mask does not match image size");
    }
    std::vector<Matrix> sens = OcclusionSensitivity(cnn, image.pixels, opts);
    // Which concepts occur here?
    std::vector<bool> present(static_cast<size_t>(num_concepts) + 1, false);
    for (int label : image.labels) {
      if (label > 0 && label <= num_concepts) {
        present[static_cast<size_t>(label)] = true;
      }
    }
    for (int c = 1; c <= num_concepts; ++c) {
      if (!present[static_cast<size_t>(c)]) continue;
      for (size_t u = 0; u < num_units; ++u) {
        const size_t slot = u * num_concepts + static_cast<size_t>(c - 1);
        for (size_t y = 0; y < h; ++y) {
          for (size_t x = 0; x < w; ++x) {
            const float s = sens[u](y, x);
            if (image.labels[y * w + x] == c) {
              in_sum[slot] += s;
              in_cnt[slot] += 1;
            } else {
              out_sum[slot] += s;
              out_cnt[slot] += 1;
            }
          }
        }
      }
    }
  }

  std::vector<OcclusionScore> scores;
  scores.reserve(num_units * static_cast<size_t>(num_concepts));
  for (size_t u = 0; u < num_units; ++u) {
    for (int c = 1; c <= num_concepts; ++c) {
      const size_t slot = u * num_concepts + static_cast<size_t>(c - 1);
      OcclusionScore score;
      score.unit = u;
      score.concept_id = c;
      if (in_cnt[slot] > 0 && out_cnt[slot] > 0) {
        score.score = static_cast<float>(in_sum[slot] / in_cnt[slot] -
                                         out_sum[slot] / out_cnt[slot]);
      }
      scores.push_back(score);
    }
  }
  return scores;
}

std::vector<int> AssignConcepts(const std::vector<OcclusionScore>& scores,
                                size_t num_units, int num_concepts) {
  std::vector<int> best(num_units, -1);
  std::vector<float> best_score(num_units, 0.0f);
  (void)num_concepts;
  for (const OcclusionScore& s : scores) {
    if (s.unit < num_units && s.score > best_score[s.unit]) {
      best_score[s.unit] = s.score;
      best[s.unit] = s.concept_id;
    }
  }
  return best;
}

}  // namespace deepbase
