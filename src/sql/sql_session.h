// SqlSession: the Appendix-B integration of DNI into SQL. Models, hidden
// units, hypotheses, and input datasets are exposed as relations
// (`models`, `units`, `hypotheses`, `inputs`); the INSPECT clause is
// evaluated before SELECT and materializes a temporary relation with
// per-unit affinity scores that later clauses can reference:
//
//   SELECT M.epoch, S.uid
//   INSPECT U.uid AND H.h USING corr OVER D.seq AS S
//   FROM models M, units U, hypotheses H, inputs D
//   WHERE M.mid = U.mid AND M.mid = 'sqlparser' AND
//         U.layer = 0 AND H.name = 'keywords'
//   GROUP BY M.epoch
//   HAVING S.unit_score > 0.8
//
// Plain SELECT statements (no INSPECT) run directly on the relational
// executor and may also use registered user tables.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "relational/sql_executor.h"

namespace deepbase {

class SqlSession {
 public:
  explicit SqlSession(InspectOptions options = {})
      : options_(std::move(options)) {}

  /// \brief Register a user table for plain SELECT queries.
  void RegisterTable(const std::string& name, const DbTable* table);

  /// \brief Register a model. It appears as a row of `models` with column
  /// mid = name plus one column per attribute (e.g. epoch); its hidden
  /// units appear in `units` (mid, uid, layer), where layer = uid /
  /// layer_size (single layer 0 when layer_size == 0).
  void RegisterModel(const std::string& name, const Extractor* extractor,
                     size_t layer_size = 0,
                     std::map<std::string, Datum> attrs = {});

  /// \brief Register a named hypothesis set. Each function appears as a row
  /// of `hypotheses` (h = function name, name = set name).
  void RegisterHypotheses(const std::string& set_name,
                          std::vector<HypothesisPtr> hypotheses);

  /// \brief Register a dataset; appears as a row of `inputs` (did, seq).
  void RegisterDataset(const std::string& name, const Dataset* dataset);

  /// \brief Parse and execute one statement (plain SELECT or
  /// SELECT-with-INSPECT).
  Result<DbTable> Execute(const std::string& sql,
                          RuntimeStats* stats = nullptr);

  InspectOptions* mutable_options() { return &options_; }

 private:
  struct ModelEntry {
    const Extractor* extractor;
    size_t layer_size;
    std::map<std::string, Datum> attrs;
  };

  void RebuildCatalogTables();
  Result<DbTable> ExecuteInspectStmt(const SelectStmt& stmt,
                                     RuntimeStats* stats);

  InspectOptions options_;
  std::map<std::string, ModelEntry> models_;
  std::map<std::string, std::vector<HypothesisPtr>> hypothesis_sets_;
  std::map<std::string, const Dataset*> datasets_;
  std::map<std::string, const DbTable*> user_tables_;

  // Materialized catalog relations (rebuilt on registration changes).
  bool catalog_dirty_ = true;
  DbTable models_table_;
  DbTable units_table_;
  DbTable hypotheses_table_;
  DbTable inputs_table_;
};

/// \brief Convert an engine ResultTable into a typed relation with schema
/// (model, group_id, measure, hypothesis, unit, unit_score, group_score) —
/// the paper's §4.1 post-processing path: register the result as a user
/// table and slice it with plain SQL (top-k, grouping, joins against other
/// statistics).
DbTable ResultsToDbTable(const ResultTable& results);

}  // namespace deepbase
