// SqlSession: the Appendix-B integration of DNI into SQL, as a thin
// frontend over InspectionSession. Models, hidden units, hypotheses, and
// input datasets live in the session's shared Catalog and are exposed as
// relations (`models`, `units`, `hypotheses`, `inputs`) generated from it;
// the INSPECT clause compiles to an InspectRequest per GROUP BY group and
// executes through the session (sharing its behavior store and hypothesis
// cache with every other frontend). The clause is evaluated before SELECT
// and materializes a temporary relation with per-unit affinity scores that
// later clauses can reference:
//
//   SELECT M.epoch, S.uid
//   INSPECT U.uid AND H.h USING corr OVER D.seq AS S
//   FROM models M, units U, hypotheses H, inputs D
//   WHERE M.mid = U.mid AND M.mid = 'sqlparser' AND
//         U.layer = 0 AND H.name = 'keywords'
//   GROUP BY M.epoch
//   HAVING S.unit_score > 0.8
//
// Plain SELECT statements (no INSPECT) run directly on the relational
// executor and may also use registered user tables.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "relational/sql_executor.h"
#include "service/inspection_session.h"

namespace deepbase {

class SqlSession {
 public:
  /// \brief Stand-alone session: owns a private InspectionSession (no
  /// behavior store; options become the session defaults).
  explicit SqlSession(InspectOptions options = {});

  /// \brief Frontend over a shared InspectionSession (not owned): the SQL
  /// layer, the fluent builder, and raw requests then resolve through one
  /// catalog and share the store/cache.
  explicit SqlSession(InspectionSession* session);

  /// \brief Register a user table for plain SELECT queries.
  void RegisterTable(const std::string& name, const DbTable* table);

  /// \brief Register a model in the shared catalog. It appears as a row of
  /// `models` with column mid = name plus one column per attribute (e.g.
  /// epoch); its hidden units appear in `units` (mid, uid, layer), where
  /// layer = uid / layer_size (single layer 0 when layer_size == 0).
  void RegisterModel(const std::string& name, const Extractor* extractor,
                     size_t layer_size = 0,
                     std::map<std::string, Datum> attrs = {});

  /// \brief Register a named hypothesis set. Each function appears as a row
  /// of `hypotheses` (h = function name, name = set name).
  void RegisterHypotheses(const std::string& set_name,
                          std::vector<HypothesisPtr> hypotheses);

  /// \brief Register a dataset; appears as a row of `inputs` (did, seq).
  void RegisterDataset(const std::string& name, const Dataset* dataset);

  /// \brief Parse and execute one statement (plain SELECT or
  /// SELECT-with-INSPECT).
  Result<DbTable> Execute(const std::string& sql,
                          RuntimeStats* stats = nullptr);

  InspectionSession* session() { return session_; }
  Catalog& catalog() { return session_->catalog(); }

  /// \brief The underlying session's default engine options.
  InspectOptions* mutable_options() {
    return session_->mutable_default_options();
  }

 private:
  void RebuildCatalogTables();
  void RegisterCatalogRelations(DbCatalog* db_catalog);
  Result<DbTable> ExecuteInspectStmt(const SelectStmt& stmt,
                                     RuntimeStats* stats);

  std::unique_ptr<InspectionSession> owned_session_;
  InspectionSession* session_ = nullptr;

  std::map<std::string, const DbTable*> user_tables_;

  // Catalog relations, materialized from the shared Catalog and rebuilt
  // whenever its version changes.
  uint64_t catalog_version_seen_ = ~uint64_t{0};
  DbTable models_table_;
  DbTable units_table_;
  DbTable hypotheses_table_;
  DbTable inputs_table_;
};

/// \brief Convert an engine ResultTable into a typed relation with schema
/// (model, group_id, measure, hypothesis, unit, unit_score, group_score) —
/// the paper's §4.1 post-processing path: register the result as a user
/// table and slice it with plain SQL (top-k, grouping, joins against other
/// statistics).
DbTable ResultsToDbTable(const ResultTable& results);

}  // namespace deepbase
