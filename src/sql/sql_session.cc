#include "sql/sql_session.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "service/explain.h"

namespace deepbase {

SqlSession::SqlSession(InspectOptions options) {
  SessionConfig config;
  config.options = std::move(options);
  owned_session_ = std::make_unique<InspectionSession>(std::move(config));
  session_ = owned_session_.get();
}

SqlSession::SqlSession(InspectionSession* session) : session_(session) {}

void SqlSession::RegisterTable(const std::string& name,
                               const DbTable* table) {
  user_tables_[name] = table;
}

void SqlSession::RegisterModel(const std::string& name,
                               const Extractor* extractor, size_t layer_size,
                               std::map<std::string, Datum> attrs) {
  catalog().RegisterModel(name, extractor, layer_size, std::move(attrs));
}

void SqlSession::RegisterHypotheses(const std::string& set_name,
                                    std::vector<HypothesisPtr> hypotheses) {
  catalog().RegisterHypotheses(set_name, std::move(hypotheses));
}

void SqlSession::RegisterDataset(const std::string& name,
                                 const Dataset* dataset) {
  catalog().RegisterDataset(name, dataset);
}

void SqlSession::RebuildCatalogTables() {
  const uint64_t version = catalog().version();
  if (version == catalog_version_seen_) return;
  catalog_version_seen_ = version;

  // models: mid + the union of attribute keys across models.
  const std::vector<std::string> model_names = catalog().ModelNames();
  std::map<std::string, CatalogModel> models;
  std::set<std::string> attr_keys;
  for (const std::string& name : model_names) {
    Result<CatalogModel> entry = catalog().GetModel(name);
    if (!entry.ok()) continue;  // racing unregister; relation just skips it
    for (const auto& [key, value] : entry->attrs) attr_keys.insert(key);
    models.emplace(name, std::move(*entry));
  }
  std::vector<std::string> model_cols = {"mid"};
  model_cols.insert(model_cols.end(), attr_keys.begin(), attr_keys.end());
  models_table_ = DbTable(model_cols);
  for (const auto& [name, entry] : models) {
    DbRow row = {Datum::Str(name)};
    for (const std::string& key : attr_keys) {
      auto it = entry.attrs.find(key);
      row.push_back(it == entry.attrs.end() ? Datum::Null() : it->second);
    }
    DB_CHECK_OK(models_table_.AppendRow(std::move(row)));
  }

  // units: (mid, uid, layer).
  units_table_ = DbTable({"mid", "uid", "layer"});
  for (const auto& [name, entry] : models) {
    for (size_t u = 0; u < entry.extractor->num_units(); ++u) {
      const double layer =
          entry.layer_size > 0
              ? static_cast<double>(u / entry.layer_size)
              : 0.0;
      DB_CHECK_OK(units_table_.AppendRow(
          {Datum::Str(name), Datum::Number(static_cast<double>(u)),
           Datum::Number(layer)}));
    }
  }

  // hypotheses: (h, name).
  hypotheses_table_ = DbTable({"h", "name"});
  for (const std::string& set_name : catalog().HypothesisSetNames()) {
    Result<std::vector<HypothesisPtr>> hyps =
        catalog().GetHypotheses(set_name);
    if (!hyps.ok()) continue;
    for (const HypothesisPtr& hyp : *hyps) {
      DB_CHECK_OK(hypotheses_table_.AppendRow(
          {Datum::Str(hyp->name()), Datum::Str(set_name)}));
    }
  }

  // inputs: (did, seq).
  inputs_table_ = DbTable({"did", "seq"});
  for (const std::string& name : catalog().DatasetNames()) {
    DB_CHECK_OK(
        inputs_table_.AppendRow({Datum::Str(name), Datum::Str(name)}));
  }
}

void SqlSession::RegisterCatalogRelations(DbCatalog* db_catalog) {
  db_catalog->Register("models", &models_table_);
  db_catalog->Register("units", &units_table_);
  db_catalog->Register("hypotheses", &hypotheses_table_);
  db_catalog->Register("inputs", &inputs_table_);
  for (const auto& [name, table] : user_tables_) {
    db_catalog->Register(name, table);
  }
}

namespace {

// Case-insensitive word at the front of `text` (letters/underscores only).
std::string FirstWordLower(const std::string& text, size_t* end_pos) {
  size_t pos = 0;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  std::string word;
  while (pos < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[pos]))) {
    word += static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[pos])));
    ++pos;
  }
  if (end_pos != nullptr) *end_pos = pos;
  return word;
}

}  // namespace

Result<DbTable> SqlSession::Execute(const std::string& sql,
                                    RuntimeStats* stats) {
  std::string text = sql;
  const bool explain = StripExplainPrefix(&text);
  if (explain) {
    // EXPLAIN [ANALYZE] INSPECT UNITS OF ... — the textual frontend's
    // statement routes to the session's inspection planner and renders
    // the plan tree as a one-column relation. SELECT statements (and the
    // SQL-relational INSPECT clause) keep the relational EXPLAIN below.
    bool analyze = false;
    std::string body = text;
    size_t after_first = 0;
    if (FirstWordLower(body, &after_first) == "analyze") {
      analyze = true;
      body = body.substr(after_first);
    }
    if (FirstWordLower(body, nullptr) == "inspect") {
      DB_ASSIGN_OR_RETURN(InspectionPlan plan,
                          ExplainInspectStatement(session_, body, analyze));
      DbTable out({"plan"});
      const std::string rendered = plan.ToText();
      size_t start = 0;
      while (start < rendered.size()) {
        size_t nl = rendered.find('\n', start);
        if (nl == std::string::npos) nl = rendered.size();
        DB_RETURN_NOT_OK(
            out.AppendRow({Datum::Str(rendered.substr(start, nl - start))}));
        start = nl + 1;
      }
      return out;
    }
    if (analyze) {
      return Status::Invalid(
          "EXPLAIN ANALYZE is only supported for INSPECT statements");
    }
  }
  DB_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSql(text));
  RebuildCatalogTables();

  DbCatalog db_catalog;
  RegisterCatalogRelations(&db_catalog);
  if (explain) return ExplainToTable(stmt, db_catalog);
  if (stmt.inspect.has_value()) return ExecuteInspectStmt(stmt, stats);
  return ExecuteSelect(stmt, db_catalog);
}

namespace {

// The alias prefix of a resolved qualified column name ("U.uid" -> "U").
Result<std::string> AliasPrefix(const DbSchema& schema,
                                const std::string& column_ref) {
  DB_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(column_ref));
  const std::string& qualified = schema.name(idx);
  const size_t dot = qualified.find('.');
  if (dot == std::string::npos) {
    return Status::Invalid("column is not table-qualified: " + qualified);
  }
  return qualified.substr(0, dot);
}

Status RequireColumn(const ExprPtr& expr, const char* what) {
  if (expr == nullptr || expr->kind != ExprKind::kColumn) {
    return Status::Invalid(std::string("INSPECT ") + what +
                           " must be a column reference");
  }
  return Status::OK();
}

}  // namespace

Result<DbTable> SqlSession::ExecuteInspectStmt(const SelectStmt& stmt,
                                               RuntimeStats* stats) {
  const InspectClause& clause = *stmt.inspect;
  DB_RETURN_NOT_OK(RequireColumn(clause.unit_expr, "unit reference"));
  DB_RETURN_NOT_OK(RequireColumn(clause.hypothesis_expr,
                                 "hypothesis reference"));
  DB_RETURN_NOT_OK(RequireColumn(clause.over_expr, "OVER reference"));

  // 1. FROM/WHERE over the catalog relations.
  DbCatalog db_catalog;
  RegisterCatalogRelations(&db_catalog);
  DB_ASSIGN_OR_RETURN(DbTable joined, JoinAndFilter(stmt, db_catalog));
  const DbSchema& schema = joined.schema();

  // 2. Resolve the INSPECT references against the joined schema. The unit
  // reference's table alias also provides the model id column; the
  // hypothesis reference's alias provides the set-name column.
  DB_ASSIGN_OR_RETURN(std::string unit_alias,
                      AliasPrefix(schema, clause.unit_expr->column));
  DB_ASSIGN_OR_RETURN(std::string hyp_alias,
                      AliasPrefix(schema, clause.hypothesis_expr->column));
  DB_ASSIGN_OR_RETURN(size_t uid_col,
                      schema.Resolve(clause.unit_expr->column));
  DB_ASSIGN_OR_RETURN(size_t mid_col, schema.Resolve(unit_alias + ".mid"));
  DB_ASSIGN_OR_RETURN(size_t h_col,
                      schema.Resolve(clause.hypothesis_expr->column));
  DB_ASSIGN_OR_RETURN(size_t hset_col, schema.Resolve(hyp_alias + ".name"));
  DB_ASSIGN_OR_RETURN(std::string over_alias,
                      AliasPrefix(schema, clause.over_expr->column));
  DB_ASSIGN_OR_RETURN(size_t did_col, schema.Resolve(over_alias + ".did"));

  // 3. Measure names are resolved by Catalog::Compile (default: pearson).
  // Validate them eagerly so a bad USING list fails before any extraction.
  for (const std::string& name : clause.measures) {
    DB_RETURN_NOT_OK(catalog().GetMeasure(name).status());
  }

  // 4. Partition the joined rows by the GROUP BY key; collect the units,
  // hypotheses, and dataset of each group.
  struct GroupSpec {
    std::vector<Datum> key;
    std::map<std::string, std::set<int>> units_by_model;
    std::set<std::pair<std::string, std::string>> hyps;  // (set, fn name)
    std::set<std::string> dataset_names;
  };
  std::vector<GroupSpec> groups;
  std::map<std::string, size_t> group_index;
  for (size_t r = 0; r < joined.num_rows(); ++r) {
    const DbRow& row = joined.row(r);
    std::vector<Datum> key;
    std::string key_str;
    for (const ExprPtr& g : stmt.group_by) {
      DB_ASSIGN_OR_RETURN(Datum v, EvalScalar(*g, schema, row));
      key_str += v.ToString();
      key_str += '\x1f';
      key.push_back(std::move(v));
    }
    auto [it, inserted] = group_index.emplace(key_str, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().key = std::move(key);
    }
    GroupSpec& group = groups[it->second];
    if (!row[mid_col].is_string() || !row[uid_col].is_number()) {
      return Status::Invalid(
          "INSPECT unit reference must join a string mid with a numeric "
          "uid");
    }
    group.units_by_model[row[mid_col].str].insert(
        static_cast<int>(row[uid_col].num));
    group.hyps.emplace(row[hset_col].ToString(), row[h_col].ToString());
    group.dataset_names.insert(row[did_col].ToString());
  }

  // 5. Output relation S: GROUP BY columns + the scores.
  DbSchema s_schema;
  for (const ExprPtr& g : stmt.group_by) s_schema.Append(g->ToString());
  const std::string& alias = clause.alias;
  for (const char* col : {"mid", "uid", "hid", "measure", "group_score",
                          "unit_score"}) {
    s_schema.Append(alias + "." + col);
  }
  DbTable s_table(s_schema);

  bool first_group = true;
  for (const GroupSpec& group : groups) {
    if (group.dataset_names.size() != 1) {
      return Status::Invalid(
          "INSPECT requires exactly one dataset per group; got " +
          std::to_string(group.dataset_names.size()));
    }

    // Compile this group to a declarative request against the shared
    // catalog: one model ref per model with the group's units, and each
    // selected hypothesis function resolved within its own set (a name
    // duplicated across sets must not resolve to another set's
    // implementation, so the functions go in inline rather than as a
    // set-plus-filter reference).
    InspectRequest request;
    for (const auto& [mid, uids] : group.units_by_model) {
      InspectRequest::ModelRef ref;
      ref.name = mid;
      UnitGroupSpec ugroup;
      ugroup.group_id = "sql_group";
      ugroup.unit_ids.assign(uids.begin(), uids.end());
      ref.groups.push_back(std::move(ugroup));
      request.models.push_back(std::move(ref));
    }
    std::set<std::string> seen_hyp_names;
    for (const auto& [set_name, fn_name] : group.hyps) {
      DB_ASSIGN_OR_RETURN(std::vector<HypothesisPtr> set,
                          catalog().GetHypotheses(set_name));
      bool found = false;
      for (const HypothesisPtr& hyp : set) {
        if (hyp->name() == fn_name) {
          if (seen_hyp_names.insert(fn_name).second) {
            request.hypotheses.push_back(hyp);
          }
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("hypothesis '" + fn_name +
                                "' not found in set '" + set_name + "'");
      }
    }
    request.dataset_name = *group.dataset_names.begin();
    request.measure_names = clause.measures;

    RuntimeStats group_stats;
    DB_ASSIGN_OR_RETURN(ResultTable results,
                        session_->Inspect(request, &group_stats));
    if (stats != nullptr) {
      if (first_group) stats->all_converged = true;  // identity for the
                                                     // && fold below
      stats->Accumulate(group_stats);
    }
    first_group = false;

    for (const ResultRow& row : results.rows()) {
      if (row.unit < 0) continue;  // group-level rows are folded into
                                   // group_score on the unit rows
      DbRow out;
      out.reserve(s_schema.size());
      for (const Datum& k : group.key) out.push_back(k);
      out.push_back(Datum::Str(row.model_id));
      out.push_back(Datum::Number(row.unit));
      out.push_back(Datum::Str(row.hypothesis));
      out.push_back(Datum::Str(row.measure));
      out.push_back(std::isnan(row.group_score)
                        ? Datum::Null()
                        : Datum::Number(row.group_score));
      out.push_back(std::isnan(row.unit_score)
                        ? Datum::Null()
                        : Datum::Number(row.unit_score));
      DB_RETURN_NOT_OK(s_table.AppendRow(std::move(out)));
    }
  }

  // 6. SELECT / HAVING / ORDER BY / LIMIT over S. GROUP BY was consumed by
  // the inspection, and HAVING filters the unit rows of S (the Appendix-B
  // idiom `HAVING S.unit_score > 0.8`), so grouping is skipped here.
  return ProjectAndFinalize(stmt, s_table, /*skip_group_by=*/true);
}

DbTable ResultsToDbTable(const ResultTable& results) {
  DbTable out({"model", "group_id", "measure", "hypothesis", "unit",
               "unit_score", "group_score"});
  for (const ResultRow& row : results.rows()) {
    DB_CHECK_OK(out.AppendRow(
        {Datum::Str(row.model_id), Datum::Str(row.group_id),
         Datum::Str(row.measure), Datum::Str(row.hypothesis),
         row.unit < 0 ? Datum::Null() : Datum::Number(row.unit),
         std::isnan(row.unit_score) ? Datum::Null()
                                    : Datum::Number(row.unit_score),
         std::isnan(row.group_score) ? Datum::Null()
                                     : Datum::Number(row.group_score)}));
  }
  return out;
}

}  // namespace deepbase
