#include "data/dataset.h"

#include "util/logging.h"

namespace deepbase {

std::string Record::Text(const std::string& sep) const {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i && !sep.empty()) out += sep;
    out += tokens[i];
  }
  return out;
}

void Dataset::Add(Record record) {
  DB_DCHECK(record.tokens.size() == record.ids.size());
  // Pad or truncate to ns symbols; annotation tracks are padded with "".
  if (record.ids.size() > ns_) {
    record.ids.resize(ns_);
    record.tokens.resize(ns_);
    for (auto& [name, track] : record.annotations) track.resize(ns_);
  }
  while (record.ids.size() < ns_) {
    record.ids.push_back(Vocab::kPadId);
    record.tokens.push_back(Vocab::kPadToken);
  }
  for (auto& [name, track] : record.annotations) {
    track.resize(ns_, "");
  }
  records_.push_back(std::move(record));
}

void Dataset::AddText(const std::string& text) {
  Record rec;
  rec.tokens.reserve(text.size());
  rec.ids.reserve(text.size());
  for (char ch : text) {
    std::string tok(1, ch);
    rec.ids.push_back(vocab_.LookupOrPad(tok));
    rec.tokens.push_back(std::move(tok));
  }
  Add(std::move(rec));
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  DB_DCHECK(begin <= end && end <= records_.size());
  Dataset out(vocab_, ns_);
  for (size_t i = begin; i < end; ++i) out.Add(records_[i]);
  return out;
}

BlockIterator::BlockIterator(const Dataset* dataset, size_t block_size,
                             uint64_t seed, bool shuffle)
    : dataset_(dataset),
      block_size_(block_size),
      seed_(seed),
      shuffle_(shuffle) {
  Reset();
}

void BlockIterator::Reset() {
  order_.resize(dataset_->num_records());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (shuffle_) {
    Rng rng(seed_);
    rng.Shuffle(&order_);
  }
  pos_ = 0;
}

std::vector<size_t> BlockIterator::NextBlock() {
  size_t end = std::min(order_.size(), pos_ + block_size_);
  std::vector<size_t> block(order_.begin() + pos_, order_.begin() + end);
  pos_ = end;
  return block;
}

Dataset SlidingWindowDataset(const std::vector<std::string>& texts, size_t ns,
                             size_t stride) {
  DB_DCHECK(stride > 0);
  std::string all;
  for (const auto& t : texts) all += t;
  Dataset out(Vocab::FromChars(all), ns);
  for (const auto& text : texts) {
    if (text.empty()) continue;
    for (size_t begin = 0; begin < text.size(); begin += stride) {
      out.AddText(text.substr(begin, ns));
      if (begin + ns >= text.size()) break;
    }
  }
  return out;
}

}  // namespace deepbase
