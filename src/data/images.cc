#include "data/images.h"

#include <algorithm>

namespace deepbase {

std::vector<AnnotatedImage> GenerateAnnotatedImages(size_t n, size_t h,
                                                    size_t w,
                                                    int num_concepts,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<AnnotatedImage> images;
  images.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    AnnotatedImage img;
    img.pixels = Matrix(h, w);
    img.labels.assign(h * w, 0);
    // Low-amplitude background noise.
    for (size_t r = 0; r < h; ++r) {
      for (size_t c = 0; c < w; ++c) {
        img.pixels(r, c) = static_cast<float>(rng.Uniform(0.0, 0.15));
      }
    }
    // Place 1-3 concept_id rectangles.
    size_t num_shapes = 1 + rng.UniformInt(3);
    for (size_t s = 0; s < num_shapes; ++s) {
      int concept_id = 1 + static_cast<int>(rng.UniformInt(num_concepts));
      size_t rh = 3 + rng.UniformInt(std::max<size_t>(1, h / 2));
      size_t rw = 3 + rng.UniformInt(std::max<size_t>(1, w / 2));
      size_t r0 = rng.UniformInt(std::max<size_t>(1, h - rh));
      size_t c0 = rng.UniformInt(std::max<size_t>(1, w - rw));
      const int period = concept_id + 1;
      const float base = 0.4f + 0.5f * static_cast<float>(concept_id) /
                                    static_cast<float>(num_concepts);
      for (size_t r = r0; r < std::min(h, r0 + rh); ++r) {
        for (size_t c = c0; c < std::min(w, c0 + rw); ++c) {
          bool stripe = (concept_id % 2 == 1)
                            ? (static_cast<int>(r) % period) < period / 2
                            : (static_cast<int>(c) % period) < period / 2;
          img.pixels(r, c) = stripe ? base : base * 0.3f;
          img.labels[r * w + c] = concept_id;
        }
      }
    }
    images.push_back(std::move(img));
  }
  return images;
}

}  // namespace deepbase
