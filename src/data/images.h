// Synthetic annotated images: the Broden-dataset substitute for the
// NetDissect comparison (paper Appendix E). Each image contains textured
// shapes with per-pixel concept labels, so IoU-based inspection has
// planted ground truth.

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace deepbase {

/// \brief A grayscale image plus a per-pixel concept mask.
struct AnnotatedImage {
  /// H×W pixel intensities in [0, 1].
  Matrix pixels;
  /// H*W row-major concept labels; 0 is background, 1..num_concepts are
  /// planted concepts (each with a distinctive texture).
  std::vector<int> labels;
};

/// \brief Generate `n` images of size h×w containing randomly placed
/// rectangles, one per concept occurrence. Concept c is rendered with a
/// distinctive texture: horizontal stripes of period c+1 for odd concepts,
/// vertical stripes for even ones, with concept-specific intensity.
std::vector<AnnotatedImage> GenerateAnnotatedImages(size_t n, size_t h,
                                                    size_t w,
                                                    int num_concepts,
                                                    uint64_t seed);

}  // namespace deepbase
