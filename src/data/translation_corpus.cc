#include "data/translation_corpus.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace deepbase {

namespace {

struct TaggedWord {
  std::string word;
  std::string tag;
};

// Closed lexicon, keyed by Penn Treebank tag. Kept small so a small seq2seq
// model can learn the mapping, but large enough that tags are not trivially
// identified by a single word.
const std::map<std::string, std::vector<std::string>>& Lexicon() {
  static const std::map<std::string, std::vector<std::string>> kLex = {
      {"DT", {"the", "a", "this", "that", "every"}},
      // "watch" and "run" are deliberately tag-ambiguous (NN here, verb
      // below): gold tags for them are context-dependent, which is what
      // separates a trained encoder from an untrained one in the probes.
      {"NN", {"dog", "cat", "house", "tree", "car", "book", "river", "child",
              "road", "garden", "watch", "run"}},
      {"NNS", {"dogs", "cats", "houses", "books", "trees", "cars",
               "watches", "finds"}},
      {"NNP", {"john", "mary", "berlin", "paris", "anna", "peter"}},
      {"PRP", {"he", "she", "they", "it", "we"}},
      {"VBD", {"saw", "liked", "found", "watched", "built", "crossed"}},
      {"VBZ", {"sees", "likes", "finds", "watches", "builds"}},
      {"VBP", {"see", "like", "find", "watch"}},
      {"VB", {"run", "read", "move", "wait"}},
      {"VBN", {"seen", "liked", "found", "built"}},
      {"MD", {"can", "will", "must"}},
      {"JJ", {"big", "small", "red", "old", "happy", "quiet"}},
      {"JJR", {"bigger", "smaller", "older", "happier"}},
      {"RB", {"quickly", "slowly", "often", "here", "today"}},
      {"IN", {"in", "on", "near", "with", "under"}},
      {"CC", {"and", "or", "but"}},
      {"CD", {"one", "two", "three", "seven", "ten"}},
      {".", {"."}},
      {",", {","}},
  };
  return kLex;
}

class SentenceSampler {
 public:
  explicit SentenceSampler(Rng* rng) : rng_(rng) {}

  // Emits tokens and fills phrase membership flags.
  void Sentence(std::vector<TaggedWord>* out,
                std::vector<std::vector<int>>* phrase_flags) {
    out->clear();
    np_flags_.clear();
    vp_flags_.clear();
    pp_flags_.clear();
    NounPhrase(out, /*allow_conj=*/true);
    VerbPhrase(out);
    Emit(out, ".", ".");
    phrase_flags->assign({np_flags_, vp_flags_, pp_flags_});
  }

 private:
  void Emit(std::vector<TaggedWord>* out, const std::string& tag,
            const std::string& word) {
    out->push_back({word, tag});
    np_flags_.push_back(in_np_ > 0 ? 1 : 0);
    vp_flags_.push_back(in_vp_ > 0 ? 1 : 0);
    pp_flags_.push_back(in_pp_ > 0 ? 1 : 0);
  }

  void EmitTag(std::vector<TaggedWord>* out, const std::string& tag) {
    const auto& words = Lexicon().at(tag);
    Emit(out, tag, words[rng_->UniformInt(words.size())]);
  }

  void NounPhrase(std::vector<TaggedWord>* out, bool allow_conj) {
    ++in_np_;
    double r = rng_->Uniform();
    if (r < 0.15) {
      EmitTag(out, "PRP");
    } else if (r < 0.30) {
      EmitTag(out, "NNP");
    } else if (r < 0.42) {
      EmitTag(out, "CD");
      EmitTag(out, "NNS");
    } else if (r < 0.62) {
      EmitTag(out, "DT");
      EmitTag(out, "NN");
    } else if (r < 0.82) {
      EmitTag(out, "DT");
      EmitTag(out, "JJ");
      EmitTag(out, "NN");
    } else {
      EmitTag(out, "DT");
      EmitTag(out, "JJR");
      EmitTag(out, "NN");
    }
    if (allow_conj && rng_->Bernoulli(0.12)) {
      EmitTag(out, "CC");
      NounPhrase(out, /*allow_conj=*/false);
    }
    --in_np_;
  }

  void PrepPhrase(std::vector<TaggedWord>* out) {
    ++in_pp_;
    EmitTag(out, "IN");
    NounPhrase(out, /*allow_conj=*/false);
    --in_pp_;
  }

  void VerbPhrase(std::vector<TaggedWord>* out) {
    ++in_vp_;
    double r = rng_->Uniform();
    if (r < 0.15) {
      // Modal construction: MD VB NP
      EmitTag(out, "MD");
      EmitTag(out, "VB");
      NounPhrase(out, /*allow_conj=*/false);
    } else if (r < 0.30) {
      // Past participle: VBD VBN (e.g. "was seen"-like, simplified)
      EmitTag(out, "VBD");
      EmitTag(out, "VBN");
    } else if (r < 0.70) {
      EmitTag(out, rng_->Bernoulli(0.6) ? "VBD" : "VBZ");
      NounPhrase(out, /*allow_conj=*/false);
      if (rng_->Bernoulli(0.35)) PrepPhrase(out);
    } else if (r < 0.85) {
      EmitTag(out, "VBP");
      NounPhrase(out, /*allow_conj=*/false);
      if (rng_->Bernoulli(0.4)) EmitTag(out, "RB");
    } else {
      EmitTag(out, rng_->Bernoulli(0.5) ? "VBD" : "VBZ");
      EmitTag(out, "RB");
    }
    --in_vp_;
  }

  Rng* rng_;
  int in_np_ = 0;
  int in_vp_ = 0;
  int in_pp_ = 0;
  std::vector<int> np_flags_;
  std::vector<int> vp_flags_;
  std::vector<int> pp_flags_;
};

// Deterministic pseudo-German word: lexicon-mapped prefix form.
std::string Germanize(const TaggedWord& tw) {
  if (tw.tag == "." || tw.tag == ",") return tw.word;
  // A fixed per-word mapping: suffix encodes the tag class so that the
  // decoder must distinguish word classes, prefix keeps word identity.
  std::string suffix = "en";
  if (tw.tag[0] == 'N') suffix = "ung";
  else if (tw.tag[0] == 'V' || tw.tag == "MD") suffix = "t";
  else if (tw.tag[0] == 'J') suffix = "ig";
  else if (tw.tag == "DT") suffix = "er";
  return tw.word + suffix;
}

}  // namespace

const std::vector<std::string>& TranslationTagset() {
  static const std::vector<std::string> kTags = {
      "DT", "NN", "NNS", "NNP", "PRP", "VBD", "VBZ", "VBP", "VB", "VBN",
      "MD", "JJ", "JJR", "RB", "IN", "CC", "CD", ".", ","};
  return kTags;
}

TranslationCorpus GenerateTranslationCorpus(size_t n_sentences, size_t ns,
                                            uint64_t seed) {
  Rng rng(seed);
  SentenceSampler sampler(&rng);

  TranslationCorpus corpus;
  // Pre-build the full source vocabulary from the lexicon so that records
  // never contain unknown words.
  Vocab vocab;
  for (const auto& [tag, words] : Lexicon()) {
    for (const auto& w : words) {
      vocab.Add(w);
      corpus.target_vocab.Add(Germanize({w, tag}));
    }
  }
  corpus.source = Dataset(std::move(vocab), ns);
  corpus.target_len = ns;

  const std::vector<std::string> phrase_names = {"NP", "VP", "PP"};
  for (size_t i = 0; i < n_sentences; ++i) {
    std::vector<TaggedWord> words;
    std::vector<std::vector<int>> flags;
    sampler.Sentence(&words, &flags);
    if (words.size() > ns) continue;  // resample implicitly: skip long ones

    Record rec;
    std::vector<std::string> pos;
    for (const auto& tw : words) {
      rec.tokens.push_back(tw.word);
      rec.ids.push_back(corpus.source.vocab().LookupOrPad(tw.word));
      pos.push_back(tw.tag);
    }
    rec.annotations["pos"] = std::move(pos);
    for (size_t p = 0; p < phrase_names.size(); ++p) {
      std::vector<std::string> track;
      for (int f : flags[p]) track.push_back(f ? "1" : "0");
      rec.annotations[phrase_names[p]] = std::move(track);
    }

    // Target: SOV-ish reorder — move the first verb-group to the end,
    // then map every word through the pseudo-German lexicon.
    std::vector<TaggedWord> target = words;
    size_t verb_begin = target.size(), verb_end = target.size();
    for (size_t k = 0; k < target.size(); ++k) {
      const std::string& t = target[k].tag;
      if (t[0] == 'V' || t == "MD") {
        if (verb_begin == target.size()) verb_begin = k;
        verb_end = k + 1;
      } else if (verb_begin != target.size()) {
        break;
      }
    }
    std::vector<TaggedWord> reordered;
    for (size_t k = 0; k < target.size(); ++k) {
      if (k < verb_begin || k >= verb_end) reordered.push_back(target[k]);
    }
    // Verb group goes before the final period.
    std::vector<TaggedWord> verbs(target.begin() + verb_begin,
                                  target.begin() + verb_end);
    if (!reordered.empty() && reordered.back().tag == ".") {
      reordered.insert(reordered.end() - 1, verbs.begin(), verbs.end());
    } else {
      reordered.insert(reordered.end(), verbs.begin(), verbs.end());
    }
    std::vector<int> target_ids;
    for (const auto& tw : reordered) {
      target_ids.push_back(corpus.target_vocab.LookupOrPad(Germanize(tw)));
    }
    target_ids.resize(ns, Vocab::kPadId);

    corpus.source.Add(std::move(rec));
    corpus.targets.push_back(std::move(target_ids));
  }
  return corpus;
}

}  // namespace deepbase
