// Dataset D: an nd × ns matrix of symbols (paper §3, Table 1). Each record
// is a fixed-length, null-padded sequence of symbols, and may carry named
// per-symbol annotations (e.g., POS tags) used to build hypothesis functions.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "data/vocab.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepbase {

/// \brief One row d_i of the dataset: ns symbols plus optional annotations.
struct Record {
  /// Surface form of each symbol (single characters or words).
  std::vector<std::string> tokens;
  /// Vocab ids, aligned with tokens; padded with Vocab::kPadId.
  std::vector<int> ids;
  /// Named per-symbol annotation tracks (e.g. "pos" -> one tag per symbol).
  std::map<std::string, std::vector<std::string>> annotations;

  size_t size() const { return ids.size(); }

  /// \brief Concatenated surface string ("" separator for chars).
  std::string Text(const std::string& sep = "") const;
};

/// \brief A fixed-width collection of Records sharing one Vocab.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Vocab vocab, size_t ns) : vocab_(std::move(vocab)), ns_(ns) {}

  /// \brief Append a record, padding or truncating it to ns symbols.
  void Add(Record record);

  /// \brief Tokenize `text` into characters, pad/truncate, and append.
  void AddText(const std::string& text);

  size_t num_records() const { return records_.size(); }
  size_t ns() const { return ns_; }
  /// \brief Total number of symbols nd*ns.
  size_t num_symbols() const { return records_.size() * ns_; }

  const Record& record(size_t i) const { return records_[i]; }
  const std::vector<Record>& records() const { return records_; }
  const Vocab& vocab() const { return vocab_; }
  Vocab* mutable_vocab() { return &vocab_; }

  /// \brief Copy of records [begin, end) as a new dataset.
  Dataset Slice(size_t begin, size_t end) const;

 private:
  Vocab vocab_;
  size_t ns_ = 0;
  std::vector<Record> records_;
};

/// \brief Iterates a dataset in blocks of nb records, in shuffled record
/// order (paper §5.2.2: "Records on disk are assumed to have been shuffled
/// record-wise"). Deterministic given the seed.
class BlockIterator {
 public:
  BlockIterator(const Dataset* dataset, size_t block_size, uint64_t seed = 7,
                bool shuffle = true);

  /// \brief True if another block is available.
  bool HasNext() const { return pos_ < order_.size(); }

  /// \brief Indices of the records in the next block (<= block_size).
  std::vector<size_t> NextBlock();

  /// \brief Number of records already handed out.
  size_t records_consumed() const { return pos_; }

  void Reset();

 private:
  const Dataset* dataset_;
  size_t block_size_;
  uint64_t seed_;
  bool shuffle_;
  std::vector<size_t> order_;
  size_t pos_ = 0;
};

/// \brief Build a char-level dataset by sliding a window of `ns` symbols
/// with the given stride over each string in `texts` (paper §6.2: records
/// are windows of length ns with stride 5).
Dataset SlidingWindowDataset(const std::vector<std::string>& texts, size_t ns,
                             size_t stride);

}  // namespace deepbase
