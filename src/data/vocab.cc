#include "data/vocab.h"

#include "util/logging.h"

namespace deepbase {

Vocab::Vocab() { Add(kPadToken); }

int Vocab::Add(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  index_.emplace(token, id);
  return id;
}

int Vocab::Lookup(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? -1 : it->second;
}

int Vocab::LookupOrPad(const std::string& token) const {
  int id = Lookup(token);
  return id < 0 ? kPadId : id;
}

const std::string& Vocab::Token(int id) const {
  DB_DCHECK(id >= 0 && static_cast<size_t>(id) < tokens_.size());
  return tokens_[id];
}

Vocab Vocab::FromChars(const std::string& text) {
  Vocab v;
  for (char ch : text) v.Add(std::string(1, ch));
  return v;
}

Vocab Vocab::FromTokens(const std::vector<std::vector<std::string>>& docs) {
  Vocab v;
  for (const auto& doc : docs) {
    for (const auto& tok : doc) v.Add(tok);
  }
  return v;
}

}  // namespace deepbase
