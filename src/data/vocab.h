// Symbol vocabulary: bidirectional mapping between surface tokens
// (characters or words) and dense integer ids.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace deepbase {

/// \brief Token <-> id mapping with a reserved padding symbol at id 0.
///
/// Records in a Dataset are null-padded to a fixed length (paper §3); the
/// padding token is "~" by convention, matching the paper's Figure 1.
class Vocab {
 public:
  static constexpr int kPadId = 0;
  static constexpr const char* kPadToken = "~";

  Vocab();

  /// \brief Add a token if absent; returns its id either way.
  int Add(const std::string& token);

  /// \brief Id for token, or -1 if unknown.
  int Lookup(const std::string& token) const;

  /// \brief Id for token; unknown tokens map to the pad id.
  int LookupOrPad(const std::string& token) const;

  const std::string& Token(int id) const;

  size_t size() const { return tokens_.size(); }

  /// \brief Build a character-level vocab from the distinct chars of a text.
  static Vocab FromChars(const std::string& text);
  /// \brief Build a word-level vocab from tokenized sentences.
  static Vocab FromTokens(const std::vector<std::vector<std::string>>& docs);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace deepbase
