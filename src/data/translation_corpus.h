// Synthetic English->pseudo-German parallel corpus with gold part-of-speech
// tags and phrase-structure annotations.
//
// Substitutes for the WMT15 En-De corpus + Stanford CoreNLP tagging used in
// the paper's §6.3 experiments (see DESIGN.md). Sentences are sampled from a
// hand-written PCFG over a closed lexicon, so every token carries a Penn
// Treebank tag and every phrase span (NP/VP/PP) is known exactly. The target
// side applies a deterministic lexicon mapping plus SOV reordering, which
// gives the seq2seq model a real structure-dependent task to learn.

#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace deepbase {

/// \brief A parallel corpus: annotated source records + target id sequences.
struct TranslationCorpus {
  /// Word-level source sentences. Each record has annotation tracks:
  ///  - "pos": Penn tag per token ("" on padding)
  ///  - one binary track per phrase label ("NP", "VP", "PP"): "1" if the
  ///    token is inside such a phrase, else "0".
  Dataset source;
  /// Target (pseudo-German) sentences, padded to target_len with kPadId.
  std::vector<std::vector<int>> targets;
  Vocab target_vocab;
  size_t target_len = 0;
};

/// \brief The tags that the generator can emit, in a fixed order (used by
/// the per-tag precision experiments, Figure 11).
const std::vector<std::string>& TranslationTagset();

/// \brief Sample `n_sentences` parallel sentences. Source records are padded
/// to `ns` tokens. Deterministic in `seed`.
TranslationCorpus GenerateTranslationCorpus(size_t n_sentences, size_t ns,
                                            uint64_t seed);

}  // namespace deepbase
