// Vector-width abstraction for the cache-blocked kernels: a thin wrapper
// over std::experimental::simd, compiled in when the DEEPBASE_SIMD build
// option is on and the toolchain ships <experimental/simd>, with a scalar
// fallback otherwise. Kernels branch on DEEPBASE_SIMD_ENABLED; everything
// layout-related (lda padding, allocation alignment) is build-independent
// so the two modes share one in-memory format and one serialized format.
//
// Reduction-shape contract: SIMD kernels accumulate floating-point sums in
// fixed-width lanes (kDoubleLanes for moment sums), so within one build the
// result of a kernel is a deterministic function of its input block alone —
// the property the pairwise-tree shard merges rely on. The measure kernels
// (measures/independent.cc) map one vector LANE to one UNIT and walk rows
// in order, so their per-unit sums perform the same additions in the same
// order as the scalar fallback — bit-identical across SIMD and scalar
// builds, on top of being shard-count-invariant. Only kernels that reduce
// ACROSS lanes (Sum/Dot/Softmax in tensor/matrix.cc) re-associate relative
// to the scalar build; the kernels_equivalence test pins their documented
// ULP tolerance. Integer counting kernels are bit-identical everywhere.

#pragma once

#include <cstddef>
#include <cstdint>

#if defined(DEEPBASE_SIMD) && __has_include(<experimental/simd>)
#define DEEPBASE_SIMD_ENABLED 1
#include <experimental/simd>
#else
#define DEEPBASE_SIMD_ENABLED 0
#endif

namespace deepbase {
namespace vec {

/// Allocation alignment of every MemMatrixStore buffer (one cache line;
/// also the widest vector register on current x86).
inline constexpr size_t kByteAlign = 64;

/// Leading-dimension padding unit in floats: rows start on 64-byte
/// boundaries (16 floats), a multiple of every vector width up to AVX-512.
/// Build-independent so SIMD and scalar builds share one layout.
inline constexpr size_t kLdaFloats = kByteAlign / sizeof(float);

#if DEEPBASE_SIMD_ENABLED

namespace stdx = std::experimental;

/// Widest native float vector (16 lanes on AVX-512, 8 on AVX2, 4 on SSE).
using FloatV = stdx::native_simd<float>;
inline constexpr size_t kFloatLanes = FloatV::size();

/// Fixed-width double accumulator lanes for the moment-sum kernels. Fixed
/// (not native) so the reduction shape — and therefore every FP sum — is
/// identical across all SIMD builds regardless of host vector width.
inline constexpr size_t kDoubleLanes = 8;
using DoubleV = stdx::fixed_size_simd<double, kDoubleLanes>;
using FloatD = stdx::fixed_size_simd<float, kDoubleLanes>;

/// Fixed 16-float tiles for the integer counting kernels (one cache line).
inline constexpr size_t kCountLanes = kLdaFloats;
using FloatC = stdx::fixed_size_simd<float, kCountLanes>;
using CountV = stdx::fixed_size_simd<uint32_t, kCountLanes>;
using CountM = stdx::fixed_size_simd_mask<uint32_t, kCountLanes>;

/// Load kDoubleLanes floats at p and widen to double lanes.
inline DoubleV WidenLoad(const float* p) {
  FloatD f(p, stdx::element_aligned);
  return stdx::static_simd_cast<DoubleV>(f);
}

#else  // scalar fallback: the same constants so tile loops still compile.

inline constexpr size_t kFloatLanes = 1;
inline constexpr size_t kDoubleLanes = 1;
inline constexpr size_t kCountLanes = 1;

#endif  // DEEPBASE_SIMD_ENABLED

}  // namespace vec
}  // namespace deepbase
