// Dense row-major float32 matrix — the numeric substrate for the NN library
// and for behavior matrices ("skinny and tall" symbol × unit blocks).

#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepbase {

/// \brief Dense row-major matrix of floats.
///
/// Rows×cols with contiguous storage; behaviors, weights, and activations in
/// the rest of the library are all Matrix. A Vector is a 1×n or n×1 Matrix
/// by convention; free functions below operate generically.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// \brief Construct from nested initializer lists (row-major).
  Matrix(std::initializer_list<std::initializer_list<float>> init);

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0f);
  }
  static Matrix Identity(size_t n);
  /// \brief i.i.d. N(mean, stddev) entries.
  static Matrix RandomNormal(size_t rows, size_t cols, Rng* rng,
                             float mean = 0.0f, float stddev = 1.0f);
  /// \brief i.i.d. U[lo, hi) entries.
  static Matrix RandomUniform(size_t rows, size_t cols, Rng* rng, float lo,
                              float hi);
  /// \brief Glorot/Xavier uniform initialization for a fan_in×fan_out weight.
  static Matrix Glorot(size_t fan_in, size_t fan_out, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    DB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    DB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row_data(size_t r) { return data_.data() + r * cols_; }
  const float* row_data(size_t r) const { return data_.data() + r * cols_; }

  /// \brief Copy of row r as a 1×cols matrix.
  Matrix Row(size_t r) const;
  /// \brief Copy of column c as a rows×1 matrix.
  Matrix Col(size_t c) const;
  /// \brief Copy rows [begin, end) as a new matrix.
  Matrix RowSlice(size_t begin, size_t end) const;
  /// \brief Copy columns from `cols` (in order) into a new matrix.
  Matrix GatherCols(const std::vector<size_t>& cols) const;
  /// \brief Overwrite row r with the first cols() values of src.
  void SetRow(size_t r, const Matrix& src);

  /// \brief Stack `top` above `bottom`; column counts must match.
  static Matrix VStack(const Matrix& top, const Matrix& bottom);
  /// \brief Concatenate side by side; row counts must match.
  static Matrix HStack(const Matrix& left, const Matrix& right);

  Matrix Transpose() const;

  // Elementwise in-place ops (shapes must match).
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(float s);
  /// \brief Hadamard (elementwise) product in place.
  Matrix& HadamardInPlace(const Matrix& o);

  /// \brief Apply fn to every element, returning a new matrix.
  Matrix Apply(const std::function<float(float)>& fn) const;
  /// \brief Apply fn to every element in place.
  void ApplyInPlace(const std::function<float(float)>& fn);

  /// \brief Add a 1×cols row vector to every row (broadcast), in place.
  void AddRowBroadcast(const Matrix& row_vec);

  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  /// \brief Sum of squares of all entries.
  float SquaredNorm() const;
  /// \brief Column means as a 1×cols matrix.
  Matrix ColMeans() const;

  /// \brief Row-wise argmax indices.
  std::vector<size_t> ArgmaxRows() const;

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// \brief Reshape in place to rows×cols. Element values are unspecified
  /// afterwards; the backing capacity is reused across calls, so per-block
  /// scratch buffers (engine gather/hypothesis buffers) avoid reallocating.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  std::string ToString(int precision = 3) const;

  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// \brief Matrix product a×b (naive tiled GEMM). Shapes must agree.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// \brief a^T × b without materializing the transpose.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// \brief a × b^T without materializing the transpose.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, float s);
/// \brief Elementwise product.
Matrix Hadamard(Matrix a, const Matrix& b);

/// \brief Numerically stable row-wise softmax.
Matrix Softmax(const Matrix& logits);
/// \brief Elementwise logistic sigmoid.
Matrix Sigmoid(const Matrix& x);
/// \brief Elementwise tanh.
Matrix Tanh(const Matrix& x);
/// \brief Elementwise max(0, x).
Matrix Relu(const Matrix& x);

/// \brief Max absolute elementwise difference; matrices must share shape.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

/// \brief Binary serialization: rows, cols (u64 little-endian), then data.
void WriteMatrix(const Matrix& m, std::ostream* out);
/// \brief Inverse of WriteMatrix; Invalid on malformed input.
Result<Matrix> ReadMatrix(std::istream* in);

}  // namespace deepbase
