// Dense row-major float32 matrix — the numeric substrate for the NN library
// and for behavior matrices ("skinny and tall" symbol × unit blocks).
//
// Matrix is a value-semantics handle over a polymorphic MatrixStore tier
// (tensor/matrix_store.h): in-RAM stores carry an alignment-padded leading
// dimension (lda — rows start on 64-byte boundaries so kernels vectorize),
// mmap stores serve out-of-core behaviors straight from BehaviorStore
// files, and virtual stores are zero-copy/lazy views. Copying a writable
// matrix deep-copies (exactly the old std::vector semantics); copying a
// read-only tier (mmap, view) shares the store, and any mutating access
// first materializes a private padded copy.
//
// Addressing contract: element (r, c) lives at row_data(r)[c] with
// row_data(r) = base + r*lda(); the bytes between cols() and lda() of each
// row are padding that no kernel reads for logical values. There is no
// whole-matrix data() accessor — anything walking raw memory must go
// through row_data()/lda() (or check contiguous() first and treat row 0 as
// a flat span of size() floats).

#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/matrix_store.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepbase {

/// \brief Dense row-major matrix of floats over a tiered MatrixStore.
///
/// Rows×cols with per-row contiguous storage; behaviors, weights, and
/// activations in the rest of the library are all Matrix. A Vector is a
/// 1×n or n×1 Matrix by convention; free functions below operate
/// generically.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f);

  /// \brief Construct from nested initializer lists (row-major).
  Matrix(std::initializer_list<std::initializer_list<float>> init);

  /// \brief Adopt an existing store (e.g. an mmap tier handed out by
  /// BehaviorStore, or a virtual view).
  explicit Matrix(std::shared_ptr<MatrixStore> store);

  Matrix(const Matrix& o);
  Matrix& operator=(const Matrix& o);
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0f);
  }
  static Matrix Identity(size_t n);
  /// \brief i.i.d. N(mean, stddev) entries.
  static Matrix RandomNormal(size_t rows, size_t cols, Rng* rng,
                             float mean = 0.0f, float stddev = 1.0f);
  /// \brief i.i.d. U[lo, hi) entries.
  static Matrix RandomUniform(size_t rows, size_t cols, Rng* rng, float lo,
                              float hi);
  /// \brief Glorot/Xavier uniform initialization for a fan_in×fan_out weight.
  static Matrix Glorot(size_t fan_in, size_t fan_out, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// \brief Logical element count (rows*cols — never counts lda padding).
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  /// \brief Leading dimension: the float stride between consecutive rows.
  /// lda() >= cols(); in-RAM stores pad it to a cache-line multiple.
  size_t lda() const { return lda_; }
  /// \brief True when rows are adjacent in memory (lda == cols), so the
  /// whole matrix may be walked as one flat span of size() floats.
  bool contiguous() const { return lda_ == cols_ || rows_ <= 1; }

  float& operator()(size_t r, size_t c) {
    DB_DCHECK(r < rows_ && c < cols_);
    return wbase()[r * lda_ + c];
  }
  float operator()(size_t r, size_t c) const {
    DB_DCHECK(r < rows_ && c < cols_);
    return base()[r * lda_ + c];
  }

  const float* row_data(size_t r) const {
    DB_DCHECK(r < rows_);
    return base() + r * lda_;
  }
  float* row_data(size_t r) {
    DB_DCHECK(r < rows_);
    return wbase() + r * lda_;
  }

  /// \brief The backing tier ("mem", "mmap", "view") — diagnostics/tests.
  const char* tier() const { return store_ ? store_->tier() : "mem"; }
  std::shared_ptr<const MatrixStore> shared_store() const { return store_; }

  /// \brief Copy of row r as a 1×cols matrix.
  Matrix Row(size_t r) const;
  /// \brief Copy of column c as a rows×1 matrix.
  Matrix Col(size_t c) const;
  /// \brief Copy rows [begin, end) as a new matrix.
  Matrix RowSlice(size_t begin, size_t end) const;
  /// \brief Copy columns from `cols` (in order) into a new matrix.
  Matrix GatherCols(const std::vector<size_t>& cols) const;

  /// \brief Zero-copy view of rows [begin, end): aliases this matrix's
  /// storage (writes through the parent stay visible; parent Resize
  /// invalidates the view). The view itself is read-only — mutating it
  /// detaches a private copy first.
  Matrix RowSliceView(size_t begin, size_t end) const;
  /// \brief Lazy column gather: a zero-copy descriptor that materializes a
  /// padded copy only when an accessor first needs addressable data.
  Matrix GatherColsView(std::vector<size_t> cols) const;
  /// \brief Padded, writable in-memory deep copy (collapses views/mmap).
  Matrix Materialized() const;

  /// \brief Overwrite row r with the first cols() values of src (src must
  /// be contiguous — a row or column vector, or an unpadded matrix).
  void SetRow(size_t r, const Matrix& src);

  /// \brief Stack `top` above `bottom`; column counts must match.
  static Matrix VStack(const Matrix& top, const Matrix& bottom);
  /// \brief Concatenate side by side; row counts must match.
  static Matrix HStack(const Matrix& left, const Matrix& right);

  Matrix Transpose() const;

  // Elementwise in-place ops (shapes must match).
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(float s);
  /// \brief Hadamard (elementwise) product in place.
  Matrix& HadamardInPlace(const Matrix& o);

  /// \brief Apply fn to every element in place. Template on the callable:
  /// no per-element indirect call, and the loop body can inline.
  template <typename Fn>
  void ApplyInPlace(Fn&& fn) {
    if (empty()) return;
    float* base = wbase();
    if (contiguous()) {
      const size_t n = size();
      for (size_t i = 0; i < n; ++i) base[i] = fn(base[i]);
      return;
    }
    for (size_t r = 0; r < rows_; ++r) {
      float* row = base + r * lda_;
      for (size_t c = 0; c < cols_; ++c) row[c] = fn(row[c]);
    }
  }

  /// \brief Apply fn to every element, returning a new matrix.
  template <typename Fn>
  Matrix Apply(Fn&& fn) const {
    Matrix out = *this;
    out.ApplyInPlace(std::forward<Fn>(fn));
    return out;
  }

  /// \brief Add a 1×cols row vector to every row (broadcast), in place.
  void AddRowBroadcast(const Matrix& row_vec);

  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  /// \brief Sum of squares of all entries.
  float SquaredNorm() const;
  /// \brief Column means as a 1×cols matrix.
  Matrix ColMeans() const;

  /// \brief Row-wise argmax indices.
  std::vector<size_t> ArgmaxRows() const;

  void Fill(float v);

  /// \brief Reshape in place to rows×cols. Element values are unspecified
  /// afterwards; the backing capacity is reused across calls, so per-block
  /// scratch buffers (engine gather/hypothesis buffers) avoid reallocating.
  void Resize(size_t rows, size_t cols);

  std::string ToString(int precision = 3) const;

  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  const float* base() const {
    DB_DCHECK(store_ != nullptr);
    return store_->data();
  }
  float* wbase() {
    DB_DCHECK(store_ != nullptr);
    float* w = store_->mutable_data();
    if (w != nullptr) return w;
    DetachToMem();
    return store_->mutable_data();
  }
  /// \brief Replace a read-only store with a private padded copy.
  void DetachToMem();

  size_t rows_ = 0, cols_ = 0, lda_ = 0;
  std::shared_ptr<MatrixStore> store_;
};

/// \brief Matrix product a×b (cache-friendly i-k-j order, vectorized over
/// the output row when DEEPBASE_SIMD is on). Shapes must agree.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// \brief a^T × b without materializing the transpose.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// \brief a × b^T without materializing the transpose.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, float s);
/// \brief Elementwise product.
Matrix Hadamard(Matrix a, const Matrix& b);

/// \brief Numerically stable row-wise softmax.
Matrix Softmax(const Matrix& logits);
/// \brief Elementwise logistic sigmoid.
Matrix Sigmoid(const Matrix& x);
/// \brief Elementwise tanh.
Matrix Tanh(const Matrix& x);
/// \brief Elementwise max(0, x).
Matrix Relu(const Matrix& x);

/// \brief Max absolute elementwise difference; matrices must share shape.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

/// \brief Binary serialization: rows, cols (u64 little-endian), then the
/// logical rows×cols floats row by row — never the padded lda, so blobs
/// written by any build round-trip bit-identically with pre-padding blobs
/// and across builds with different vector widths.
void WriteMatrix(const Matrix& m, std::ostream* out);
/// \brief Inverse of WriteMatrix; Invalid on malformed input.
Result<Matrix> ReadMatrix(std::istream* in);

}  // namespace deepbase
