// Tiered storage backends behind Matrix (the FlashMatrix-style
// matrix_store / virtual_matrix_store / materialize split):
//
//   MemMatrixStore     in-RAM, 64-byte-aligned, leading dimension (lda)
//                      padded to a multiple of the SIMD width so every row
//                      starts on a cache-line boundary (the havok
//                      hk_Dense_Matrix layout).
//   MmapMatrixStore    read-only float payload mapped straight out of a
//                      BehaviorStore file — out-of-core matrices stream
//                      through the page cache instead of deserializing
//                      into RAM. Packed layout (lda == cols).
//   VirtualMatrixStore lazy views: a RowSlice is a zero-copy window into
//                      its parent (addressable immediately), a GatherCols
//                      is a descriptor that materializes a padded copy on
//                      first access.
//
// The store carries (rows, cols, lda) and hands out a base pointer; Matrix
// is a value-semantics handle on top (tensor/matrix.h). Stores never pad
// the *serialized* format: WriteMatrix/ReadMatrix and the BehaviorStore
// file layout are logical rows×cols, so blobs round-trip bit-identically
// across builds with different vector widths.

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace deepbase {

/// \brief Leading dimension for a padded in-memory row: cols rounded up to
/// a multiple of vec::kLdaFloats (16 floats = one cache line). Matrices of
/// at most one column stay packed — a single column is already a
/// contiguous, fully vectorizable array, and padding would multiply the
/// footprint of tall n×1 behavior vectors by 16.
size_t PaddedLda(size_t cols);

class MemMatrixStore;

/// \brief Abstract storage tier: (rows, cols, lda) plus a base pointer.
/// Element (r, c) lives at data()[r * lda() + c]; bytes between cols() and
/// lda() in each row are padding no kernel may read for logical values.
class MatrixStore {
 public:
  virtual ~MatrixStore() = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t lda() const { return lda_; }

  /// \brief Base pointer of the stored elements. Never null: deferred
  /// virtual stores materialize on first call (thread-safe, once).
  virtual const float* data() const = 0;

  /// \brief Writable base pointer, or nullptr for read-only tiers (mmap,
  /// views). Matrix copies-on-materialize before mutating those.
  virtual float* mutable_data() { return nullptr; }

  bool read_only() { return mutable_data() == nullptr; }

  /// \brief Tier name for diagnostics/tests: "mem", "mmap", "view".
  virtual const char* tier() const = 0;

  /// \brief Padded, writable in-memory copy of the logical rows×cols.
  virtual std::shared_ptr<MemMatrixStore> Materialize() const;

 protected:
  size_t rows_ = 0, cols_ = 0, lda_ = 0;
};

/// \brief Owning in-RAM tier: one 64-byte-aligned allocation of
/// rows × PaddedLda(cols) floats, zero-initialized (padding stays zero
/// until a caller writes through mutable_data()). Capacity is retained
/// across Resize so per-block scratch buffers never reallocate.
class MemMatrixStore final : public MatrixStore {
 public:
  MemMatrixStore(size_t rows, size_t cols);
  ~MemMatrixStore() override;

  MemMatrixStore(const MemMatrixStore&) = delete;
  MemMatrixStore& operator=(const MemMatrixStore&) = delete;

  const float* data() const override { return buf_; }
  float* mutable_data() override { return buf_; }
  const char* tier() const override { return "mem"; }
  std::shared_ptr<MemMatrixStore> Materialize() const override;

  /// \brief Reshape to rows×cols; element values are unspecified
  /// afterwards. Reuses the allocation when it is large enough.
  void Resize(size_t rows, size_t cols);

  size_t capacity_floats() const { return capacity_; }

 private:
  float* buf_ = nullptr;
  size_t capacity_ = 0;  // floats
};

/// \brief Read-only tier over a float payload mapped from a file. The
/// payload is the packed logical matrix (lda == cols) at a 64-byte-aligned
/// offset — the BehaviorStore v2 file format pads its header so this holds.
/// Unmaps on destruction; the kernel page cache does the streaming.
class MmapMatrixStore final : public MatrixStore {
 public:
  ~MmapMatrixStore() override;

  MmapMatrixStore(const MmapMatrixStore&) = delete;
  MmapMatrixStore& operator=(const MmapMatrixStore&) = delete;

  /// \brief Map `rows`×`cols` floats at byte `payload_offset` of `path`.
  /// Returns nullptr on I/O failure or if the file is too short.
  static std::shared_ptr<MmapMatrixStore> Map(const std::string& path,
                                              size_t payload_offset,
                                              size_t rows, size_t cols);

  const float* data() const override { return payload_; }
  const char* tier() const override { return "mmap"; }
  std::shared_ptr<MemMatrixStore> Materialize() const override;

  size_t mapped_bytes() const { return map_len_; }

 private:
  MmapMatrixStore() = default;

  void* map_base_ = nullptr;
  size_t map_len_ = 0;
  const float* payload_ = nullptr;
};

/// \brief Lazy view tier. RowSlice views alias their parent (zero-copy,
/// addressable immediately, lda inherited — mutations of the parent remain
/// visible, and parent Resize invalidates the view like an iterator).
/// GatherCols views are pure descriptors: data() materializes a padded
/// column-gathered copy on first call (guarded by std::once_flag, so
/// concurrent readers are safe) and serves it from then on.
class VirtualMatrixStore final : public MatrixStore {
 public:
  static std::shared_ptr<VirtualMatrixStore> RowSlice(
      std::shared_ptr<const MatrixStore> parent, size_t begin, size_t end);
  static std::shared_ptr<VirtualMatrixStore> GatherCols(
      std::shared_ptr<const MatrixStore> parent, std::vector<size_t> cols);

  const float* data() const override;
  const char* tier() const override { return "view"; }
  std::shared_ptr<MemMatrixStore> Materialize() const override;

  bool deferred() const { return kind_ == Kind::kGatherCols; }

 private:
  enum class Kind { kRowSlice, kGatherCols };

  VirtualMatrixStore() = default;
  void MaterializeGather() const;

  Kind kind_ = Kind::kRowSlice;
  std::shared_ptr<const MatrixStore> parent_;
  size_t row_begin_ = 0;
  std::vector<size_t> gather_cols_;

  mutable std::once_flag gather_once_;
  mutable std::shared_ptr<MemMatrixStore> gathered_;
  mutable std::atomic<const float*> gathered_data_{nullptr};
};

}  // namespace deepbase
