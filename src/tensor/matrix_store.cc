#include "tensor/matrix_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <new>

#include "tensor/simd.h"
#include "util/logging.h"

namespace deepbase {

size_t PaddedLda(size_t cols) {
  if (cols <= 1) return cols;
  return (cols + vec::kLdaFloats - 1) / vec::kLdaFloats * vec::kLdaFloats;
}

std::shared_ptr<MemMatrixStore> MatrixStore::Materialize() const {
  auto out = std::make_shared<MemMatrixStore>(rows_, cols_);
  const float* src = data();
  float* dst = out->mutable_data();
  for (size_t r = 0; r < rows_; ++r) {
    std::memcpy(dst + r * out->lda(), src + r * lda_, cols_ * sizeof(float));
  }
  return out;
}

// ------------------------------------------------------------------- Mem

MemMatrixStore::MemMatrixStore(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  lda_ = PaddedLda(cols);
  capacity_ = rows_ * lda_;
  if (capacity_ > 0) {
    buf_ = static_cast<float*>(
        ::operator new(capacity_ * sizeof(float), std::align_val_t(vec::kByteAlign)));
    std::memset(buf_, 0, capacity_ * sizeof(float));
  }
}

MemMatrixStore::~MemMatrixStore() {
  if (buf_ != nullptr) {
    ::operator delete(buf_, std::align_val_t(vec::kByteAlign));
  }
}

std::shared_ptr<MemMatrixStore> MemMatrixStore::Materialize() const {
  auto out = std::make_shared<MemMatrixStore>(rows_, cols_);
  if (capacity_ > 0) {
    std::memcpy(out->buf_, buf_, rows_ * lda_ * sizeof(float));
  }
  return out;
}

void MemMatrixStore::Resize(size_t rows, size_t cols) {
  const size_t new_lda = PaddedLda(cols);
  const size_t needed = rows * new_lda;
  if (needed > capacity_) {
    float* fresh = static_cast<float*>(
        ::operator new(needed * sizeof(float), std::align_val_t(vec::kByteAlign)));
    std::memset(fresh, 0, needed * sizeof(float));
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t(vec::kByteAlign));
    }
    buf_ = fresh;
    capacity_ = needed;
  }
  rows_ = rows;
  cols_ = cols;
  lda_ = new_lda;
}

// ------------------------------------------------------------------ Mmap

MmapMatrixStore::~MmapMatrixStore() {
  if (map_base_ != nullptr) munmap(map_base_, map_len_);
}

std::shared_ptr<MmapMatrixStore> MmapMatrixStore::Map(const std::string& path,
                                                      size_t payload_offset,
                                                      size_t rows,
                                                      size_t cols) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return nullptr;
  }
  const size_t payload_bytes = rows * cols * sizeof(float);
  const size_t needed = payload_offset + payload_bytes;
  if (static_cast<size_t>(st.st_size) < needed) {
    ::close(fd);
    return nullptr;
  }
  void* base = nullptr;
  if (needed > 0) {
    base = mmap(nullptr, needed, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return nullptr;
    }
  }
  ::close(fd);  // the mapping keeps its own reference
  auto store = std::shared_ptr<MmapMatrixStore>(new MmapMatrixStore());
  store->rows_ = rows;
  store->cols_ = cols;
  store->lda_ = cols;  // packed file layout
  store->map_base_ = base;
  store->map_len_ = needed;
  store->payload_ = reinterpret_cast<const float*>(
      static_cast<const char*>(base) + payload_offset);
  return store;
}

std::shared_ptr<MemMatrixStore> MmapMatrixStore::Materialize() const {
  return MatrixStore::Materialize();
}

// --------------------------------------------------------------- Virtual

std::shared_ptr<VirtualMatrixStore> VirtualMatrixStore::RowSlice(
    std::shared_ptr<const MatrixStore> parent, size_t begin, size_t end) {
  DB_DCHECK(parent != nullptr && begin <= end && end <= parent->rows());
  auto store = std::shared_ptr<VirtualMatrixStore>(new VirtualMatrixStore());
  store->kind_ = Kind::kRowSlice;
  store->rows_ = end - begin;
  store->cols_ = parent->cols();
  store->lda_ = parent->lda();
  store->row_begin_ = begin;
  store->parent_ = std::move(parent);
  return store;
}

std::shared_ptr<VirtualMatrixStore> VirtualMatrixStore::GatherCols(
    std::shared_ptr<const MatrixStore> parent, std::vector<size_t> cols) {
  DB_DCHECK(parent != nullptr);
  auto store = std::shared_ptr<VirtualMatrixStore>(new VirtualMatrixStore());
  store->kind_ = Kind::kGatherCols;
  store->rows_ = parent->rows();
  store->cols_ = cols.size();
  store->lda_ = PaddedLda(cols.size());
  store->gather_cols_ = std::move(cols);
  store->parent_ = std::move(parent);
  return store;
}

const float* VirtualMatrixStore::data() const {
  if (kind_ == Kind::kRowSlice) {
    return parent_->data() + row_begin_ * parent_->lda();
  }
  const float* cached = gathered_data_.load(std::memory_order_acquire);
  if (cached != nullptr) return cached;
  MaterializeGather();
  return gathered_data_.load(std::memory_order_acquire);
}

void VirtualMatrixStore::MaterializeGather() const {
  std::call_once(gather_once_, [this] {
    auto out = std::make_shared<MemMatrixStore>(rows_, cols_);
    const float* src = parent_->data();
    const size_t src_lda = parent_->lda();
    float* dst = out->mutable_data();
    const size_t dst_lda = out->lda();
    for (size_t r = 0; r < rows_; ++r) {
      const float* srow = src + r * src_lda;
      float* drow = dst + r * dst_lda;
      for (size_t j = 0; j < gather_cols_.size(); ++j) {
        DB_DCHECK(gather_cols_[j] < parent_->cols());
        drow[j] = srow[gather_cols_[j]];
      }
    }
    gathered_ = std::move(out);
    gathered_data_.store(gathered_->data(), std::memory_order_release);
  });
}

std::shared_ptr<MemMatrixStore> VirtualMatrixStore::Materialize() const {
  return MatrixStore::Materialize();
}

}  // namespace deepbase
