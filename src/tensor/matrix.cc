#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace deepbase {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    DB_DCHECK(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, Rng* rng, float mean,
                            float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng->Normal(mean, stddev));
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Rng* rng, float lo,
                             float hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng->Uniform(lo, hi));
  return m;
}

Matrix Matrix::Glorot(size_t fan_in, size_t fan_out, Rng* rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform(fan_in, fan_out, rng, -limit, limit);
}

Matrix Matrix::Row(size_t r) const {
  DB_DCHECK(r < rows_);
  Matrix out(1, cols_);
  std::memcpy(out.data(), row_data(r), cols_ * sizeof(float));
  return out;
}

Matrix Matrix::Col(size_t c) const {
  DB_DCHECK(c < cols_);
  Matrix out(rows_, 1);
  for (size_t r = 0; r < rows_; ++r) out(r, 0) = (*this)(r, c);
  return out;
}

Matrix Matrix::RowSlice(size_t begin, size_t end) const {
  DB_DCHECK(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  std::memcpy(out.data(), data_.data() + begin * cols_,
              (end - begin) * cols_ * sizeof(float));
  return out;
}

Matrix Matrix::GatherCols(const std::vector<size_t>& cols) const {
  Matrix out(rows_, cols.size());
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = row_data(r);
    float* dst = out.row_data(r);
    for (size_t j = 0; j < cols.size(); ++j) {
      DB_DCHECK(cols[j] < cols_);
      dst[j] = src[cols[j]];
    }
  }
  return out;
}

void Matrix::SetRow(size_t r, const Matrix& src) {
  DB_DCHECK(r < rows_ && src.size() >= cols_);
  std::memcpy(row_data(r), src.data(), cols_ * sizeof(float));
}

Matrix Matrix::VStack(const Matrix& top, const Matrix& bottom) {
  if (top.empty()) return bottom;
  if (bottom.empty()) return top;
  DB_DCHECK(top.cols() == bottom.cols());
  Matrix out(top.rows() + bottom.rows(), top.cols());
  std::memcpy(out.data(), top.data(), top.size() * sizeof(float));
  std::memcpy(out.data() + top.size(), bottom.data(),
              bottom.size() * sizeof(float));
  return out;
}

Matrix Matrix::HStack(const Matrix& left, const Matrix& right) {
  if (left.empty()) return right;
  if (right.empty()) return left;
  DB_DCHECK(left.rows() == right.rows());
  Matrix out(left.rows(), left.cols() + right.cols());
  for (size_t r = 0; r < left.rows(); ++r) {
    std::memcpy(out.row_data(r), left.row_data(r), left.cols() * sizeof(float));
    std::memcpy(out.row_data(r) + left.cols(), right.row_data(r),
                right.cols() * sizeof(float));
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  DB_DCHECK(SameShape(o));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  DB_DCHECK(SameShape(o));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::HadamardInPlace(const Matrix& o) {
  DB_DCHECK(SameShape(o));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= o.data_[i];
  return *this;
}

Matrix Matrix::Apply(const std::function<float(float)>& fn) const {
  Matrix out = *this;
  out.ApplyInPlace(fn);
  return out;
}

void Matrix::ApplyInPlace(const std::function<float(float)>& fn) {
  for (auto& v : data_) v = fn(v);
}

void Matrix::AddRowBroadcast(const Matrix& row_vec) {
  DB_DCHECK(row_vec.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    float* dst = row_data(r);
    const float* src = row_vec.data();
    for (size_t c = 0; c < cols_; ++c) dst[c] += src[c];
  }
}

float Matrix::Sum() const {
  double s = 0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Matrix::Mean() const {
  return data_.empty() ? 0.0f : Sum() / static_cast<float>(data_.size());
}

float Matrix::Min() const {
  float m = std::numeric_limits<float>::infinity();
  for (float v : data_) m = std::min(m, v);
  return m;
}

float Matrix::Max() const {
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data_) m = std::max(m, v);
  return m;
}

float Matrix::SquaredNorm() const {
  double s = 0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

Matrix Matrix::ColMeans() const {
  Matrix out(1, cols_);
  if (rows_ == 0) return out;
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = row_data(r);
    for (size_t c = 0; c < cols_; ++c) out(0, c) += src[c];
  }
  out *= 1.0f / static_cast<float>(rows_);
  return out;
}

std::vector<size_t> Matrix::ArgmaxRows() const {
  std::vector<size_t> out(rows_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = row_data(r);
    size_t best = 0;
    for (size_t c = 1; c < cols_; ++c) {
      if (src[c] > src[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed;
  out << "[" << rows_ << "x" << cols_ << "]\n";
  for (size_t r = 0; r < std::min<size_t>(rows_, 8); ++r) {
    for (size_t c = 0; c < std::min<size_t>(cols_, 12); ++c) {
      out << (*this)(r, c) << " ";
    }
    if (cols_ > 12) out << "...";
    out << "\n";
  }
  if (rows_ > 8) out << "...\n";
  return out.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  // i-k-j loop order: streams through b and out row-wise (cache friendly).
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row_data(i);
    float* orow = out.row_data(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.row_data(kk);
      for (size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row_data(i);
    const float* brow = b.row_data(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* orow = out.row_data(kk);
      for (size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row_data(i);
    float* orow = out.row_data(i);
    for (size_t j = 0; j < m; ++j) {
      const float* brow = b.row_data(j);
      double acc = 0;
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}
Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}
Matrix operator*(Matrix a, float s) {
  a *= s;
  return a;
}
Matrix Hadamard(Matrix a, const Matrix& b) {
  a.HadamardInPlace(b);
  return a;
}

Matrix Softmax(const Matrix& logits) {
  Matrix out = logits;
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row_data(r);
    float mx = row[0];
    for (size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, row[c]);
    double total = 0;
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      total += row[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t c = 0; c < out.cols(); ++c) row[c] *= inv;
  }
  return out;
}

Matrix Sigmoid(const Matrix& x) {
  return x.Apply([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Matrix Tanh(const Matrix& x) {
  return x.Apply([](float v) { return std::tanh(v); });
}

Matrix Relu(const Matrix& x) {
  return x.Apply([](float v) { return v > 0 ? v : 0.0f; });
}

void WriteMatrix(const Matrix& m, std::ostream* out) {
  const uint64_t rows = m.rows(), cols = m.cols();
  out->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out->write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Result<Matrix> ReadMatrix(std::istream* in) {
  uint64_t rows = 0, cols = 0;
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!*in) return Status::Invalid("truncated matrix header");
  if (rows * cols > (uint64_t{1} << 32)) {
    return Status::Invalid("implausible matrix dimensions");
  }
  Matrix m(rows, cols);
  in->read(reinterpret_cast<char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!*in) return Status::Invalid("truncated matrix data");
  return m;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.SameShape(b));
  float m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace deepbase
