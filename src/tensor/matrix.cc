#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "tensor/simd.h"

namespace deepbase {

namespace {

// ------------------------------------------------------------------------
// Span kernels: each walks one logical row (or a whole contiguous matrix
// as a single span). SIMD main loop + scalar tail when DEEPBASE_SIMD is
// on; plain scalar loops otherwise.
// ------------------------------------------------------------------------

#if DEEPBASE_SIMD_ENABLED
namespace stdx = vec::stdx;
using vec::DoubleV;
using vec::FloatV;
#endif

inline void AddSpan(float* d, const float* s, size_t n) {
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  for (; i + FloatV::size() <= n; i += FloatV::size()) {
    FloatV dv(d + i, stdx::element_aligned);
    FloatV sv(s + i, stdx::element_aligned);
    (dv + sv).copy_to(d + i, stdx::element_aligned);
  }
#endif
  for (; i < n; ++i) d[i] += s[i];
}

inline void SubSpan(float* d, const float* s, size_t n) {
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  for (; i + FloatV::size() <= n; i += FloatV::size()) {
    FloatV dv(d + i, stdx::element_aligned);
    FloatV sv(s + i, stdx::element_aligned);
    (dv - sv).copy_to(d + i, stdx::element_aligned);
  }
#endif
  for (; i < n; ++i) d[i] -= s[i];
}

inline void MulSpan(float* d, const float* s, size_t n) {
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  for (; i + FloatV::size() <= n; i += FloatV::size()) {
    FloatV dv(d + i, stdx::element_aligned);
    FloatV sv(s + i, stdx::element_aligned);
    (dv * sv).copy_to(d + i, stdx::element_aligned);
  }
#endif
  for (; i < n; ++i) d[i] *= s[i];
}

inline void ScaleSpan(float* d, float s, size_t n) {
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  const FloatV sv(s);
  for (; i + FloatV::size() <= n; i += FloatV::size()) {
    FloatV dv(d + i, stdx::element_aligned);
    (dv * sv).copy_to(d + i, stdx::element_aligned);
  }
#endif
  for (; i < n; ++i) d[i] *= s;
}

// d[i] += a * s[i] — the GEMM inner row update.
inline void AddScaledSpan(float* d, const float* s, float a, size_t n) {
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  const FloatV av(a);
  for (; i + FloatV::size() <= n; i += FloatV::size()) {
    FloatV dv(d + i, stdx::element_aligned);
    FloatV sv(s + i, stdx::element_aligned);
    (dv + av * sv).copy_to(d + i, stdx::element_aligned);
  }
#endif
  for (; i < n; ++i) d[i] += a * s[i];
}

inline double SumSpan(const float* s, size_t n) {
  double acc = 0;
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  DoubleV accv(0.0);
  for (; i + vec::kDoubleLanes <= n; i += vec::kDoubleLanes) {
    accv += vec::WidenLoad(s + i);
  }
  acc = stdx::reduce(accv);
#endif
  for (; i < n; ++i) acc += s[i];
  return acc;
}

inline double SumSqSpan(const float* s, size_t n) {
  double acc = 0;
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  DoubleV accv(0.0);
  for (; i + vec::kDoubleLanes <= n; i += vec::kDoubleLanes) {
    const DoubleV v = vec::WidenLoad(s + i);
    accv += v * v;
  }
  acc = stdx::reduce(accv);
#endif
  for (; i < n; ++i) acc += static_cast<double>(s[i]) * s[i];
  return acc;
}

inline double DotSpan(const float* a, const float* b, size_t n) {
  double acc = 0;
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  DoubleV accv(0.0);
  for (; i + vec::kDoubleLanes <= n; i += vec::kDoubleLanes) {
    accv += vec::WidenLoad(a + i) * vec::WidenLoad(b + i);
  }
  acc = stdx::reduce(accv);
#endif
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

inline float MinSpan(const float* s, size_t n, float init) {
  float m = init;
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  if (n >= FloatV::size()) {
    FloatV mv(s, stdx::element_aligned);
    for (i = FloatV::size(); i + FloatV::size() <= n; i += FloatV::size()) {
      mv = stdx::min(mv, FloatV(s + i, stdx::element_aligned));
    }
    m = std::min(m, stdx::hmin(mv));
  }
#endif
  for (; i < n; ++i) m = std::min(m, s[i]);
  return m;
}

inline float MaxSpan(const float* s, size_t n, float init) {
  float m = init;
  size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
  if (n >= FloatV::size()) {
    FloatV mv(s, stdx::element_aligned);
    for (i = FloatV::size(); i + FloatV::size() <= n; i += FloatV::size()) {
      mv = stdx::max(mv, FloatV(s + i, stdx::element_aligned));
    }
    m = std::max(m, stdx::hmax(mv));
  }
#endif
  for (; i < n; ++i) m = std::max(m, s[i]);
  return m;
}

// Iterate the logical elements of (dst, src) pairs row by row, collapsing
// to one flat span when both sides are contiguous.
template <typename F>
inline void ForEachPairSpan(Matrix* dst, const Matrix& src, F f) {
  if (dst->empty()) return;
  if (dst->contiguous() && src.contiguous()) {
    f(dst->row_data(0), src.row_data(0), dst->size());
    return;
  }
  for (size_t r = 0; r < dst->rows(); ++r) {
    f(dst->row_data(r), src.row_data(r), dst->cols());
  }
}

template <typename F>
inline void ForEachConstSpan(const Matrix& m, F f) {
  if (m.empty()) return;
  if (m.contiguous()) {
    f(m.row_data(0), m.size());
    return;
  }
  for (size_t r = 0; r < m.rows(); ++r) f(m.row_data(r), m.cols());
}

template <typename F>
inline void ForEachMutSpan(Matrix* m, F f) {
  if (m->empty()) return;
  if (m->contiguous()) {
    f(m->row_data(0), m->size());
    return;
  }
  for (size_t r = 0; r < m->rows(); ++r) f(m->row_data(r), m->cols());
}

}  // namespace

Matrix::Matrix(size_t rows, size_t cols, float fill) {
  rows_ = rows;
  cols_ = cols;
  if (size() > 0) {
    auto store = std::make_shared<MemMatrixStore>(rows, cols);
    lda_ = store->lda();
    store_ = std::move(store);
    if (fill != 0.0f) Fill(fill);
  } else {
    lda_ = cols;
  }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  if (size() == 0) {
    lda_ = cols_;
    return;
  }
  auto store = std::make_shared<MemMatrixStore>(rows_, cols_);
  lda_ = store->lda();
  float* dst = store->mutable_data();
  size_t r = 0;
  for (const auto& row : init) {
    DB_DCHECK(row.size() == cols_);
    std::copy(row.begin(), row.end(), dst + r * lda_);
    ++r;
  }
  store_ = std::move(store);
}

Matrix::Matrix(std::shared_ptr<MatrixStore> store) {
  DB_DCHECK(store != nullptr);
  rows_ = store->rows();
  cols_ = store->cols();
  lda_ = store->lda();
  store_ = std::move(store);
}

Matrix::Matrix(const Matrix& o) : rows_(o.rows_), cols_(o.cols_), lda_(o.lda_) {
  if (o.store_ == nullptr) return;
  if (o.store_->mutable_data() != nullptr) {
    // Writable mem store: deep copy — plain value semantics, and the two
    // handles never alias.
    auto copy = o.store_->Materialize();
    lda_ = copy->lda();
    store_ = std::move(copy);
  } else {
    // Read-only tier (mmap, view): share the store; any mutating access on
    // either handle detaches a private copy first.
    store_ = o.store_;
  }
}

Matrix& Matrix::operator=(const Matrix& o) {
  if (this != &o) {
    Matrix tmp(o);
    *this = std::move(tmp);
  }
  return *this;
}

void Matrix::DetachToMem() {
  DB_DCHECK(store_ != nullptr);
  auto copy = store_->Materialize();
  lda_ = copy->lda();
  store_ = std::move(copy);
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, Rng* rng, float mean,
                            float stddev) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* row = m.row_data(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng->Normal(mean, stddev));
    }
  }
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Rng* rng, float lo,
                             float hi) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* row = m.row_data(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng->Uniform(lo, hi));
    }
  }
  return m;
}

Matrix Matrix::Glorot(size_t fan_in, size_t fan_out, Rng* rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform(fan_in, fan_out, rng, -limit, limit);
}

Matrix Matrix::Row(size_t r) const {
  DB_DCHECK(r < rows_);
  Matrix out(1, cols_);
  std::memcpy(out.row_data(0), row_data(r), cols_ * sizeof(float));
  return out;
}

Matrix Matrix::Col(size_t c) const {
  DB_DCHECK(c < cols_);
  Matrix out(rows_, 1);
  const float* src = base();
  float* dst = out.row_data(0);  // n×1 is packed (lda == 1)
  for (size_t r = 0; r < rows_; ++r) dst[r] = src[r * lda_ + c];
  return out;
}

Matrix Matrix::RowSlice(size_t begin, size_t end) const {
  DB_DCHECK(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  for (size_t r = begin; r < end; ++r) {
    std::memcpy(out.row_data(r - begin), row_data(r), cols_ * sizeof(float));
  }
  return out;
}

Matrix Matrix::GatherCols(const std::vector<size_t>& cols) const {
  Matrix out(rows_, cols.size());
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = row_data(r);
    float* dst = out.row_data(r);
    for (size_t j = 0; j < cols.size(); ++j) {
      DB_DCHECK(cols[j] < cols_);
      dst[j] = src[cols[j]];
    }
  }
  return out;
}

Matrix Matrix::RowSliceView(size_t begin, size_t end) const {
  DB_DCHECK(store_ != nullptr && begin <= end && end <= rows_);
  return Matrix(VirtualMatrixStore::RowSlice(store_, begin, end));
}

Matrix Matrix::GatherColsView(std::vector<size_t> cols) const {
  DB_DCHECK(store_ != nullptr);
  return Matrix(VirtualMatrixStore::GatherCols(store_, std::move(cols)));
}

Matrix Matrix::Materialized() const {
  if (store_ == nullptr) return *this;
  return Matrix(store_->Materialize());
}

void Matrix::SetRow(size_t r, const Matrix& src) {
  DB_DCHECK(r < rows_ && src.size() >= cols_ && src.contiguous());
  std::memcpy(row_data(r), src.row_data(0), cols_ * sizeof(float));
}

Matrix Matrix::VStack(const Matrix& top, const Matrix& bottom) {
  if (top.empty()) return bottom;
  if (bottom.empty()) return top;
  DB_DCHECK(top.cols() == bottom.cols());
  Matrix out(top.rows() + bottom.rows(), top.cols());
  const size_t cols = top.cols();
  for (size_t r = 0; r < top.rows(); ++r) {
    std::memcpy(out.row_data(r), top.row_data(r), cols * sizeof(float));
  }
  for (size_t r = 0; r < bottom.rows(); ++r) {
    std::memcpy(out.row_data(top.rows() + r), bottom.row_data(r),
                cols * sizeof(float));
  }
  return out;
}

Matrix Matrix::HStack(const Matrix& left, const Matrix& right) {
  if (left.empty()) return right;
  if (right.empty()) return left;
  DB_DCHECK(left.rows() == right.rows());
  Matrix out(left.rows(), left.cols() + right.cols());
  for (size_t r = 0; r < left.rows(); ++r) {
    std::memcpy(out.row_data(r), left.row_data(r),
                left.cols() * sizeof(float));
    std::memcpy(out.row_data(r) + left.cols(), right.row_data(r),
                right.cols() * sizeof(float));
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  if (empty()) return out;
  const float* src = base();
  float* dst = out.row_data(0);
  const size_t out_lda = out.lda();
  for (size_t r = 0; r < rows_; ++r) {
    const float* srow = src + r * lda_;
    for (size_t c = 0; c < cols_; ++c) dst[c * out_lda + r] = srow[c];
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  DB_DCHECK(SameShape(o));
  ForEachPairSpan(this, o, [](float* d, const float* s, size_t n) {
    AddSpan(d, s, n);
  });
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  DB_DCHECK(SameShape(o));
  ForEachPairSpan(this, o, [](float* d, const float* s, size_t n) {
    SubSpan(d, s, n);
  });
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  if (empty()) return *this;
  if (contiguous()) {
    ScaleSpan(row_data(0), s, size());
  } else {
    for (size_t r = 0; r < rows_; ++r) ScaleSpan(row_data(r), s, cols_);
  }
  return *this;
}

Matrix& Matrix::HadamardInPlace(const Matrix& o) {
  DB_DCHECK(SameShape(o));
  ForEachPairSpan(this, o, [](float* d, const float* s, size_t n) {
    MulSpan(d, s, n);
  });
  return *this;
}

void Matrix::AddRowBroadcast(const Matrix& row_vec) {
  DB_DCHECK(row_vec.size() == cols_ && row_vec.contiguous());
  if (empty()) return;
  const float* src = row_vec.row_data(0);
  for (size_t r = 0; r < rows_; ++r) AddSpan(row_data(r), src, cols_);
}

float Matrix::Sum() const {
  double s = 0;
  ForEachConstSpan(*this, [&](const float* p, size_t n) { s += SumSpan(p, n); });
  return static_cast<float>(s);
}

float Matrix::Mean() const {
  return empty() ? 0.0f : Sum() / static_cast<float>(size());
}

float Matrix::Min() const {
  float m = std::numeric_limits<float>::infinity();
  ForEachConstSpan(*this,
                   [&](const float* p, size_t n) { m = MinSpan(p, n, m); });
  return m;
}

float Matrix::Max() const {
  float m = -std::numeric_limits<float>::infinity();
  ForEachConstSpan(*this,
                   [&](const float* p, size_t n) { m = MaxSpan(p, n, m); });
  return m;
}

float Matrix::SquaredNorm() const {
  double s = 0;
  ForEachConstSpan(*this,
                   [&](const float* p, size_t n) { s += SumSqSpan(p, n); });
  return static_cast<float>(s);
}

Matrix Matrix::ColMeans() const {
  Matrix out(1, cols_);
  if (rows_ == 0 || cols_ == 0) return out;
  float* acc = out.row_data(0);
  for (size_t r = 0; r < rows_; ++r) AddSpan(acc, row_data(r), cols_);
  ScaleSpan(acc, 1.0f / static_cast<float>(rows_), cols_);
  return out;
}

std::vector<size_t> Matrix::ArgmaxRows() const {
  std::vector<size_t> out(rows_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = row_data(r);
    size_t best = 0;
    for (size_t c = 1; c < cols_; ++c) {
      if (src[c] > src[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

void Matrix::Fill(float v) {
  if (empty()) return;
  if (contiguous()) {
    std::fill_n(row_data(0), size(), v);
    return;
  }
  for (size_t r = 0; r < rows_; ++r) std::fill_n(row_data(r), cols_, v);
}

void Matrix::Resize(size_t rows, size_t cols) {
  if (rows * cols == 0) {
    rows_ = rows;
    cols_ = cols;
    lda_ = cols;
    store_.reset();
    return;
  }
  auto* mem = dynamic_cast<MemMatrixStore*>(store_.get());
  if (mem != nullptr && mem->mutable_data() != nullptr) {
    mem->Resize(rows, cols);
  } else {
    // Read-only or absent backing: element values are unspecified after
    // Resize, so a fresh store is equivalent (and detaches any view).
    auto fresh = std::make_shared<MemMatrixStore>(rows, cols);
    store_ = std::move(fresh);
  }
  rows_ = rows;
  cols_ = cols;
  lda_ = store_->lda();
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed;
  out << "[" << rows_ << "x" << cols_ << "]\n";
  for (size_t r = 0; r < std::min<size_t>(rows_, 8); ++r) {
    for (size_t c = 0; c < std::min<size_t>(cols_, 12); ++c) {
      out << (*this)(r, c) << " ";
    }
    if (cols_ > 12) out << "...";
    out << "\n";
  }
  if (rows_ > 8) out << "...\n";
  return out.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  // i-k-j loop order: streams through b and out row-wise (cache friendly);
  // the inner row update vectorizes as one fused span op.
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row_data(i);
    float* orow = out.row_data(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      AddScaledSpan(orow, b.row_data(kk), av, m);
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.row_data(i);
    const float* brow = b.row_data(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      AddScaledSpan(out.row_data(kk), brow, av, m);
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const size_t k = a.cols(), m = b.rows();
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_data(i);
    float* orow = out.row_data(i);
    for (size_t j = 0; j < m; ++j) {
      orow[j] = static_cast<float>(DotSpan(arow, b.row_data(j), k));
    }
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}
Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}
Matrix operator*(Matrix a, float s) {
  a *= s;
  return a;
}
Matrix Hadamard(Matrix a, const Matrix& b) {
  a.HadamardInPlace(b);
  return a;
}

Matrix Softmax(const Matrix& logits) {
  Matrix out = logits;
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row_data(r);
    const size_t c_count = out.cols();
    const float mx = MaxSpan(row, c_count, -std::numeric_limits<float>::infinity());
    size_t c = 0;
#if DEEPBASE_SIMD_ENABLED
    const FloatV mxv(mx);
    for (; c + FloatV::size() <= c_count; c += FloatV::size()) {
      FloatV v(row + c, stdx::element_aligned);
      stdx::exp(v - mxv).copy_to(row + c, stdx::element_aligned);
    }
#endif
    for (; c < c_count; ++c) row[c] = std::exp(row[c] - mx);
    const double total = SumSpan(row, c_count);
    ScaleSpan(row, static_cast<float>(1.0 / total), c_count);
  }
  return out;
}

Matrix Sigmoid(const Matrix& x) {
  Matrix out = x;
  ForEachMutSpan(&out, [](float* p, size_t n) {
    size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
    const FloatV one(1.0f);
    for (; i + FloatV::size() <= n; i += FloatV::size()) {
      FloatV v(p + i, stdx::element_aligned);
      (one / (one + stdx::exp(-v))).copy_to(p + i, stdx::element_aligned);
    }
#endif
    for (; i < n; ++i) p[i] = 1.0f / (1.0f + std::exp(-p[i]));
  });
  return out;
}

Matrix Tanh(const Matrix& x) {
  Matrix out = x;
  ForEachMutSpan(&out, [](float* p, size_t n) {
    size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
    for (; i + FloatV::size() <= n; i += FloatV::size()) {
      FloatV v(p + i, stdx::element_aligned);
      stdx::tanh(v).copy_to(p + i, stdx::element_aligned);
    }
#endif
    for (; i < n; ++i) p[i] = std::tanh(p[i]);
  });
  return out;
}

Matrix Relu(const Matrix& x) {
  Matrix out = x;
  ForEachMutSpan(&out, [](float* p, size_t n) {
    size_t i = 0;
#if DEEPBASE_SIMD_ENABLED
    const FloatV zero(0.0f);
    for (; i + FloatV::size() <= n; i += FloatV::size()) {
      FloatV v(p + i, stdx::element_aligned);
      stdx::max(v, zero).copy_to(p + i, stdx::element_aligned);
    }
#endif
    for (; i < n; ++i) p[i] = p[i] > 0 ? p[i] : 0.0f;
  });
  return out;
}

void WriteMatrix(const Matrix& m, std::ostream* out) {
  const uint64_t rows = m.rows(), cols = m.cols();
  out->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  // Logical rows×cols only — lda padding never reaches the serialized
  // format, so blobs are identical across builds with different widths.
  for (uint64_t r = 0; r < rows; ++r) {
    out->write(reinterpret_cast<const char*>(m.row_data(r)),
               static_cast<std::streamsize>(cols * sizeof(float)));
  }
}

Result<Matrix> ReadMatrix(std::istream* in) {
  uint64_t rows = 0, cols = 0;
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!*in) return Status::Invalid("truncated matrix header");
  if (rows * cols > (uint64_t{1} << 32)) {
    return Status::Invalid("implausible matrix dimensions");
  }
  Matrix m(rows, cols);
  for (uint64_t r = 0; r < rows && cols > 0; ++r) {
    in->read(reinterpret_cast<char*>(m.row_data(r)),
             static_cast<std::streamsize>(cols * sizeof(float)));
  }
  if (!*in) return Status::Invalid("truncated matrix data");
  return m;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  DB_DCHECK(a.SameShape(b));
  float m = 0;
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* pa = a.row_data(r);
    const float* pb = b.row_data(r);
    for (size_t c = 0; c < a.cols(); ++c) {
      m = std::max(m, std::fabs(pa[c] - pb[c]));
    }
  }
  return m;
}

}  // namespace deepbase
