// Deterministic random number generation. All randomness in the library
// flows through Rng so that experiments, tests, and benchmarks are exactly
// reproducible from a seed.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace deepbase {

/// \brief xoshiro256** PRNG seeded through SplitMix64.
///
/// Small, fast, and high-quality; a single Rng instance is not thread-safe,
/// use Rng::Split() to derive independent per-thread streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
  }

  /// \brief Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// \brief Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// \brief Uniform integer in [lo, hi).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo)));
  }

  /// \brief Standard normal via Box-Muller.
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    double r = std::sqrt(-2.0 * std::log(u1));
    cached_ = r * std::sin(2.0 * M_PI * u2);
    has_cached_ = true;
    return r * std::cos(2.0 * M_PI * u2);
  }

  /// \brief Normal with given mean and stddev.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// \brief Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// \brief Sample an index from unnormalized non-negative weights.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = Uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// \brief Derive an independent child stream (for worker threads).
  Rng Split() { return Rng(Next() ^ 0xA3EC4E93D0B4C123ull); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  double cached_ = 0;
  bool has_cached_ = false;
};

}  // namespace deepbase
