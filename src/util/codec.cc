#include "util/codec.h"

#include <algorithm>
#include <bit>

namespace deepbase {
namespace codec {

void Writer::U16(uint16_t v) {
  U8(static_cast<uint8_t>(v));
  U8(static_cast<uint8_t>(v >> 8));
}

void Writer::U32(uint32_t v) {
  U16(static_cast<uint16_t>(v));
  U16(static_cast<uint16_t>(v >> 16));
}

void Writer::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v));
  U32(static_cast<uint32_t>(v >> 32));
}

void Writer::F32(float v) { U32(std::bit_cast<uint32_t>(v)); }
void Writer::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void Writer::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void Writer::StrList(const std::vector<std::string>& v) {
  U32(static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) Str(s);
}

bool Reader::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t Reader::U16() {
  const uint16_t lo = U8();
  const uint16_t hi = U8();
  return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t Reader::U32() {
  const uint32_t lo = U16();
  const uint32_t hi = U16();
  return lo | (hi << 16);
}

uint64_t Reader::U64() {
  const uint64_t lo = U32();
  const uint64_t hi = U32();
  return lo | (hi << 32);
}

float Reader::F32() { return std::bit_cast<float>(U32()); }
double Reader::F64() { return std::bit_cast<double>(U64()); }

std::string Reader::Str() {
  const uint32_t n = U32();
  if (!Need(n)) return {};
  std::string out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::vector<std::string> Reader::StrList() {
  const uint32_t n = U32();
  std::vector<std::string> out;
  // Cap the reserve by what could physically fit, so a corrupt count
  // cannot force a huge allocation before the bounds check trips.
  out.reserve(std::min<size_t>(n, data_.size() / 4 + 1));
  for (uint32_t i = 0; i < n && ok(); ++i) out.push_back(Str());
  return out;
}

}  // namespace codec
}  // namespace deepbase
