#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace deepbase {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void CheckOk(const Status& st, const char* file, int line) {
  if (st.ok()) return;
  std::fprintf(stderr, "%s:%d: DB_CHECK_OK failed: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace deepbase
