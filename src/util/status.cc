#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace deepbase {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

// Wire values follow the gRPC/absl numbering where a counterpart exists
// (so dashboards and humans recognize them); codes without one (kIOError)
// sit above 100, clear of future upstream assignments. These values are
// the protocol contract — append, never renumber.
uint16_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kCancelled:
      return 1;
    case StatusCode::kInvalidArgument:
      return 3;
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kNotFound:
      return 5;
    case StatusCode::kAlreadyExists:
      return 6;
    case StatusCode::kResourceExhausted:
      return 8;
    case StatusCode::kOutOfRange:
      return 11;
    case StatusCode::kNotImplemented:
      return 12;
    case StatusCode::kInternal:
      return 13;
    case StatusCode::kUnavailable:
      return 14;
    case StatusCode::kDataLoss:
      return 15;
    case StatusCode::kIOError:
      return 101;
  }
  return 13;  // unknown enumerator -> Internal
}

StatusCode StatusCodeFromWire(uint16_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kCancelled;
    case 3:
      return StatusCode::kInvalidArgument;
    case 4:
      return StatusCode::kDeadlineExceeded;
    case 5:
      return StatusCode::kNotFound;
    case 6:
      return StatusCode::kAlreadyExists;
    case 8:
      return StatusCode::kResourceExhausted;
    case 11:
      return StatusCode::kOutOfRange;
    case 12:
      return StatusCode::kNotImplemented;
    case 13:
      return StatusCode::kInternal;
    case 14:
      return StatusCode::kUnavailable;
    case 15:
      return StatusCode::kDataLoss;
    case 101:
      return StatusCode::kIOError;
    default:
      return StatusCode::kInternal;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void CheckOk(const Status& st, const char* file, int line) {
  if (st.ok()) return;
  std::fprintf(stderr, "%s:%d: DB_CHECK_OK failed: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace deepbase
