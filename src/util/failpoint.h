// Named failpoints for deterministic fault injection. A failpoint is a
// site in production code (`DB_FAILPOINT("store.blob.read")`) that does
// nothing until a test arms it with an Action — return a typed error,
// inject a delay, fire from the Nth hit on, fire at most K times, or
// fire probabilistically from a seeded deterministic PRNG. The disarmed
// fast path is a single relaxed atomic load (no lock, no map lookup), so
// sites are safe on hot paths; arming is a test-only operation and takes
// a registry mutex.
//
// Sites live in functions returning Status or Result<T>; the macro
// injects by returning from the enclosing function, exactly as if the
// guarded operation had failed. The catalog of wired sites is documented
// in README.md ("Failure model, deadlines & degradation").

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepbase {
namespace failpoint {

/// \brief What an armed failpoint does on each hit.
struct Action {
  /// Error injected when the point fires. kOk = delay-only site (sleep,
  /// then pass through).
  StatusCode code = StatusCode::kInternal;
  /// Appended to the injected error's "failpoint <name>" message.
  std::string message;
  /// Sleep applied on every firing hit, before the error (if any).
  double delay_s = 0;
  /// Pass through this many hits before the point starts firing
  /// ("trigger on nth hit": skip = n - 1).
  uint64_t skip = 0;
  /// Stop firing after this many fires; later hits pass through.
  uint64_t max_fires = UINT64_MAX;
  /// Chance that an eligible hit fires; drawn from a deterministic PRNG
  /// seeded with `seed`, so a fault schedule replays exactly.
  double probability = 1.0;
  uint64_t seed = 0;
};

/// \brief True when at least one failpoint is armed anywhere. Relaxed
/// atomic load; the DB_FAILPOINT macro gates on this so disarmed builds
/// never touch the registry.
bool Armed();

/// \brief Evaluate a site. OK when the site is disarmed or this hit
/// passes through; otherwise the injected error. May sleep (delay_s).
Status Evaluate(const char* name);

/// \brief Arm (or re-arm, resetting counters) a site by name.
void Arm(const std::string& name, Action action);

/// \brief Disarm one site / every site. Counters are discarded.
void Disarm(const std::string& name);
void DisarmAll();

/// \brief Hits observed by an armed site (including pass-throughs) and
/// the subset that fired. Zero for disarmed sites.
uint64_t Hits(const std::string& name);
uint64_t Fires(const std::string& name);

/// \brief Names of all currently armed sites (for test diagnostics).
std::vector<std::string> ArmedSites();

}  // namespace failpoint
}  // namespace deepbase

/// Site marker: evaluates the named failpoint and, if it injects an
/// error, returns it from the enclosing function (which must return
/// Status or Result<T>). Disarmed cost: one relaxed atomic load.
#define DB_FAILPOINT(name)                                               \
  do {                                                                   \
    if (::deepbase::failpoint::Armed()) {                                \
      ::deepbase::Status _db_fp_st = ::deepbase::failpoint::Evaluate(name); \
      if (!_db_fp_st.ok()) return _db_fp_st;                             \
    }                                                                    \
  } while (false)
