// Status and Result<T> error-handling primitives, following the
// Arrow/RocksDB idiom: no exceptions on hot paths, explicit propagation
// through DB_RETURN_NOT_OK / DB_ASSIGN_OR_RETURN.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace deepbase {

/// \brief Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kNotImplemented,
  kInternal,
  kIOError,
  kDataLoss,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
  kDeadlineExceeded,
};

/// \brief Canonical name of a status code ("InvalidArgument", "NotFound",
/// ...). Matches the factory-function names; used by Status::ToString and
/// the network layer, so every surface stringifies codes identically.
const char* StatusCodeName(StatusCode code);

/// \brief Stable on-the-wire value of a status code (server/wire.h frames
/// carry these, never raw enum values, so the enum may be reordered
/// without breaking protocol compatibility). Round-trips exactly:
/// StatusCodeFromWire(StatusCodeToWire(c)) == c for every enumerator.
uint16_t StatusCodeToWire(StatusCode code);
/// \brief Inverse of StatusCodeToWire; unknown wire values (a newer or
/// corrupt peer) decode as kInternal rather than aborting.
StatusCode StatusCodeFromWire(uint16_t wire);

/// \brief Outcome of an operation: OK or an error code with a message.
///
/// Cheap to copy in the OK case (no allocation); error details are stored
/// out-of-line. Modeled after arrow::Status.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Human-readable "CODE: message" string.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value or an error Status, modeled after arrow::Result.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, as in Arrow.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Access the value. Undefined behaviour if !ok().
  const T& ValueOrDie() const& { return *value_; }
  T& ValueOrDie() & { return *value_; }
  T ValueOrDie() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// \brief Move the value out, or return a default if this is an error.
  T ValueOr(T default_value) && {
    return ok() ? std::move(*value_) : std::move(default_value);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

#define DB_CONCAT_IMPL(x, y) x##y
#define DB_CONCAT(x, y) DB_CONCAT_IMPL(x, y)

/// Propagate a non-OK Status to the caller.
#define DB_RETURN_NOT_OK(expr)              \
  do {                                      \
    ::deepbase::Status _st = (expr);        \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Evaluate a Result<T> expression; on error return its Status, otherwise
/// bind the value to `lhs`.
#define DB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define DB_ASSIGN_OR_RETURN(lhs, rexpr) \
  DB_ASSIGN_OR_RETURN_IMPL(DB_CONCAT(_result_, __LINE__), lhs, rexpr)

/// Abort the process if `expr` is not OK. For use in tests, examples, and
/// benchmark drivers where errors are programming bugs.
#define DB_CHECK_OK(expr) ::deepbase::internal::CheckOk((expr), __FILE__, __LINE__)

namespace internal {
void CheckOk(const Status& st, const char* file, int line);
}  // namespace internal

}  // namespace deepbase
