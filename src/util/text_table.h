// Console/CSV table rendering used by the benchmark harness to print the
// rows/series that each paper figure reports.

#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace deepbase {

/// \brief A small textual table: header row + string cells.
///
/// Supports aligned console printing and CSV export; numeric cells are
/// formatted by the caller via AddRow's double overloads.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// \brief Format a double with the given precision (fixed).
  static std::string Num(double v, int precision = 4);

  /// \brief Render with padded columns, suitable for terminal output.
  std::string ToString() const;

  /// \brief RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string ToCsv() const;

  /// \brief Write the CSV form to a file.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepbase
