// Bounds-checked little-endian byte-string codec primitives. Extracted
// from server/wire.h so layers below the serving stack (measure-state
// serialization in src/measures, the cluster partial-state path) can
// encode/decode without depending on the wire protocol's catalog types.
// server/wire.h re-exports these as wire::Writer / wire::Reader, so the
// encoded bytes are exactly the wire payload format.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace deepbase {
namespace codec {

/// \brief Appends primitives to a byte string.
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F32(float v);
  void F64(double v);
  /// Length-prefixed (u32) byte string.
  void Str(const std::string& s);
  void StrList(const std::vector<std::string>& v);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Reads primitives back; any out-of-bounds read latches !ok() and
/// every subsequent Get returns zero values, so decoders can check once
/// at the end (the RocksDB Slice idiom).
class Reader {
 public:
  explicit Reader(const std::string& bytes) : data_(bytes) {}
  // A Reader is a view: the buffer must outlive it, so a temporary
  // (e.g. `Reader(s.substr(...))`) is a use-after-free, not a decode.
  explicit Reader(std::string&&) = delete;

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  float F32();
  double F64();
  std::string Str();
  std::vector<std::string> StrList();

  bool ok() const { return ok_; }
  /// True when the whole payload was consumed (trailing garbage is a
  /// protocol error for fixed-shape messages).
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n);
  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace codec
}  // namespace deepbase
