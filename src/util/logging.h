// Lightweight leveled logging and assertion macros.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace deepbase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const char* expr);

}  // namespace internal

#define DB_LOG(level)                                                     \
  ::deepbase::internal::LogMessage(::deepbase::LogLevel::k##level, __FILE__, \
                                   __LINE__)

/// Hard invariant check; aborts on failure. Used for programmer errors, not
/// user-input validation (which returns Status).
#define DB_DCHECK(expr)                                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::deepbase::internal::FatalCheckFailure(__FILE__, __LINE__, #expr); \
  } while (false)

}  // namespace deepbase
