#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace deepbase {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t nt = num_threads();
  if (nt <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(n, nt * 4);
  std::atomic<size_t> next_chunk{0};
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  const size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    futs.push_back(Submit([&, per_chunk, n] {
      for (;;) {
        size_t chunk = next_chunk.fetch_add(1);
        size_t begin = chunk * per_chunk;
        if (begin >= n) return;
        size_t end = std::min(n, begin + per_chunk);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace deepbase
