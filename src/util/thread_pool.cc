#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace deepbase {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t nt = num_threads();
  if (nt <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared claim/completion state. Heap-allocated and captured by value so
  // helper tasks that only get scheduled after the call returned (because
  // the caller drained every item itself) find a valid, finished state
  // instead of dangling stack references.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first failure, guarded by mu
  };
  auto shared = std::make_shared<Shared>();
  shared->n = n;
  shared->fn = &fn;  // outlives all claims: the caller blocks on `done`
  // The worker never throws: a failing item is captured (first one wins)
  // and still counted in `done`, so the caller can neither hang on a
  // swallowed helper exception nor unwind while helpers are mid-item.
  auto worker = [shared] {
    for (;;) {
      const size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared->n) return;
      try {
        (*shared->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mu);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shared->n) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->cv.notify_all();
      }
    }
  };
  // Fire-and-forget helpers: idle workers accelerate the loop; busy ones
  // (or helpers scheduled too late) see next >= n and return immediately.
  const size_t helpers = std::min(nt, n - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(worker);
  // The caller always participates, so progress never depends on a free
  // pool thread — nested ParallelFor from inside a pool task cannot
  // deadlock.
  worker();
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&shared] {
    return shared->done.load(std::memory_order_acquire) >= shared->n;
  });
  if (shared->error) std::rethrow_exception(shared->error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace deepbase
