#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "util/logging.h"

namespace deepbase {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    DB_DCHECK(bounds_[i] < bounds_[i + 1]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value ('le' semantics);
  // past the last bound lands in the implicit +Inf bucket.
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(bits) + value;
    if (sum_bits_.compare_exchange_weak(bits, std::bit_cast<uint64_t>(updated),
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snap());
  }
  return snap;
}

std::vector<double> DefaultLatencyBounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0,
          30.0,   60.0};
}

namespace {

// "deepbase_jobs_total{status=\"ok\"}" -> "deepbase_jobs_total".
std::string FamilyOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

void AppendTypeHeader(std::string* out, std::string* last_family,
                      const std::string& name, const char* type) {
  const std::string family = FamilyOf(name);
  if (family != *last_family) {
    *out += "# TYPE " + family + " " + type + "\n";
    *last_family = family;
  }
}

std::string FormatDouble(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& [name, value] : snapshot.counters) {
    AppendTypeHeader(&out, &last_family, name, "counter");
    out += name + " " + std::to_string(value) + "\n";
  }
  last_family.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    AppendTypeHeader(&out, &last_family, name, "gauge");
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    // Histogram names carry no baked-in labels (the brace is reserved for
    // the le= bucket label), so the family is the name itself.
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      const std::string le = i < hist.bounds.size()
                                 ? FormatDouble(hist.bounds[i])
                                 : std::string("+Inf");
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + FormatDouble(hist.sum) + "\n";
    out += name + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(&out, name);
    out += "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(&out, name);
    out += "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(&out, name);
    out += "\": {\"count\": " + std::to_string(hist.count) +
           ", \"sum\": " + FormatDouble(hist.sum) + ", \"buckets\": [";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(hist.counts[i]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace deepbase
