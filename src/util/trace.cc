#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <random>
#include <utility>

namespace deepbase {

namespace {

// Per-process id seed: span/trace ids must be unique across the
// coordinator and every worker whose spans it imports. A random 64-bit
// start plus a monotonic counter makes cross-process collisions
// negligible without any coordination.
std::atomic<uint64_t>& IdCounter() {
  static std::atomic<uint64_t> counter = [] {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    if (seed == 0) seed = 0x9e3779b97f4a7c15ull;
    return std::atomic<uint64_t>(seed);
  }();
  return counter;
}

uint64_t NextId() {
  // Odd stride keeps the sequence nonrepeating over the full 64-bit
  // period; skip 0 (the "no parent" sentinel).
  uint64_t id = IdCounter().fetch_add(0x9e3779b97f4a7c15ull,
                                      std::memory_order_relaxed);
  return id != 0 ? id : 1;
}

}  // namespace

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NewTraceId() { return NextId(); }

uint64_t NewSpanId() { return NextId(); }

Tracer::Tracer(uint64_t trace_id, size_t capacity)
    : trace_id_(trace_id), capacity_(std::max<size_t>(capacity, 1)) {}

void Tracer::Record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() < capacity_) {
    spans_.push_back(std::move(span));
    return;
  }
  spans_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::Import(const std::vector<TraceSpan>& spans, int64_t offset_ns) {
  for (const TraceSpan& remote : spans) {
    TraceSpan local = remote;
    local.start_ns += offset_ns;
    Record(std::move(local));
  }
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  return out;
}

size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string FormatSpanLogLine(uint64_t trace_id, const TraceSpan& span,
                              int64_t trace_start_ns) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace=%016" PRIx64 " span=%016" PRIx64
                " parent=%016" PRIx64 " name=%s start_ms=%.3f dur_ms=%.3f",
                trace_id, span.span_id, span.parent_id, span.name.c_str(),
                static_cast<double>(span.start_ns - trace_start_ns) * 1e-6,
                static_cast<double>(span.duration_ns) * 1e-6);
  std::string line(buf);
  if (!span.tags.empty()) {
    line += " tags=";
    line += span.tags;
  }
  return line;
}

}  // namespace deepbase
