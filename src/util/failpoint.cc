#include "util/failpoint.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/rng.h"

namespace deepbase {
namespace failpoint {

namespace {

struct Site {
  Action action;
  Rng rng{0};
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all sites
  return *registry;
}

// Armed-site count, readable without the registry mutex.
std::atomic<uint64_t> g_armed{0};

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::Invalid(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(msg));
    case StatusCode::kIOError:
      return Status::IOError(std::move(msg));
    case StatusCode::kDataLoss:
      return Status::DataLoss(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

}  // namespace

bool Armed() { return g_armed.load(std::memory_order_relaxed) != 0; }

void Arm(const std::string& name, Action action) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Site site;
  site.rng = Rng(action.seed);
  site.action = std::move(action);
  auto [it, inserted] = registry.sites.insert_or_assign(name, std::move(site));
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.sites.erase(name) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed.fetch_sub(registry.sites.size(), std::memory_order_relaxed);
  registry.sites.clear();
}

Status Evaluate(const char* name) {
  double delay_s = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  {
    Registry& registry = TheRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(name);
    if (it == registry.sites.end()) return Status::OK();
    Site& site = it->second;
    const uint64_t hit = site.hits++;
    if (hit < site.action.skip) return Status::OK();
    if (site.fires >= site.action.max_fires) return Status::OK();
    if (site.action.probability < 1.0 &&
        !site.rng.Bernoulli(site.action.probability)) {
      return Status::OK();
    }
    ++site.fires;
    delay_s = site.action.delay_s;
    code = site.action.code;
    message = site.action.message;
  }
  // Sleep off the registry lock so a delay site never serializes
  // unrelated failpoint evaluations.
  if (delay_s > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
  }
  if (code == StatusCode::kOk) return Status::OK();
  std::string msg = "failpoint ";
  msg += name;
  if (!message.empty()) {
    msg += ": ";
    msg += message;
  }
  return MakeStatus(code, std::move(msg));
}

uint64_t Hits(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

uint64_t Fires(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> ArmedSites() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.sites.size());
  for (const auto& [name, site] : registry.sites) names.push_back(name);
  return names;
}

}  // namespace failpoint
}  // namespace deepbase
