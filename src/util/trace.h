// Lightweight span tracing for end-to-end job diagnostics.
//
// A Tracer is a per-job ring buffer of TraceSpans. Every span carries the
// 64-bit id of its parent, so the recorded set reassembles into a tree:
// scheduler queue/admission phases, engine extract/score lanes,
// coordinator dispatch hops, and worker-side pipeline spans all hang off
// one root, under one trace id that travels across the wire (Submit and
// Assign frames). Span ids are process-unique and seeded per process, so
// spans imported from a worker cannot collide with the coordinator's.
//
// Timestamps are steady_clock nanoseconds (TraceNowNs) — the same
// relative-time philosophy as deadline propagation: clocks never cross
// hosts. Import() re-anchors a remote process's spans with a caller-
// computed offset before stitching them into the local tree.
//
// Instrumentation sites use the DB_SPAN RAII macro on a local
// TraceContext. The scope rebinds ctx.parent_span to itself for its
// lifetime, so nested DB_SPANs in the same call tree parent naturally:
//
//   TraceContext ctx{options.tracer, options.trace_parent_span};
//   DB_SPAN(ctx, "engine.inspect");
//   ...                           // children recorded under this span
//
// A null tracer disables everything at runtime (the scope records
// nothing). Compiling with -DDEEPBASE_TRACE_DISABLED replaces the scope
// with an empty type, so DB_SPAN is a guaranteed no-op — the zero-
// overhead path the bench-regression criterion holds against.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace deepbase {

/// \brief One recorded span. start_ns is steady_clock time of the
/// recording process (re-anchored by Tracer::Import when crossing hosts).
struct TraceSpan {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root of the trace
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  /// Free-form "key=value" pairs, comma-separated (shard=3,worker=w1).
  std::string tags;
};

/// \brief steady_clock now, in nanoseconds (the internal clock unit of
/// every timing in the stack; seconds exist only at render time).
int64_t TraceNowNs();

/// \brief Fresh nonzero 64-bit trace id (process-seeded, collision-safe
/// across processes for any realistic job count).
uint64_t NewTraceId();

/// \brief Fresh process-unique span id. Seeded per process so worker
/// spans imported into a coordinator trace cannot collide.
uint64_t NewSpanId();

/// \brief Per-job span sink: a bounded ring buffer (oldest spans are
/// dropped once capacity is hit — a trace is a diagnostic, not an audit
/// log). Thread-safe: lanes and the scheduler record concurrently.
class Tracer {
 public:
  explicit Tracer(uint64_t trace_id, size_t capacity = 256);

  uint64_t trace_id() const { return trace_id_; }

  /// \brief Append one finished span (ring semantics at capacity).
  void Record(TraceSpan span);

  /// \brief Stitch spans recorded by another process into this trace,
  /// shifting their timestamps by `offset_ns` (remote clocks never cross
  /// hosts raw; the caller anchors the remote root to a local event).
  void Import(const std::vector<TraceSpan>& spans, int64_t offset_ns);

  /// \brief Snapshot of the recorded spans, ordered by start time.
  std::vector<TraceSpan> Spans() const;

  /// \brief Spans lost to the ring bound (0 in any healthy trace).
  size_t dropped() const;

 private:
  const uint64_t trace_id_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;  ///< ring; next_ is the overwrite cursor
  size_t next_ = 0;
  size_t dropped_ = 0;
};

/// \brief The propagation unit: who records, and under which parent.
/// Carried by InspectOptions through the scheduler, engine, and cluster
/// layers; both fields are local-only (never serialized — the wire
/// carries trace/parent *ids*, and each process owns its Tracer).
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t parent_span = 0;

  bool enabled() const { return tracer != nullptr; }
};

#if !defined(DEEPBASE_TRACE_DISABLED)

/// \brief RAII span: binds itself as ctx.parent_span for its lifetime
/// (restoring on destruction) and records the finished span into the
/// tracer. No-op when ctx.tracer is null.
class SpanScope {
 public:
  SpanScope(TraceContext* ctx, const char* name)
      : ctx_(ctx->tracer != nullptr ? ctx : nullptr) {
    if (ctx_ == nullptr) return;
    span_.span_id = NewSpanId();
    span_.parent_id = ctx_->parent_span;
    span_.name = name;
    span_.start_ns = TraceNowNs();
    saved_parent_ = ctx_->parent_span;
    ctx_->parent_span = span_.span_id;
  }

  ~SpanScope() {
    if (ctx_ == nullptr) return;
    span_.duration_ns = TraceNowNs() - span_.start_ns;
    ctx_->parent_span = saved_parent_;
    ctx_->tracer->Record(std::move(span_));
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// \brief Attach a "key=value" tag to the span.
  void Tag(const char* key, const std::string& value) {
    if (ctx_ == nullptr) return;
    if (!span_.tags.empty()) span_.tags += ',';
    span_.tags += key;
    span_.tags += '=';
    span_.tags += value;
  }
  void Tag(const char* key, uint64_t value) {
    Tag(key, std::to_string(value));
  }

  uint64_t id() const { return ctx_ != nullptr ? span_.span_id : 0; }

 private:
  TraceContext* ctx_;
  uint64_t saved_parent_ = 0;
  TraceSpan span_;
};

#else  // DEEPBASE_TRACE_DISABLED

/// \brief Compile-time kill switch: an empty scope the optimizer erases
/// entirely (tests static_assert on std::is_empty).
class SpanScope {
 public:
  SpanScope(TraceContext*, const char*) {}
  void Tag(const char*, const std::string&) {}
  void Tag(const char*, uint64_t) {}
  uint64_t id() const { return 0; }
};

#endif  // DEEPBASE_TRACE_DISABLED

#define DB_SPAN_CONCAT_INNER(a, b) a##b
#define DB_SPAN_CONCAT(a, b) DB_SPAN_CONCAT_INNER(a, b)

/// \brief Open an RAII span named `name` under `ctx` for the rest of the
/// enclosing scope. `ctx` must be a mutable TraceContext lvalue.
#define DB_SPAN(ctx, name) \
  ::deepbase::SpanScope DB_SPAN_CONCAT(db_span_, __LINE__)(&(ctx), (name))

/// \brief Same, but names the scope variable so tags can be attached:
/// DB_SPAN_NAMED(span, ctx, "coord.dispatch"); span.Tag("worker", id);
#define DB_SPAN_NAMED(var, ctx, name) \
  ::deepbase::SpanScope var(&(ctx), (name))

/// \brief Render one span as the structured "key=value" log line the
/// slow-job log emits (span= parent= name= start_ms= dur_ms= tags=).
std::string FormatSpanLogLine(uint64_t trace_id, const TraceSpan& span,
                              int64_t trace_start_ns);

}  // namespace deepbase
