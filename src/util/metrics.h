// Process-global metrics registry: named counters, gauges, and
// fixed-bucket latency histograms, rendered as Prometheus text or JSON
// (the kMetrics wire request and inspect_server's --metrics-dump).
//
// Design contract:
//   - Registration (MetricsRegistry::*) takes a mutex once; hot sites
//     cache the returned handle (pointers are stable for the registry's
//     lifetime, and the global registry never dies).
//   - The hot path is lock-free: one relaxed atomic add per counter hit,
//     one relaxed add + a CAS double-sum per histogram observation.
//   - Labels are baked into the metric name ('deepbase_jobs_total
//     {status="ok"}'); the Prometheus renderer groups name families by
//     the text before '{' when emitting # TYPE headers.
//
// The registry complements — never replaces — the per-job RuntimeStats /
// SchedulerStats structs: those answer "what did THIS job cost", the
// registry answers "what is the process doing over time".

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace deepbase {

/// \brief Monotonic counter. Inc is one relaxed atomic add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed value (queue depths, active jobs).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram with Prometheus 'le' semantics: bucket i
/// counts observations <= bounds[i]; one implicit +Inf bucket catches the
/// rest. Observe is a relaxed add into one bucket plus a CAS loop on the
/// double-valued sum.
class Histogram {
 public:
  /// Bounds must be strictly ascending (checked with DB_DCHECK).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;    ///< upper bounds, +Inf excluded
    std::vector<uint64_t> counts;  ///< per-bucket (non-cumulative),
                                   ///< bounds.size() + 1 entries
    uint64_t count = 0;            ///< total observations
    double sum = 0;                ///< sum of observed values
  };
  Snapshot Snap() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  ///< double, CAS-updated
};

/// \brief Point-in-time view of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// \brief The registry. Use Global() for the process-wide instance;
/// separate instances exist only so tests can isolate themselves.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by full name (labels included). Returned pointers are
  /// stable until the registry is destroyed.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// A re-request under the same name returns the existing histogram and
  /// ignores `bounds` (first registration wins).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief Default latency buckets (seconds): 100us .. ~100s, log-spaced
/// — wide enough for cached sub-millisecond answers and multi-second
/// distributed runs in one histogram.
std::vector<double> DefaultLatencyBounds();

/// \brief Prometheus text exposition (one # TYPE per name family,
/// cumulative _bucket/_sum/_count for histograms).
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// \brief The same snapshot as a JSON object.
std::string RenderJson(const MetricsSnapshot& snapshot);

}  // namespace deepbase
