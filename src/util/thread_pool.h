// Fixed-size thread pool. In this reproduction the pool stands in for the
// paper's GPU execution path: it provides batch-parallel unit extraction and
// merged-model training (see DESIGN.md, substitution table).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deepbase {

/// \brief A minimal fixed-size thread pool with a ParallelFor convenience.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueue a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> fn);

  /// \brief Run fn(i) for i in [0, n), blocking until all complete.
  ///
  /// Work is chunked to limit queueing overhead. Safe to call with n == 0.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace deepbase
