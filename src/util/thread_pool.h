// Fixed-size thread pool. In this reproduction the pool stands in for the
// paper's GPU execution path: it provides batch-parallel unit extraction and
// merged-model training (see DESIGN.md, substitution table).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deepbase {

/// \brief A minimal fixed-size thread pool with a ParallelFor convenience.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueue a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> fn);

  /// \brief Run fn(i) for i in [0, n), blocking until all complete.
  ///
  /// Cooperative: the calling thread claims and runs items alongside the
  /// pool workers, so ParallelFor may safely be issued from *inside* a pool
  /// task (e.g. an async inspection job fanning its block loop out over the
  /// session pool). Even with every worker busy, the caller alone drains
  /// the items — the pool can never deadlock on nested fan-out, and
  /// concurrent jobs share idle capacity on a first-come basis while each
  /// keeps its own calling thread as a guaranteed budget. Safe with n == 0.
  /// If fn throws, the remaining items still run to completion and the
  /// first exception is rethrown on the calling thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace deepbase
