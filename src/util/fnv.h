// FNV-1a hashing and fixed-width hex rendering, shared by the behavior
// store's file naming and the scheduler's request/cache-key fingerprints.
// The two sides must agree on these functions — scheduler blob keys
// (ResultCacheBlobKey) are hashed into store file names (PathForBlob) —
// so there is exactly one definition.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace deepbase {

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t Fnv1a(const void* data, size_t bytes,
                      uint64_t seed = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// \brief 16-digit lowercase hex of a 64-bit value.
inline std::string HexU64(uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace deepbase
