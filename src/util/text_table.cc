#include "util/text_table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace deepbase {

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 2 * widths.size();
  for (size_t w : widths) total += w;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  f << ToCsv();
  return Status::OK();
}

}  // namespace deepbase
