// Wall-clock timing for the benchmark harness and the engine's runtime
// breakdown instrumentation (Figure 8).
//
// Clock discipline: every timing in the stack is steady_clock nanoseconds
// internally (integer — no FP drift accumulating across millions of
// block timings); seconds are a render-time conversion only.

#pragma once

#include <chrono>
#include <cstdint>

namespace deepbase {

/// \brief Simple wall-clock stopwatch (steady_clock, ns internally).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// \brief Elapsed nanoseconds since construction or last Restart().
  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// \brief Elapsed seconds (render-time conversion of ElapsedNs).
  double Seconds() const { return static_cast<double>(ElapsedNs()) * 1e-9; }

  double Millis() const { return static_cast<double>(ElapsedNs()) * 1e-6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates time across multiple start/stop intervals, used for
/// per-component cost breakdowns (extraction vs inspection). Integer
/// nanoseconds internally: summing many short intervals as doubles loses
/// sub-microsecond increments once the total grows large.
class TimeAccumulator {
 public:
  void Start() { watch_.Restart(); }
  void Stop() { total_ns_ += watch_.ElapsedNs(); }
  int64_t Ns() const { return total_ns_; }
  double Seconds() const { return static_cast<double>(total_ns_) * 1e-9; }
  void Reset() { total_ns_ = 0; }

 private:
  Stopwatch watch_;
  int64_t total_ns_ = 0;
};

}  // namespace deepbase
