// Wall-clock timing for the benchmark harness and the engine's runtime
// breakdown instrumentation (Figure 8).

#pragma once

#include <chrono>

namespace deepbase {

/// \brief Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// \brief Elapsed seconds since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates time across multiple start/stop intervals, used for
/// per-component cost breakdowns (extraction vs inspection).
class TimeAccumulator {
 public:
  void Start() { watch_.Restart(); }
  void Stop() { total_ += watch_.Seconds(); }
  double Seconds() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  Stopwatch watch_;
  double total_ = 0;
};

}  // namespace deepbase
