// EXPLAIN / EXPLAIN ANALYZE implementation (see explain.h for the
// contract). Plan assembly touches only side-effect-free probes:
// Catalog::Compile (resolve-only), Scheduler::Probe, ResultCache::PeekTier
// (via the probe), BehaviorStore::PeekTier, Histogram::Snap, and
// InspectionSession::ProbeCluster — a dry run provably executes zero
// blocks and moves zero counters. The cluster node mirrors the
// coordinator's sliceability predicate and placement math verbatim
// (src/cluster/coordinator.cc DistributedRun) so the rendered plan is the
// plan, not an approximation of it.

#include "service/explain.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "cluster/partition.h"
#include "core/behavior_store.h"
#include "core/inspect_parser.h"
#include "service/scheduler.h"
#include "tensor/matrix_store.h"
#include "tensor/simd.h"
#include "util/failpoint.h"
#include "util/fnv.h"
#include "util/metrics.h"

namespace deepbase {

namespace {

// Fixed-precision float rendering: the determinism contract says the same
// plan renders byte-identically, so every double goes through one format.
std::string FmtSeconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

const char* TierName(BehaviorStore::Tier tier) {
  switch (tier) {
    case BehaviorStore::Tier::kMemory:
      return "memory";
    case BehaviorStore::Tier::kDisk:
      return "disk";
    case BehaviorStore::Tier::kMmap:
      return "mmap (out-of-core)";
    case BehaviorStore::Tier::kMiss:
      return "miss (will extract)";
  }
  return "unknown";
}

// Quality rank for picking the weakest merge guarantee across a measure's
// hypotheses (enum declaration order is not quality order).
int ExactnessRank(MergeExactness e) {
  switch (e) {
    case MergeExactness::kNone:
      return 0;
    case MergeExactness::kReassociated:
      return 1;
    case MergeExactness::kExact:
      return 2;
    case MergeExactness::kBitExact:
      return 3;
  }
  return 0;
}

const char* ExactnessLabel(int rank) {
  switch (rank) {
    case 0:
      return "none (sequential lane)";
    case 1:
      return "reassociated";
    case 2:
      return "exact";
    case 3:
      return "bit-exact";
  }
  return "unknown";
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ",";
    out += n;
  }
  return out;
}

void JsonEscapeTo(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  JsonEscapeTo(s, &out);
  out += "\"";
  return out;
}

void RenderFields(
    const std::vector<std::pair<std::string, std::string>>& fields,
    std::string* out) {
  bool first = true;
  for (const auto& [key, value] : fields) {
    *out += first ? " " : " ";
    first = false;
    if (key.empty()) {
      *out += value;
    } else {
      *out += key + "=" + value;
    }
  }
}

void RenderNode(const PlanNode& node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent), ' ');
  *out += node.name + ":";
  RenderFields(node.fields, out);
  if (!node.actuals.empty()) {
    *out += "  | actual:";
    RenderFields(node.actuals, out);
  }
  *out += "\n";
  for (const std::string& d : node.divergences) {
    out->append(static_cast<size_t>(indent) + 2, ' ');
    *out += "!! " + d + "\n";
  }
  for (const PlanNode& child : node.children) {
    RenderNode(child, indent + 2, out);
  }
}

void NodeJson(const PlanNode& node, std::string* out) {
  *out += "{\"name\":" + JsonStr(node.name) + ",\"fields\":[";
  for (size_t i = 0; i < node.fields.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "[" + JsonStr(node.fields[i].first) + "," +
            JsonStr(node.fields[i].second) + "]";
  }
  *out += "],\"actuals\":[";
  for (size_t i = 0; i < node.actuals.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "[" + JsonStr(node.actuals[i].first) + "," +
            JsonStr(node.actuals[i].second) + "]";
  }
  *out += "],\"divergences\":[";
  for (size_t i = 0; i < node.divergences.size(); ++i) {
    if (i > 0) *out += ",";
    *out += JsonStr(node.divergences[i]);
  }
  *out += "],\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ",";
    NodeJson(node.children[i], out);
  }
  *out += "]}";
}

void CollectDivergences(const PlanNode& node, std::vector<std::string>* out) {
  for (const std::string& d : node.divergences) out->push_back(d);
  for (const PlanNode& child : node.children) CollectDivergences(child, out);
}

// True when the request would survive wire::EncodeInspectRequest: every
// definition referenced by catalog name, nothing inline. Mirrors the
// codec's rejection rule so the cluster node can predict the
// coordinator's inline fallback without a wire dependency.
bool WireEncodable(const InspectRequest& request) {
  if (request.dataset != nullptr) return false;
  if (!request.hypotheses.empty()) return false;
  if (!request.measures.empty()) return false;
  for (const InspectRequest::ModelRef& m : request.models) {
    if (m.extractor != nullptr || m.name.empty()) return false;
  }
  return true;
}

// The coordinator's sliceability predicate, verbatim (DistributedRun):
// non-streaming, >= 2 shards, and every (measure, hypothesis) pair can
// merge without drift — no merged composites, no kNone measures.
bool ClusterSliceable(const InspectPlan& compiled, uint32_t total_shards) {
  bool sliceable = !compiled.options.streaming && total_shards >= 2;
  for (const MeasureFactoryPtr& factory : compiled.measures) {
    if (!sliceable) break;
    for (const HypothesisPtr& hyp : compiled.hypotheses) {
      if (compiled.options.model_merging && factory->mergeable() &&
          hyp->num_classes() == 2) {
        sliceable = false;
        break;
      }
      std::unique_ptr<Measure> probe = factory->Create(1, hyp->num_classes());
      if (probe == nullptr ||
          probe->merge_exactness() == MergeExactness::kNone) {
        sliceable = false;
        break;
      }
    }
  }
  return sliceable;
}

constexpr uint32_t kMaxClusterShards = 64;  // coordinator.cc kMaxShards

// ---------------------------------------------------------------------------
// Plan assembly (the dry-run half of EXPLAIN).
// ---------------------------------------------------------------------------

Result<InspectionPlan> BuildPlan(InspectionSession* session,
                                 const InspectRequest& request) {
  const Catalog& catalog = session->catalog();
  const InspectOptions options =
      request.options.value_or(session->default_options());
  DB_ASSIGN_OR_RETURN(InspectPlan compiled, catalog.Compile(request, options));
  const SchedulerProbe probe = session->scheduler().Probe(request);
  const ClusterPlanProbe cluster = session->ProbeCluster();
  BehaviorStore* store = session->store();

  InspectionPlan plan;
  PlanNode& root = plan.root;
  root.name = "inspect";
  {
    std::vector<std::string> model_names;
    for (const auto& m : request.models) {
      model_names.push_back(m.name.empty() ? "<inline>" : m.name);
    }
    root.Add("models", JoinNames(model_names));
    std::string hyp = JoinNames(request.hypothesis_sets);
    if (!request.hypotheses.empty()) {
      if (!hyp.empty()) hyp += ",";
      hyp += "<" + std::to_string(request.hypotheses.size()) + " inline>";
    }
    root.Add("hypothesis_sets", hyp);
    root.Add("dataset", request.dataset == nullptr
                            ? request.dataset_name
                            : request.dataset_name.empty()
                                  ? "<inline>"
                                  : request.dataset_name + " (inline)");
    std::vector<std::string> measure_names;
    for (const auto& f : compiled.measures) measure_names.push_back(f->name());
    root.Add("measures", JoinNames(measure_names));
  }

  // --- admission ---
  {
    PlanNode node;
    node.name = "admission";
    node.Add("", probe.would_admit
                     ? "admit"
                     : "reject (" + probe.admission_detail + ")");
    node.Add("est_queued_bytes", std::to_string(probe.estimated_queued_bytes));
    node.Add("active_jobs", std::to_string(probe.active_jobs));
    node.Add("queued_bytes", std::to_string(probe.queued_bytes));
    root.children.push_back(std::move(node));
  }

  // --- result cache / dedup ---
  {
    PlanNode node;
    node.name = "cache";
    if (!probe.fingerprint.has_value()) {
      node.Add("", "not cacheable (inline definitions have no fingerprint)");
    } else if (!probe.cacheable) {
      node.Add("", "disabled");
    } else if (probe.cache_tier == "memory") {
      node.Add("", "hit (memory)");
    } else if (probe.cache_tier == "persistent") {
      node.Add("", "hit (persistent)");
    } else if (!probe.deterministic) {
      node.Add("", "miss (volatile run; result will not be cached)");
    } else {
      node.Add("", "miss (will compute and admit)");
    }
    if (probe.fingerprint.has_value()) {
      node.Add("fingerprint", HexU64(*probe.fingerprint));
      node.Add("catalog_version", std::to_string(probe.catalog_version));
    }
    root.children.push_back(std::move(node));
  }
  {
    PlanNode node;
    node.name = "dedup";
    if (!probe.fingerprint.has_value()) {
      node.Add("", "not dedupable (inline definitions have no fingerprint)");
    } else if (!probe.deterministic) {
      node.Add("", "not dedupable (non-deterministic options)");
    } else if (!probe.dedupable) {
      node.Add("", "disabled");
    } else if (probe.dedup_inflight) {
      node.Add("", "attach as waiter on in-flight leader");
    } else {
      node.Add("", "leader (no identical job in flight)");
    }
    root.children.push_back(std::move(node));
  }

  // --- shared scan ---
  {
    PlanNode node;
    node.name = "shared-scan";
    if (!probe.shared_scan_enabled) {
      node.Add("", "disabled");
    } else if (!probe.group_key.has_value()) {
      node.Add("", "no group (request does not resolve against the catalog)");
    } else {
      node.Add("", probe.group_exists ? "join existing group" : "new group");
      node.Add("group", *probe.group_key);
    }
    root.children.push_back(std::move(node));
  }

  // --- input residency (behavior store tiers) ---
  {
    PlanNode node;
    node.name = "inputs";
    if (store == nullptr || compiled.dataset == nullptr) {
      node.Add("", "no store (live extraction every run)");
    } else {
      const Dataset& dataset = *compiled.dataset;
      node.Add("records", std::to_string(dataset.num_records()));
      node.Add("ns", std::to_string(dataset.ns()));
      for (const ModelSpec& model : compiled.models) {
        if (model.extractor == nullptr) continue;
        PlanNode unit;
        unit.name = "unit-behaviors";
        unit.Add("model", model.extractor->model_id());
        const std::string key =
            UnitBehaviorKey(model.extractor->model_id(), dataset);
        unit.Add("key", key);
        unit.Add("tier", TierName(store->PeekTier(key)));
        unit.Add("rows",
                 std::to_string(dataset.num_records() * dataset.ns()));
        const size_t cols = model.extractor->num_units();
        unit.Add("cols", std::to_string(cols));
        unit.Add("lda", std::to_string(PaddedLda(cols)));
        node.children.push_back(std::move(unit));
      }
      if (options.hypothesis_store_tier) {
        for (const HypothesisPtr& hyp : compiled.hypotheses) {
          PlanNode hn;
          hn.name = "hyp-behaviors";
          hn.Add("hypothesis", hyp->name());
          const std::string key = HypothesisBehaviorKey(hyp->name(), dataset);
          hn.Add("key", key);
          hn.Add("tier", TierName(store->PeekTier(key)));
          hn.Add("rows", std::to_string(dataset.num_records()));
          hn.Add("cols", std::to_string(dataset.ns()));
          hn.Add("lda", std::to_string(PaddedLda(dataset.ns())));
          node.children.push_back(std::move(hn));
        }
      }
    }
    root.children.push_back(std::move(node));
  }

  // --- shard partition + per-measure merge lanes ---
  {
    PlanNode node;
    node.name = "partition";
    node.Add("shards", std::to_string(probe.resolved_shard_count));
    node.Add("block_size", std::to_string(options.block_size));
    node.Add("passes", std::to_string(options.passes));
    node.Add("streaming", options.streaming ? "on" : "off");
    node.Add("early_stopping", options.early_stopping ? "on" : "off");
    node.Add("model_merging", options.model_merging ? "on" : "off");
    for (const MeasureFactoryPtr& factory : compiled.measures) {
      PlanNode m;
      m.name = "measure";
      m.Add("", factory->name());
      bool merged_composite = false;
      int worst = 3;
      bool any = false;
      for (const HypothesisPtr& hyp : compiled.hypotheses) {
        if (options.model_merging && factory->mergeable() &&
            hyp->num_classes() == 2) {
          merged_composite = true;
          continue;
        }
        std::unique_ptr<Measure> probe_m =
            factory->Create(1, hyp->num_classes());
        worst = std::min(
            worst, probe_m == nullptr
                       ? 0
                       : ExactnessRank(probe_m->merge_exactness()));
        any = true;
      }
      if (merged_composite) {
        m.Add("merge", any ? std::string("merged composite (sequential) + ") +
                                 ExactnessLabel(worst)
                           : "merged composite (sequential)");
      } else {
        m.Add("merge", any ? ExactnessLabel(worst) : "no hypotheses");
      }
      node.children.push_back(std::move(m));
    }
    root.children.push_back(std::move(node));
  }

  // --- cluster placement ---
  {
    PlanNode node;
    node.name = "cluster";
    if (!cluster.active) {
      node.Add("", "none (local engine)");
    } else if (!WireEncodable(request)) {
      node.Add("", "local fallback (inline definitions cannot cross the wire)");
    } else if (cluster.live_workers.empty()) {
      node.Add("", cluster.degrade_to_local
                       ? "no live workers (will degrade to local engine)"
                       : "no live workers (will fail kUnavailable)");
    } else {
      uint32_t total_shards =
          options.num_shards > 0 ? static_cast<uint32_t>(options.num_shards)
                                 : cluster.total_shards;
      total_shards = std::min(total_shards, kMaxClusterShards);
      const bool sliceable = ClusterSliceable(compiled, total_shards);
      node.Add("", sliceable ? "dispatch (sliced)" : "dispatch (whole job)");
      node.Add("workers", JoinNames(cluster.live_workers));
      node.Add("total_shards", std::to_string(sliceable ? total_shards : 1));
      node.Add("degrade_to_local", cluster.degrade_to_local ? "on" : "off");
      if (sliceable) {
        const std::vector<cluster::ShardRange> ranges =
            cluster::MakeShardRanges(
                total_shards,
                static_cast<uint32_t>(cluster.live_workers.size()));
        for (const cluster::ShardRange& range : ranges) {
          PlanNode r;
          r.name = "range";
          r.Add("shards", "[" + std::to_string(range.lo) + "," +
                              std::to_string(range.hi) + ")");
          // Sliced ranges spread round-robin over the sorted live set,
          // keyed by a global assignment id the plan cannot predict.
          r.Add("worker", "(round-robin)");
          node.children.push_back(std::move(r));
        }
      } else {
        PlanNode a;
        a.name = "assignment";
        a.Add("shards", "[0,1)");
        a.Add("worker", cluster::PlaceKey("job:" + request.dataset_name,
                                          cluster.live_workers));
        node.children.push_back(std::move(a));
      }
    }
    root.children.push_back(std::move(node));
  }

  // --- kernel build ---
  {
    PlanNode node;
    node.name = "kernel";
#if DEEPBASE_SIMD_ENABLED
    node.Add("", "simd");
#else
    node.Add("", "scalar");
#endif
    node.Add("float_lanes", std::to_string(vec::kFloatLanes));
    node.Add("lda_floats", std::to_string(vec::kLdaFloats));
    root.children.push_back(std::move(node));
  }

  // --- cost estimate from recent job history ---
  {
    PlanNode node;
    node.name = "cost";
    Histogram* latency = MetricsRegistry::Global().GetHistogram(
        "deepbase_job_latency_seconds", DefaultLatencyBounds());
    const Histogram::Snapshot snap = latency->Snap();
    if (!probe.cache_tier.empty()) {
      node.Add("", "cache hit: zero engine phases expected");
    } else if (snap.count == 0) {
      node.Add("", "no job history");
    } else {
      node.Add("", "estimated from recent job history");
      node.Add("history_jobs", std::to_string(snap.count));
      node.Add("est_total_s", FmtSeconds(snap.sum / snap.count));
    }
    root.children.push_back(std::move(node));
  }

  return plan;
}

// ---------------------------------------------------------------------------
// Plan-vs-actual reconciliation (EXPLAIN ANALYZE).
// ---------------------------------------------------------------------------

struct DispatchSpan {
  uint64_t assignment = 0;
  std::string worker;
  double seconds = 0;
};

std::vector<DispatchSpan> ParseDispatchSpans(
    const std::vector<TraceSpan>& spans) {
  std::vector<DispatchSpan> out;
  for (const TraceSpan& span : spans) {
    if (span.name != "coord.dispatch") continue;
    DispatchSpan d;
    d.seconds = static_cast<double>(span.duration_ns) * 1e-9;
    size_t pos = 0;
    const std::string& tags = span.tags;
    while (pos < tags.size()) {
      size_t comma = tags.find(',', pos);
      if (comma == std::string::npos) comma = tags.size();
      const std::string kv = tags.substr(pos, comma - pos);
      const size_t eq = kv.find('=');
      if (eq != std::string::npos) {
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "assignment") {
          d.assignment = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "worker") {
          d.worker = value;
        }
      }
      pos = comma + 1;
    }
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const DispatchSpan& a, const DispatchSpan& b) {
              return a.assignment < b.assignment;
            });
  return out;
}

void AnnotatePlan(InspectionPlan* plan, const Result<ResultTable>& result,
                  const RuntimeStats& stats, const JobSummary& summary,
                  const std::vector<TraceSpan>& spans) {
  PlanNode& root = plan->root;
  root.AddActual("status", result.ok()
                               ? (stats.cancelled ? "cancelled" : "ok")
                               : result.status().ToString());
  root.AddActual("total_s", FmtSeconds(summary.total_s));
  root.AddActual("blocks", std::to_string(stats.blocks_processed) + "/" +
                               std::to_string(stats.blocks_total_planned));
  root.AddActual("records", std::to_string(stats.records_processed));

  if (PlanNode* admission = root.Child("admission")) {
    admission->AddActual("queue_s", FmtSeconds(summary.queue_s));
  }

  const bool actual_cache_hit = stats.result_cache_hits > 0;
  if (PlanNode* cache = root.Child("cache")) {
    const std::string predicted =
        cache->fields.empty() ? "" : cache->fields[0].second;
    cache->AddActual("hit", actual_cache_hit ? "yes" : "no");
    const bool predicted_hit = predicted.rfind("hit", 0) == 0;
    const bool predicted_miss = predicted.rfind("miss", 0) == 0;
    if (predicted_hit && !actual_cache_hit) {
      cache->divergences.push_back(
          "predicted cache hit was not served from the cache");
    }
    if (predicted_miss && actual_cache_hit) {
      cache->divergences.push_back(
          "predicted cache miss was served from the cache");
    }
  }
  if (PlanNode* dedup = root.Child("dedup")) {
    dedup->AddActual("dedup_hits", std::to_string(stats.dedup_hits));
  }
  if (PlanNode* scan = root.Child("shared-scan")) {
    scan->AddActual("scan_extractions", std::to_string(stats.scan_extractions));
    scan->AddActual("scan_shared_hits", std::to_string(stats.scan_shared_hits));
  }
  if (PlanNode* inputs = root.Child("inputs")) {
    inputs->AddActual("unit_extraction_s", FmtSeconds(stats.unit_extraction_s));
    inputs->AddActual("hyp_extraction_s", FmtSeconds(stats.hyp_extraction_s));
    inputs->AddActual(
        "store_hits",
        std::to_string(stats.store_mem_hits) + " mem / " +
            std::to_string(stats.store_disk_hits) + " disk / " +
            std::to_string(stats.store_mmap_hits) + " mmap");
    inputs->AddActual("store_misses", std::to_string(stats.store_misses));
    inputs->AddActual(
        "hyp_store_hits",
        std::to_string(stats.store_hyp_mem_hits) + " mem / " +
            std::to_string(stats.store_hyp_disk_hits) + " disk");
    inputs->AddActual("hyp_store_misses",
                      std::to_string(stats.store_hyp_misses));
  }
  if (PlanNode* partition = root.Child("partition")) {
    partition->AddActual("num_shards", std::to_string(stats.num_shards));
    partition->AddActual("inspection_s", FmtSeconds(stats.inspection_s));
    partition->AddActual("merge_s", FmtSeconds(stats.merge_s));
    partition->AddActual("all_converged",
                         stats.all_converged ? "yes" : "no");
  }

  if (PlanNode* cluster_node = root.Child("cluster")) {
    const std::string predicted =
        cluster_node->fields.empty() ? "" : cluster_node->fields[0].second;
    const bool predicted_dispatch = predicted.rfind("dispatch", 0) == 0;
    const std::vector<DispatchSpan> dispatches = ParseDispatchSpans(spans);
    if (predicted_dispatch) {
      cluster_node->AddActual("dispatches",
                              std::to_string(dispatches.size()));
      cluster_node->AddActual("worker_hop_s",
                              FmtSeconds(stats.worker_hop_s));
      // Zip dispatch spans (sorted by their globally increasing
      // assignment id — the coordinator allocates them in range order)
      // onto the planned range/assignment children.
      size_t child_i = 0;
      for (const DispatchSpan& d : dispatches) {
        while (child_i < cluster_node->children.size() &&
               cluster_node->children[child_i].name != "range" &&
               cluster_node->children[child_i].name != "assignment") {
          ++child_i;
        }
        if (child_i >= cluster_node->children.size()) break;
        PlanNode& child = cluster_node->children[child_i++];
        child.AddActual("worker", d.worker);
        child.AddActual("seconds", FmtSeconds(d.seconds));
        if (child.name == "assignment" && !child.fields.empty()) {
          for (const auto& [key, value] : child.fields) {
            if (key == "worker" && value != d.worker) {
              child.divergences.push_back(
                  "placement differed from rendezvous prediction (planned " +
                  value + ", ran on " + d.worker + ")");
            }
          }
        }
      }
      size_t planned = 0;
      for (const PlanNode& child : cluster_node->children) {
        if (child.name == "range" || child.name == "assignment") ++planned;
      }
      if (dispatches.size() > planned) {
        cluster_node->divergences.push_back(
            "shard ranges reassigned mid-run (" +
            std::to_string(dispatches.size()) + " dispatches for " +
            std::to_string(planned) + " planned assignments)");
      }
      // Degradation: the plan said "dispatch", the engine ran blocks,
      // tracing was on — and no dispatch span exists. Cache/dedup serves
      // legitimately skip the cluster, so they are excluded.
      if (dispatches.empty() && !spans.empty() && !actual_cache_hit &&
          stats.dedup_hits == 0 && stats.blocks_processed > 0) {
        cluster_node->divergences.push_back(
            "predicted cluster dispatch ran on the local engine (degraded)");
      }
    }
  }

  if (PlanNode* cost = root.Child("cost")) {
    cost->AddActual("queue_s", FmtSeconds(summary.queue_s));
    cost->AddActual("extract_s", FmtSeconds(summary.extract_s));
    cost->AddActual("score_s", FmtSeconds(summary.score_s));
    cost->AddActual("merge_s", FmtSeconds(summary.merge_s));
    cost->AddActual("worker_hop_s", FmtSeconds(summary.worker_hop_s));
    cost->AddActual("total_s", FmtSeconds(summary.total_s));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PlanNode / InspectionPlan.
// ---------------------------------------------------------------------------

PlanNode* PlanNode::Child(const std::string& child_name) {
  for (PlanNode& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

std::string InspectionPlan::ToText() const {
  std::string out;
  RenderNode(root, 0, &out);
  return out;
}

std::string InspectionPlan::ToJson() const {
  std::string out = "{\"analyzed\":";
  out += analyzed ? "true" : "false";
  out += ",\"plan\":";
  NodeJson(root, &out);
  out += "}";
  return out;
}

std::vector<std::string> InspectionPlan::AllDivergences() const {
  std::vector<std::string> out;
  CollectDivergences(root, &out);
  return out;
}

// ---------------------------------------------------------------------------
// InspectionSession entry points.
// ---------------------------------------------------------------------------

Result<InspectionPlan> InspectionSession::Explain(
    const InspectRequest& request) {
  return BuildPlan(this, request);
}

Result<InspectionPlan> InspectionSession::ExplainAnalyze(
    const InspectRequest& request) {
  // Probe BEFORE running: the plan must reflect the decisions the
  // scheduler is about to make, not the state the job leaves behind.
  DB_ASSIGN_OR_RETURN(InspectionPlan plan, BuildPlan(this, request));
  JobHandle job = Submit(request);
  const Result<ResultTable>& result = job.Wait();
  plan.analyzed = true;
  AnnotatePlan(&plan, result, job.Stats(), job.Summary(), job.TraceSpans());
  return plan;
}

void InspectionSession::SetClusterProbe(
    std::function<ClusterPlanProbe()> probe) {
  std::lock_guard<std::mutex> lock(cluster_probe_mu_);
  cluster_probe_ = std::move(probe);
}

ClusterPlanProbe InspectionSession::ProbeCluster() const {
  std::function<ClusterPlanProbe()> probe;
  {
    std::lock_guard<std::mutex> lock(cluster_probe_mu_);
    probe = cluster_probe_;
  }
  return probe ? probe() : ClusterPlanProbe{};
}

// ---------------------------------------------------------------------------
// Textual frontend.
// ---------------------------------------------------------------------------

bool StripExplainInspectPrefix(std::string* statement, bool* analyze) {
  *analyze = false;
  const std::string& s = *statement;
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  };
  auto read_word = [&]() -> std::string {
    std::string word;
    while (pos < s.size() &&
           !std::isspace(static_cast<unsigned char>(s[pos]))) {
      word += static_cast<char>(
          std::tolower(static_cast<unsigned char>(s[pos])));
      ++pos;
    }
    return word;
  };
  skip_ws();
  if (read_word() != "explain") return false;
  skip_ws();
  const size_t after_explain = pos;
  if (read_word() == "analyze") {
    *analyze = true;
  } else {
    pos = after_explain;
  }
  skip_ws();
  *statement = s.substr(pos);
  return true;
}

Result<InspectionPlan> ExplainInspectStatement(InspectionSession* session,
                                               const std::string& statement,
                                               bool analyze) {
  // REPL frontends hand statements over with the ';' terminator still
  // attached; the textual INSPECT grammar doesn't use one.
  std::string trimmed = statement;
  while (!trimmed.empty() &&
         (std::isspace(static_cast<unsigned char>(trimmed.back())) ||
          trimmed.back() == ';')) {
    trimmed.pop_back();
  }
  DB_ASSIGN_OR_RETURN(InspectRequest request,
                      ParseInspect(trimmed, session->catalog()));
  return analyze ? session->ExplainAnalyze(request)
                 : session->Explain(request);
}

// ---------------------------------------------------------------------------
// Live introspection (statusz) + store metric export.
// ---------------------------------------------------------------------------

void PublishStoreMetrics(InspectionSession* session) {
  BehaviorStore* store = session->store();
  if (store == nullptr) return;
  MetricsRegistry& reg = MetricsRegistry::Global();
  // Counter sync: the store keeps its own cumulative counts; export the
  // delta so repeated scrapes stay monotonic without double counting.
  Counter* mmap_hits = reg.GetCounter("deepbase_store_mmap_hits_total");
  const uint64_t current = store->mmap_hits();
  const uint64_t exported = mmap_hits->Value();
  if (current > exported) mmap_hits->Inc(current - exported);
  reg.GetGauge("deepbase_store_memory_bytes")
      ->Set(static_cast<int64_t>(store->memory_bytes()));
  reg.GetGauge("deepbase_store_occupancy_bytes{ns=\"unit\"}")
      ->Set(static_cast<int64_t>(store->namespace_bytes("unit")));
  reg.GetGauge("deepbase_store_occupancy_bytes{ns=\"hyp\"}")
      ->Set(static_cast<int64_t>(store->namespace_bytes("hyp")));
  reg.GetGauge("deepbase_store_occupancy_bytes{ns=\"cache\"}")
      ->Set(static_cast<int64_t>(store->blob_namespace_bytes("cache")));
}

namespace {

const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace

std::string RenderStatusz(InspectionSession* session, bool json) {
  PublishStoreMetrics(session);
  const std::vector<JobHandle> jobs = session->Jobs();
  const SchedulerStats sched = session->scheduler().stats();
  BehaviorStore* store = session->store();
  const ClusterPlanProbe cluster = session->ProbeCluster();
  const std::vector<std::string> armed = failpoint::ArmedSites();

  if (json) {
    std::string out = "{\"jobs\":[";
    for (size_t i = 0; i < jobs.size(); ++i) {
      JobProgress progress;
      const JobStatus status = jobs[i].Poll(&progress);
      if (i > 0) out += ",";
      out += "{\"id\":" + std::to_string(jobs[i].id()) + ",\"status\":" +
             JsonStr(JobStatusName(status)) +
             ",\"blocks_completed\":" + std::to_string(progress.blocks_completed) +
             ",\"blocks_total\":" + std::to_string(progress.blocks_total) +
             ",\"records\":" + std::to_string(progress.records_processed) + "}";
    }
    out += "],\"scheduler\":{";
    out += "\"jobs_scheduled\":" + std::to_string(sched.jobs_scheduled);
    out += ",\"active_jobs\":" + std::to_string(sched.snapshot.active_jobs);
    out += ",\"queued_bytes\":" + std::to_string(sched.snapshot.queued_bytes);
    out += ",\"inflight_jobs\":" + std::to_string(sched.snapshot.inflight_jobs);
    out += ",\"dedup_followers\":" + std::to_string(sched.dedup_followers);
    out += ",\"admission_rejections\":" +
           std::to_string(sched.admission_rejections);
    out += "},\"result_cache\":{";
    out += "\"hits\":" + std::to_string(sched.result_cache_hits);
    out += ",\"misses\":" + std::to_string(sched.result_cache_misses);
    out += ",\"bytes\":" + std::to_string(sched.snapshot.result_cache_bytes);
    out += ",\"entries\":" +
           std::to_string(sched.snapshot.result_cache_entries);
    out += ",\"persistent_hits\":" +
           std::to_string(sched.result_cache_persistent_hits);
    out += "},\"store\":";
    if (store == nullptr) {
      out += "null";
    } else {
      out += "{\"memory_bytes\":" + std::to_string(store->memory_bytes());
      out += ",\"unit_bytes\":" + std::to_string(store->namespace_bytes("unit"));
      out += ",\"hyp_bytes\":" + std::to_string(store->namespace_bytes("hyp"));
      out += ",\"cache_blob_bytes\":" +
             std::to_string(store->blob_namespace_bytes("cache"));
      out += ",\"mem_hits\":" + std::to_string(store->mem_hits());
      out += ",\"disk_hits\":" + std::to_string(store->disk_hits());
      out += ",\"mmap_hits\":" + std::to_string(store->mmap_hits());
      out += ",\"misses\":" + std::to_string(store->misses());
      out += "}";
    }
    out += ",\"cluster\":{\"active\":";
    out += cluster.active ? "true" : "false";
    out += ",\"workers\":[";
    for (size_t i = 0; i < cluster.live_workers.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonStr(cluster.live_workers[i]);
    }
    out += "]},\"failpoints\":[";
    for (size_t i = 0; i < armed.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonStr(armed[i]);
    }
    out += "]}";
    return out;
  }

  std::string out = "statusz\n";
  out += "  jobs: " + std::to_string(jobs.size()) + "\n";
  for (const JobHandle& job : jobs) {
    JobProgress progress;
    const JobStatus status = job.Poll(&progress);
    out += "    job id=" + std::to_string(job.id()) + " status=" +
           JobStatusName(status) + " blocks=" +
           std::to_string(progress.blocks_completed) + "/" +
           std::to_string(progress.blocks_total) + " records=" +
           std::to_string(progress.records_processed) + "\n";
  }
  out += "  scheduler: jobs_scheduled=" + std::to_string(sched.jobs_scheduled) +
         " active_jobs=" + std::to_string(sched.snapshot.active_jobs) +
         " queued_bytes=" + std::to_string(sched.snapshot.queued_bytes) +
         " inflight_jobs=" + std::to_string(sched.snapshot.inflight_jobs) +
         " dedup_followers=" + std::to_string(sched.dedup_followers) +
         " admission_rejections=" +
         std::to_string(sched.admission_rejections) + "\n";
  out += "  result-cache: hits=" + std::to_string(sched.result_cache_hits) +
         " misses=" + std::to_string(sched.result_cache_misses) +
         " bytes=" + std::to_string(sched.snapshot.result_cache_bytes) +
         " entries=" + std::to_string(sched.snapshot.result_cache_entries) +
         " persistent_hits=" +
         std::to_string(sched.result_cache_persistent_hits) + "\n";
  if (store == nullptr) {
    out += "  store: none\n";
  } else {
    out += "  store: memory_bytes=" + std::to_string(store->memory_bytes()) +
           " unit_bytes=" + std::to_string(store->namespace_bytes("unit")) +
           " hyp_bytes=" + std::to_string(store->namespace_bytes("hyp")) +
           " cache_blob_bytes=" +
           std::to_string(store->blob_namespace_bytes("cache")) +
           " mem_hits=" + std::to_string(store->mem_hits()) +
           " disk_hits=" + std::to_string(store->disk_hits()) +
           " mmap_hits=" + std::to_string(store->mmap_hits()) +
           " misses=" + std::to_string(store->misses()) + "\n";
  }
  out += "  cluster: active=" + std::string(cluster.active ? "yes" : "no");
  if (cluster.active) {
    out += " workers=" + JoinNames(cluster.live_workers);
  }
  out += "\n";
  out += "  failpoints: " + (armed.empty() ? "none" : JoinNames(armed)) + "\n";
  return out;
}

}  // namespace deepbase
