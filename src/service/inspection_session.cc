#include "service/inspection_session.h"

#include <utility>

#include "core/inspect_query.h"
#include "service/scheduler.h"

namespace deepbase {

namespace {

// Terminal state backing default-constructed (invalid) handles, so every
// JobHandle member is safe to call even before a Submit().
internal::JobState& InvalidJobState() {
  static internal::JobState* state = [] {
    auto* s = new internal::JobState();
    s->status = JobStatus::kCancelled;
    s->result = Status::Invalid("invalid job handle (no job submitted)");
    return s;
  }();
  return *state;
}

}  // namespace

uint64_t JobHandle::id() const { return state_ != nullptr ? state_->id : 0; }

JobStatus JobHandle::Poll() const {
  internal::JobState& state = state_ != nullptr ? *state_ : InvalidJobState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.status;
}

JobStatus JobHandle::Poll(JobProgress* progress) const {
  internal::JobState& state = state_ != nullptr ? *state_ : InvalidJobState();
  JobStatus status;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    status = state.status;
  }
  if (progress != nullptr) {
    // The counter is updated with relaxed atomics by whichever engine
    // lane dispatches a block; a snapshot needs no lock.
    const ProgressCounter& counter = *state.progress;
    progress->status = status;
    progress->blocks_completed =
        counter.blocks_done.load(std::memory_order_relaxed);
    progress->blocks_total =
        counter.blocks_total.load(std::memory_order_relaxed);
    progress->records_processed =
        counter.records_done.load(std::memory_order_relaxed);
  }
  return status;
}

bool JobHandle::Done() const {
  const JobStatus status = Poll();
  return status == JobStatus::kDone || status == JobStatus::kCancelled;
}

const Result<ResultTable>& JobHandle::Wait() const {
  internal::JobState& state = state_ != nullptr ? *state_ : InvalidJobState();
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] {
    return state.status == JobStatus::kDone ||
           state.status == JobStatus::kCancelled;
  });
  return *state.result;
}

void JobHandle::Cancel() {
  if (state_ == nullptr) return;
  state_->cancel.store(true, std::memory_order_relaxed);
  // Dedup waiters have no worker polling their cancel flag; their
  // on_cancel hook detaches them from the in-flight job and resolves the
  // handle immediately. Read under the lock, run outside it (the hook
  // takes scheduler locks).
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    hook = state_->on_cancel;
  }
  if (hook) hook();
}

RuntimeStats JobHandle::Stats() const {
  internal::JobState& state = state_ != nullptr ? *state_ : InvalidJobState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.stats;
}

JobSummary JobHandle::Summary() const {
  internal::JobState& state = state_ != nullptr ? *state_ : InvalidJobState();
  std::lock_guard<std::mutex> lock(state.mu);
  JobSummary summary;
  summary.trace_id =
      state.tracer != nullptr ? state.tracer->trace_id() : 0;
  summary.queue_s = state.queue_s;
  summary.extract_s =
      state.stats.unit_extraction_s + state.stats.hyp_extraction_s;
  summary.score_s = state.stats.inspection_s;
  summary.merge_s = state.stats.merge_s;
  summary.worker_hop_s = state.stats.worker_hop_s;
  summary.total_s = state.stats.total_s;
  return summary;
}

std::vector<TraceSpan> JobHandle::TraceSpans() const {
  std::shared_ptr<Tracer> tracer;
  if (state_ != nullptr) {
    std::lock_guard<std::mutex> lock(state_->mu);
    tracer = state_->tracer;
  }
  return tracer != nullptr ? tracer->Spans() : std::vector<TraceSpan>{};
}

InspectionSession::InspectionSession(SessionConfig config)
    : config_(std::move(config)) {
  if (!config_.store_dir.empty()) {
    store_ = std::make_unique<BehaviorStore>(
        config_.store_dir, config_.store_memory_budget_bytes);
    if (config_.store_unit_quota_bytes > 0) {
      store_->SetNamespaceQuota("unit", config_.store_unit_quota_bytes);
    }
    if (config_.store_hyp_quota_bytes > 0) {
      store_->SetNamespaceQuota("hyp", config_.store_hyp_quota_bytes);
    }
  }
  if (config_.hypothesis_cache_values > 0) {
    hyp_cache_ =
        std::make_unique<HypothesisCache>(config_.hypothesis_cache_values);
  }
  scheduler_ = std::make_unique<Scheduler>(this);
  // Close the stale-admission window: every Register* raises the result
  // cache's admission floor synchronously, so a job that started under
  // the old catalog version cannot admit its result after the mutation.
  catalog_.SetMutationListener(
      [this](uint64_t version) { scheduler_->OnCatalogMutation(version); });
}

uint64_t InspectionSession::catalog_version() const {
  return catalog_.version();
}

ThreadPool* InspectionSession::EnsurePool() {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  return pool_.get();
}

InspectionSession::~InspectionSession() {
  // The pool destructor drains the queue and joins, so every outstanding
  // job reaches a terminal state before the catalog/store/cache go away.
  pool_.reset();
  // The scheduler is destroyed before the catalog; drop the listener so a
  // stray Register* on a dying session cannot call into freed memory.
  catalog_.SetMutationListener(nullptr);
}

InspectOptions InspectionSession::EffectiveOptions(
    const InspectRequest& request) {
  InspectOptions options = request.options.value_or(config_.options);
  if (options.hypothesis_cache == nullptr) {
    options.hypothesis_cache = hyp_cache_.get();
  }
  if (options.behavior_store == nullptr) {
    options.behavior_store = store_.get();
  }
  // Intra-job sharding runs on the session pool (num_shards == 0 resolves
  // to the pool size). num_shards == 1 keeps sync-only sessions
  // thread-free, as before.
  if (options.pool == nullptr && options.num_shards != 1) {
    options.pool = EnsurePool();
  }
  return options;
}

std::shared_ptr<internal::JobState> InspectionSession::NewJobState() {
  auto state = std::make_shared<internal::JobState>();
  std::lock_guard<std::mutex> lock(jobs_mu_);
  state->id = next_job_id_++;
  jobs_.push_back(state);
  return state;
}

Result<ResultTable> InspectionSession::Inspect(const InspectRequest& request,
                                               RuntimeStats* stats) {
  return scheduler_->RunSync(request, stats);
}

Result<ResultTable> InspectionSession::Inspect(const InspectQuery& query,
                                               RuntimeStats* stats) {
  return Inspect(query.request(), stats);
}

JobHandle InspectionSession::Submit(InspectRequest request) {
  return scheduler_->Submit(std::move(request), /*trace_id=*/0);
}

JobHandle InspectionSession::Submit(InspectRequest request,
                                    uint64_t trace_id) {
  return scheduler_->Submit(std::move(request), trace_id);
}

JobHandle InspectionSession::Submit(const InspectQuery& query) {
  return Submit(query.request());
}

std::vector<JobHandle> InspectionSession::Jobs() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  std::vector<JobHandle> handles;
  handles.reserve(jobs_.size());
  for (const auto& state : jobs_) handles.push_back(JobHandle(state));
  return handles;
}

}  // namespace deepbase
