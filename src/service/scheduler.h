// Multi-query scheduler: the layer between InspectionSession::Submit()
// and the engine (paper §1/§5 — DeepBase's systems contribution is
// multi-query optimization for inspection workloads: concurrent
// hypotheses over the same (model, dataset) share one extraction scan
// and reuse cached behaviors instead of re-running the model per query).
//
// Three mechanisms, stacked:
//
//   1. Result cache — completed inspections are cached by
//      (InspectRequest fingerprint, catalog version); an identical
//      re-submission is answered without invoking the engine at all
//      (0 blocks processed). Any catalog mutation bumps the version and
//      invalidates older entries. Only fully catalog-resolved requests
//      (models/dataset/hypotheses/measures referenced by name, or an
//      inline dataset, which is content-fingerprinted) are cacheable;
//      requests with inline extractors or hypothesis/measure objects run
//      every time.
//   2. Shared-scan job batching — queued jobs are grouped by
//      (model ids, dataset fingerprint, scan-shaping options) and their
//      block extraction is fused through one SharedScan: each block's
//      unit behaviors are extracted once and fanned out to every member
//      job's own measure set. Member jobs keep their own early stopping
//      and cancellation — finishing, converging, or cancelling detaches
//      a job from the group without disturbing the scan for the rest —
//      and scores are bit-identical to isolated runs.
//   3. Store tiers — the session BehaviorStore (unit + hypothesis
//      namespaces, per-namespace quotas) persists behaviors across jobs
//      and restarts; see core/behavior_store.h.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/shared_scan.h"
#include "service/inspection_session.h"

namespace deepbase {

/// \brief Fingerprint of a fully catalog-resolved InspectRequest plus the
/// score-affecting option values; nullopt when the request is not
/// cacheable (inline extractors / hypothesis / measure objects).
std::optional<uint64_t> InspectRequestFingerprint(
    const InspectRequest& request, const Catalog& catalog,
    const InspectOptions& options);

/// \brief Batching key for shared-scan grouping: model ids + dataset
/// fingerprint + the options that shape the block sequence. nullopt when
/// the request cannot be resolved against the catalog (it then runs
/// solo and reports its own compile error).
std::optional<std::string> BatchKeyFor(const InspectRequest& request,
                                       const Catalog& catalog,
                                       const InspectOptions& options);

/// \brief LRU-over-bytes cache of completed inspection results, keyed by
/// (request fingerprint, catalog version). Thread-safe.
class ResultCache {
 public:
  explicit ResultCache(size_t budget_bytes) : budget_(budget_bytes) {}

  /// \brief Cached result for (fingerprint, version); counts hit/miss.
  std::optional<ResultTable> Lookup(uint64_t fingerprint, uint64_t version);
  /// \brief Admit a completed result (replaces an existing entry).
  void Insert(uint64_t fingerprint, uint64_t version, ResultTable table);
  /// \brief Drop every entry older than `version` (catalog mutation).
  void InvalidateBelow(uint64_t version);
  void Clear();

  size_t hits() const;
  size_t misses() const;
  size_t evictions() const;
  size_t invalidations() const;
  size_t bytes() const;
  size_t entries() const;

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    uint64_t version = 0;
    size_t bytes = 0;
    ResultTable table;
  };

  void EraseLocked(std::list<Entry>::iterator it);

  const size_t budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<std::pair<uint64_t, uint64_t>, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  size_t hits_ = 0, misses_ = 0, evictions_ = 0, invalidations_ = 0;
};

/// \brief Aggregate scheduler counters (cumulative over the session).
struct SchedulerStats {
  size_t jobs_scheduled = 0;    ///< Submit() + sync Inspect() requests
  size_t groups_formed = 0;     ///< distinct shared-scan groups created
  size_t jobs_coscheduled = 0;  ///< jobs that joined an existing group
  size_t scan_extractions = 0;  ///< blocks extracted across all groups
  size_t scan_shared_hits = 0;  ///< blocks served from a group's scan
  size_t result_cache_hits = 0;
  size_t result_cache_misses = 0;
  size_t result_cache_evictions = 0;
  size_t result_cache_invalidations = 0;
  size_t result_cache_bytes = 0;
  size_t result_cache_entries = 0;
};

/// \brief The session's scheduler. Owned by InspectionSession; every
/// Submit()/Inspect() routes through it. Thread-safe.
class Scheduler {
 public:
  explicit Scheduler(InspectionSession* session);

  /// \brief Async path: result-cache probe, group attach, enqueue.
  JobHandle Submit(InspectRequest request);
  /// \brief Sync path: same caching/batching, run on the caller thread.
  Result<ResultTable> RunSync(const InspectRequest& request,
                              RuntimeStats* stats);

  SchedulerStats stats() const;
  ResultCache& result_cache() { return result_cache_; }
  /// \brief Shared-scan groups currently alive (fused jobs in flight).
  size_t active_groups() const;

 private:
  /// One job's membership in a shared-scan group.
  struct GroupHandle {
    std::string key;
    std::shared_ptr<SharedScan> scan;
    std::shared_ptr<SharedScanClient> client;
  };

  std::optional<GroupHandle> AttachToGroup(const InspectRequest& request);
  /// Fold the client's counters, detach, retire the group if empty.
  void ReleaseGroup(GroupHandle* group);
  /// Run one request on the calling thread (group already attached) and
  /// admit the result to the cache when eligible.
  Result<ResultTable> Execute(const InspectRequest& request,
                              std::optional<GroupHandle> group,
                              std::optional<uint64_t> fingerprint,
                              uint64_t version,
                              const std::atomic<bool>* cancel,
                              RuntimeStats* stats);

  InspectionSession* session_;
  ResultCache result_cache_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<SharedScan>> groups_;
  size_t jobs_scheduled_ = 0;
  size_t groups_formed_ = 0;
  size_t jobs_coscheduled_ = 0;
  size_t scan_extractions_ = 0;
  size_t scan_shared_hits_ = 0;
};

}  // namespace deepbase
