// Multi-query scheduler: the layer between InspectionSession::Submit()
// and the engine (paper §1/§5 — DeepBase's systems contribution is
// multi-query optimization for inspection workloads: concurrent
// hypotheses over the same (model, dataset) share one extraction scan
// and reuse cached behaviors instead of re-running the model per query).
//
// Five mechanisms, stacked:
//
//   1. Result cache — completed inspections are cached by
//      (InspectRequest fingerprint, catalog version); an identical
//      re-submission is answered without invoking the engine at all
//      (0 blocks processed). Any catalog mutation bumps the version,
//      invalidates older entries, and — synchronously, via the catalog's
//      mutation listener — raises the cache's admission floor, so a
//      result computed under an old version can never be admitted after
//      the Register* that invalidated it (the stale-admission window).
//      Only fully catalog-resolved requests (models/dataset/hypotheses/
//      measures referenced by name, or an inline dataset, which is
//      content-fingerprinted) are cacheable; requests with inline
//      extractors or hypothesis/measure objects run every time.
//   2. Persistent tier — with a session store, admitted entries are also
//      serialized into the BehaviorStore's blob tier under
//      "cache:<fingerprint>:<catalog version>:<dataset fingerprint>"
//      (its own namespace + disk quota), so a restarted session answers
//      repeat queries with zero engine work. Lookups revalidate against
//      the live catalog version and dataset fingerprint by construction
//      (they are part of the key), and stale-version blobs are purged
//      when the catalog mutates. Caveat (the same name-identity contract
//      as the store's unit/hypothesis tiers, see engine.h): hypothesis
//      *functions* and model *weights* are arbitrary code and cannot be
//      content-fingerprinted, so across restarts their catalog names are
//      their identity — a changed hypothesis or retrained model must be
//      registered under a fresh name (or in a different registration
//      order, which changes the version), or disable persist_result_cache
//      for definitions that churn under fixed names.
//   3. In-flight dedup — identical requests that are in flight at the
//      same time run the engine once: the first becomes the leader, the
//      rest attach as waiters on the running job and receive its
//      ResultTable (bit-identical scores). Cancelling a waiter resolves
//      only that waiter; cancelling the leader promotes the first live
//      waiter to re-run (on the leader's worker) or fails cleanly when
//      none remain.
//   4. Shared-scan job batching — queued jobs are grouped by
//      (model ids, dataset fingerprint, scan-shaping options) and their
//      block extraction is fused through one SharedScan: each block's
//      unit behaviors are extracted once and fanned out to every member
//      job's own measure set. Member jobs keep their own early stopping
//      and cancellation, and scores are bit-identical to isolated runs.
//   5. Admission control — per-tenant (SessionConfig) quotas on
//      concurrent jobs and queued extraction bytes; over-quota
//      submissions are rejected with kResourceExhausted instead of
//      queueing without bound.

#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/shared_scan.h"
#include "service/inspection_session.h"

namespace deepbase {

class BehaviorStore;

/// \brief Fingerprint of a fully catalog-resolved InspectRequest plus the
/// score-affecting option values; nullopt when the request is not
/// cacheable (inline extractors / hypothesis / measure objects).
std::optional<uint64_t> InspectRequestFingerprint(
    const InspectRequest& request, const Catalog& catalog,
    const InspectOptions& options);

/// \brief Batching key for shared-scan grouping: model ids + dataset
/// fingerprint + the options that shape the block sequence. nullopt when
/// the request cannot be resolved against the catalog (it then runs
/// solo and reports its own compile error).
std::optional<std::string> BatchKeyFor(const InspectRequest& request,
                                       const Catalog& catalog,
                                       const InspectOptions& options);

/// \brief Blob-tier key of one persisted result-cache entry.
std::string ResultCacheBlobKey(uint64_t fingerprint, uint64_t version,
                               uint64_t dataset_fingerprint);

/// \brief True when the run is complete and clock-independent — the
/// cacheability/dedupability gate (a truncated or deadline-bearing run
/// depends on wall-clock timing). Shared with EXPLAIN.
bool DeterministicOptions(const InspectOptions& options);

/// \brief The shard count this session's engine would actually run the
/// request at, mirroring BlockPipeline's resolution (explicit count →
/// pool size → config threads → hardware concurrency, clamped to
/// [1, 64]). Shared by the fingerprint's early-stopping carve-out and by
/// EXPLAIN's partition plan.
size_t ResolvedShardCountFor(const InspectOptions& options,
                             const SessionConfig& config);

/// \brief LRU-over-bytes cache of completed inspection results, keyed by
/// (request fingerprint, catalog version), with an optional persistent
/// tier through a BehaviorStore's "cache:" blob namespace. Thread-safe.
///
/// Stale-admission discipline (the Berkholz et al. rule: revalidate
/// against the update clock at admission, not only at lookup):
/// InvalidateBelow(v) both drops entries older than v and raises a
/// monotonic admission floor; Insert/Lookup reject versions below the
/// floor, so a result computed under catalog version V that finishes
/// after a Register* invalidated V is never admitted or served.
///
/// Persistent-tier I/O (blob read on a memory miss, blob write on
/// admission, directory purge on invalidation) runs under the cache
/// mutex by design: the floor check and the blob operation must be
/// atomic against a concurrent purge, or a racing Register* could sweep
/// the directory before a stale blob lands. The cost — concurrent
/// probes briefly serializing behind one disk read — is only paid on
/// memory-tier misses of store-backed sessions.
class ResultCache {
 public:
  /// \param store optional persistent tier (nullptr = memory only).
  ResultCache(size_t budget_bytes, BehaviorStore* store, bool persist)
      : budget_(budget_bytes), store_(store), persist_(persist && store) {}

  /// \brief Cached result for (fingerprint, version): memory tier first,
  /// then the persistent tier (re-admitted to memory on a hit). Counts
  /// hit/miss. `dataset_fingerprint` keys the persistent tier.
  std::optional<ResultTable> Lookup(uint64_t fingerprint, uint64_t version,
                                    uint64_t dataset_fingerprint);
  /// \brief Admit a completed result (replaces an existing entry) to both
  /// tiers. Rejected (counted in stale_rejections) when `version` is
  /// below the admission floor — i.e. the catalog has already moved on.
  void Insert(uint64_t fingerprint, uint64_t version,
              uint64_t dataset_fingerprint, ResultTable table);
  /// \brief Drop every entry older than `version` (both tiers) and raise
  /// the admission floor to `version`. No-op when the floor is already
  /// there, so per-request calls are cheap.
  void InvalidateBelow(uint64_t version);
  void Clear();

  /// \brief EXPLAIN's side-effect-free tier probe: "memory",
  /// "persistent", or "" (miss / below the admission floor). Unlike
  /// Lookup it counts nothing, never touches LRU order, and never
  /// re-admits a blob — a dry run leaves the cache byte-identical.
  std::string PeekTier(uint64_t fingerprint, uint64_t version,
                       uint64_t dataset_fingerprint) const;

  size_t hits() const;
  size_t misses() const;
  size_t evictions() const;
  size_t invalidations() const;
  /// \brief Entries admitted to / served from the persistent blob tier.
  size_t persistent_writes() const;
  size_t persistent_hits() const;
  /// \brief Insert attempts rejected because the catalog had already
  /// invalidated the entry's version (the closed stale-admission window).
  size_t stale_rejections() const;
  size_t bytes() const;
  size_t entries() const;

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    uint64_t version = 0;
    size_t bytes = 0;
    ResultTable table;
  };

  void EraseLocked(std::list<Entry>::iterator it);
  void AdmitLocked(uint64_t fingerprint, uint64_t version, ResultTable table);

  const size_t budget_;
  BehaviorStore* const store_;
  const bool persist_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<std::pair<uint64_t, uint64_t>, std::list<Entry>::iterator> index_;
  /// Admission floor: entries below this catalog version are neither
  /// admitted nor served. Raised by InvalidateBelow, never lowered.
  uint64_t floor_version_ = 0;
  size_t bytes_ = 0;
  size_t hits_ = 0, misses_ = 0, evictions_ = 0, invalidations_ = 0;
  size_t persistent_writes_ = 0, persistent_hits_ = 0;
  size_t stale_rejections_ = 0;
};

/// X-macro over SchedulerStats' cumulative counters: the one list that
/// generates Accumulate and the drift guards in scheduler.cc. A counter
/// added to the struct but not here changes sizeof and trips the
/// static_assert instead of silently not accumulating. Keep the order in
/// sync with the struct declaration below.
#define DEEPBASE_SCHEDULER_STATS_COUNTER_FIELDS(X) \
  X(size_t, jobs_scheduled)                        \
  X(size_t, groups_formed)                         \
  X(size_t, jobs_coscheduled)                      \
  X(size_t, scan_extractions)                      \
  X(size_t, scan_shared_hits)                      \
  X(size_t, dedup_followers)                       \
  X(size_t, dedup_promotions)                      \
  X(size_t, admission_rejections)                  \
  X(size_t, result_cache_hits)                     \
  X(size_t, result_cache_misses)                   \
  X(size_t, result_cache_evictions)                \
  X(size_t, result_cache_invalidations)            \
  X(size_t, result_cache_persistent_hits)          \
  X(size_t, result_cache_persistent_writes)        \
  X(size_t, result_cache_stale_rejections)

/// \brief Aggregate scheduler counters. Two kinds of field, kept apart so
/// polling stats() repeatedly stays additive: the top-level counters are
/// cumulative over the session (Accumulate sums them); `snapshot` holds
/// point-in-time gauges (current cache bytes/entries, in-flight jobs)
/// that are NOT additive — Accumulate keeps the most recent snapshot
/// instead of summing, so folding a stats poll into a running total never
/// double-counts bytes.
struct SchedulerStats {
  // Cumulative counters (monotonic; sum across polls/sessions).
  size_t jobs_scheduled = 0;    ///< Submit() + sync Inspect() requests
  size_t groups_formed = 0;     ///< distinct shared-scan groups created
  size_t jobs_coscheduled = 0;  ///< jobs that joined an existing group
  size_t scan_extractions = 0;  ///< blocks extracted across all groups
  size_t scan_shared_hits = 0;  ///< blocks served from a group's scan
  size_t dedup_followers = 0;   ///< submissions attached to an in-flight job
  size_t dedup_promotions = 0;  ///< waiters promoted after a leader cancel
  size_t admission_rejections = 0;  ///< submissions rejected over quota
  size_t result_cache_hits = 0;
  size_t result_cache_misses = 0;
  size_t result_cache_evictions = 0;
  size_t result_cache_invalidations = 0;
  size_t result_cache_persistent_hits = 0;
  size_t result_cache_persistent_writes = 0;
  size_t result_cache_stale_rejections = 0;

  /// Point-in-time gauges (NOT additive across polls).
  struct Snapshot {
    size_t result_cache_bytes = 0;
    size_t result_cache_entries = 0;
    size_t inflight_jobs = 0;  ///< dedup registry entries right now
    size_t active_jobs = 0;    ///< queued + running engine jobs right now
    size_t queued_bytes = 0;   ///< estimated bytes awaiting execution
  } snapshot;

  /// \brief Fold another poll into this one: cumulative counters sum,
  /// `snapshot` takes `other`'s (most recent wins).
  void Accumulate(const SchedulerStats& other);
};

/// \brief What the scheduler *would* decide for a request right now —
/// the admission/cache/dedup/group half of an EXPLAIN plan. Computed by
/// Scheduler::Probe without mutating anything: no counters move, no LRU
/// reorders, no blob is read, no registry entry is created.
struct SchedulerProbe {
  std::optional<uint64_t> fingerprint;  ///< nullopt = not cacheable
  uint64_t dataset_fingerprint = 0;
  uint64_t catalog_version = 0;
  bool deterministic = false;  ///< DeterministicOptions(effective options)
  bool cacheable = false;      ///< fingerprint && result cache enabled
  bool dedupable = false;      ///< fingerprint && dedup enabled && determ.
  std::string cache_tier;      ///< "memory" | "persistent" | "" (miss)
  bool dedup_inflight = false;  ///< would attach as waiter on a leader
  bool shared_scan_enabled = false;
  std::optional<std::string> group_key;  ///< shared-scan batching key
  bool group_exists = false;  ///< a live group already has this key
  size_t resolved_shard_count = 0;
  size_t estimated_queued_bytes = 0;  ///< the queued-bytes quota unit
  bool would_admit = true;
  std::string admission_detail;  ///< set when would_admit is false
  size_t active_jobs = 0;
  size_t queued_bytes = 0;
};

/// \brief The session's scheduler. Owned by InspectionSession; every
/// Submit()/Inspect() routes through it. Thread-safe.
class Scheduler {
 public:
  explicit Scheduler(InspectionSession* session);

  /// \brief Async path: result-cache probe, in-flight dedup, admission
  /// check, group attach, enqueue. Over-quota submissions return a handle
  /// already resolved with kResourceExhausted. `trace_id` threads an
  /// externally minted trace id (the serving layer's Submit frame) into
  /// the job's Tracer; 0 mints a fresh id.
  JobHandle Submit(InspectRequest request, uint64_t trace_id = 0);
  /// \brief Sync path: same caching/dedup/admission, run on the caller
  /// thread (an identical in-flight job parks the caller until the
  /// leader's result is ready).
  Result<ResultTable> RunSync(const InspectRequest& request,
                              RuntimeStats* stats);

  /// \brief Catalog mutation hook (wired by InspectionSession): raises
  /// the result cache's admission floor to `version` synchronously.
  void OnCatalogMutation(uint64_t version);

  /// \brief Pluggable engine: when set, Execute() calls `fn` instead of
  /// RunInspectRequest. This is how the cluster coordinator slots in — it
  /// is "a scheduler whose engine is remote": result caching, in-flight
  /// dedup, admission control, and progress plumbing all keep working
  /// around the replacement, which receives the effective request (cancel/
  /// progress already threaded into its options) and the session defaults.
  /// Pass nullptr to restore the local engine. Takes effect for jobs that
  /// start after the call; in-flight jobs keep the engine they started on.
  using EngineFn = std::function<Result<ResultTable>(
      const InspectRequest& request, const InspectOptions& default_options,
      RuntimeStats* stats)>;
  void SetEngine(EngineFn fn);

  /// \brief EXPLAIN's dry-run view of the decisions Submit() would make
  /// for `request` right now. Strictly read-only (see SchedulerProbe).
  SchedulerProbe Probe(const InspectRequest& request) const;

  SchedulerStats stats() const;
  ResultCache& result_cache() { return result_cache_; }
  /// \brief Shared-scan groups currently alive (fused jobs in flight).
  size_t active_groups() const;
  /// \brief Dedup registry entries currently alive.
  size_t inflight_jobs() const;

 private:
  /// One job's membership in a shared-scan group.
  struct GroupHandle {
    std::string key;
    std::shared_ptr<SharedScan> scan;
    std::shared_ptr<SharedScanClient> client;
  };

  /// One entry of the in-flight dedup registry: the leader's request (for
  /// waiter promotion after a leader cancel) plus the waiters parked on
  /// it. `done` flips when the leader's terminal delivery has begun; a
  /// waiter that finds `done` missed the delivery and must run itself.
  struct InflightJob {
    uint64_t fingerprint = 0;
    uint64_t version = 0;
    uint64_t dataset_fingerprint = 0;
    InspectRequest request;
    bool done = false;                                       // guarded by mu_
    std::vector<std::shared_ptr<internal::JobState>> waiters;  // guarded by mu_
    /// The leader's live progress counter, created at registration and
    /// shared into every waiter's JobState so polling a waiter (locally
    /// or over the wire) reports the leader's progress. Never null.
    std::shared_ptr<ProgressCounter> progress;
  };

  std::optional<GroupHandle> AttachToGroup(const InspectRequest& request);
  /// Fold the client's counters, detach, retire the group if empty.
  void ReleaseGroup(GroupHandle* group);
  /// Run one request on the calling thread (group already attached) and
  /// admit the result to the cache when eligible. `tracer`/`parent_span`
  /// thread the job's trace into the engine options (a request that
  /// already carries its own tracer keeps it).
  Result<ResultTable> Execute(const InspectRequest& request,
                              std::optional<GroupHandle> group,
                              std::optional<uint64_t> fingerprint,
                              uint64_t version, uint64_t dataset_fingerprint,
                              const std::atomic<bool>* cancel,
                              ProgressCounter* progress, RuntimeStats* stats,
                              Tracer* tracer = nullptr,
                              uint64_t parent_span = 0);

  /// Terminal observability bookkeeping for one async job, exactly once:
  /// records the "sched.job" root span, counts deepbase_jobs_total
  /// {status=...} + the latency histogram, and emits the slow-job span
  /// tree when the wall time crossed SessionConfig::slow_job_threshold_s.
  /// `status` is "ok", "error", or "cancelled". Never call holding
  /// state->mu.
  void FinalizeJob(const std::shared_ptr<internal::JobState>& state,
                   const char* status);

  /// Leader terminal path: deliver `result` to every live waiter (or,
  /// when the leader was cancelled, promote the first live waiter and
  /// re-run on this thread), then retire the registry entry.
  void FinishInflight(const std::shared_ptr<InflightJob>& job,
                      Result<ResultTable> result, const RuntimeStats& stats,
                      bool leader_cancelled);
  /// Waiter-side cancellation: detach `state` from `job` (if still
  /// parked) and resolve it as kCancelled. Never touches the leader.
  void CancelWaiter(const std::shared_ptr<InflightJob>& job,
                    const std::shared_ptr<internal::JobState>& state);
  /// Resolve a non-terminal state as kCancelled (no-op when already
  /// terminal); clears its on_cancel hook.
  static void ResolveCancelled(const std::shared_ptr<internal::JobState>& state,
                               std::string message);
  /// Resolve one waiter state with the leader's result.
  static void DeliverToWaiter(const std::shared_ptr<internal::JobState>& state,
                              const Result<ResultTable>& result,
                              const RuntimeStats& stats);

  void OnJobStarted(size_t queued_bytes);
  void OnJobFinished();
  /// Rough extraction footprint of a request (dataset rows × unit count),
  /// the unit of the queued-bytes quota.
  size_t EstimateQueuedBytes(const InspectRequest& request) const;

  InspectionSession* session_;
  ResultCache result_cache_;
  mutable std::mutex mu_;
  EngineFn engine_fn_;  // guarded by mu_; copied per Execute
  std::map<std::string, std::shared_ptr<SharedScan>> groups_;
  std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<InflightJob>>
      inflight_;
  size_t jobs_scheduled_ = 0;
  size_t groups_formed_ = 0;
  size_t jobs_coscheduled_ = 0;
  size_t scan_extractions_ = 0;
  size_t scan_shared_hits_ = 0;
  size_t dedup_followers_ = 0;
  size_t dedup_promotions_ = 0;
  size_t admission_rejections_ = 0;
  size_t active_jobs_ = 0;
  /// Jobs admitted but not yet picked up by a worker (the queued-bytes
  /// quota keys on these, never on running jobs).
  size_t queued_jobs_ = 0;
  size_t queued_bytes_ = 0;
};

}  // namespace deepbase
