#include "service/scheduler.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/behavior_store.h"

namespace deepbase {

namespace {

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void HashStr(const std::string& s, uint64_t* h) {
  *h = Fnv1a(s.data(), s.size(), *h);
  *h = Fnv1a(";", 1, *h);
}

template <typename T>
void HashPod(const T& value, uint64_t* h) {
  *h = Fnv1a(&value, sizeof(value), *h);
}

/// The option values that can change scores or row sets; pointers
/// (store, caches, pool, cancel) and purely observational fields never
/// participate.
void HashOptions(const InspectOptions& o, uint64_t* h) {
  HashPod(o.block_size, h);
  HashPod(o.shuffle_seed, h);
  HashPod(o.passes, h);
  HashPod(o.streaming, h);
  HashPod(o.early_stopping, h);
  HashPod(o.model_merging, h);
  HashPod(o.corr_epsilon, h);
  HashPod(o.logreg_epsilon, h);
  HashPod(o.default_epsilon, h);
  HashPod(o.num_shards, h);
  HashPod(o.time_budget_s, h);
  HashPod(o.max_blocks, h);
}

/// Resolved dataset fingerprint of a request: the catalog's registration
/// snapshot for named datasets, a live content hash for inline ones.
std::optional<uint64_t> DatasetFingerprintFor(const InspectRequest& request,
                                              const Catalog& catalog) {
  if (request.dataset != nullptr) {
    return DatasetFingerprint(*request.dataset);
  }
  if (!request.dataset_name.empty()) {
    Result<CatalogDataset> entry = catalog.GetDataset(request.dataset_name);
    if (!entry.ok()) return std::nullopt;
    return entry->fingerprint;
  }
  return std::nullopt;
}

size_t EstimateBytes(const ResultTable& table) {
  size_t bytes = sizeof(ResultTable);
  for (const ResultRow& row : table.rows()) {
    bytes += sizeof(ResultRow) + row.model_id.size() + row.group_id.size() +
             row.measure.size() + row.hypothesis.size();
  }
  return bytes;
}

}  // namespace

std::optional<uint64_t> InspectRequestFingerprint(
    const InspectRequest& request, const Catalog& catalog,
    const InspectOptions& options) {
  // Cacheable requests are fully name-resolved: inline extractor,
  // hypothesis, or measure objects have no stable identity to key on.
  if (request.models.empty()) return std::nullopt;
  for (const InspectRequest::ModelRef& ref : request.models) {
    if (ref.extractor != nullptr || ref.name.empty()) return std::nullopt;
  }
  if (!request.hypotheses.empty()) return std::nullopt;
  if (!request.measures.empty()) return std::nullopt;

  uint64_t h = 1469598103934665603ull;
  for (const InspectRequest::ModelRef& ref : request.models) {
    HashStr(ref.name, &h);
    HashPod(ref.group_by_layer, &h);
    for (const UnitGroupSpec& group : ref.groups) {
      HashStr(group.group_id, &h);
      h = Fnv1a(group.unit_ids.data(), group.unit_ids.size() * sizeof(int),
                h);
    }
  }
  for (const std::string& set : request.hypothesis_sets) HashStr(set, &h);
  HashStr("|filter", &h);
  for (const std::string& name : request.hypothesis_filter) HashStr(name, &h);
  std::optional<uint64_t> dataset_fp = DatasetFingerprintFor(request, catalog);
  if (!dataset_fp) return std::nullopt;
  HashPod(*dataset_fp, &h);
  HashStr("|measures", &h);
  for (const std::string& name : request.measure_names) HashStr(name, &h);
  const bool has_min = request.min_abs_unit_score.has_value();
  HashPod(has_min, &h);
  if (has_min) HashPod(*request.min_abs_unit_score, &h);
  HashOptions(options, &h);
  return h;
}

std::optional<std::string> BatchKeyFor(const InspectRequest& request,
                                       const Catalog& catalog,
                                       const InspectOptions& options) {
  if (request.models.empty()) return std::nullopt;
  std::string key;
  for (const InspectRequest::ModelRef& ref : request.models) {
    const Extractor* extractor = ref.extractor;
    if (extractor == nullptr) {
      if (ref.name.empty()) return std::nullopt;
      Result<CatalogModel> entry = catalog.GetModel(ref.name);
      if (!entry.ok() || entry->extractor == nullptr) return std::nullopt;
      extractor = entry->extractor;
    }
    key += extractor->model_id();
    key += '@';
    // The unit-group footprint: blocks are keyed by the unit *union* in
    // the scan, so only jobs with identical footprints can share cached
    // blocks — keeping different footprints in different groups stops a
    // layer-0 job's blocks from being held pending for a layer-1 job
    // that will never read them.
    uint64_t gh = 1469598103934665603ull;
    gh = Fnv1a(&ref.group_by_layer, sizeof(ref.group_by_layer), gh);
    for (const UnitGroupSpec& group : ref.groups) {
      const uint64_t n = group.unit_ids.size();
      gh = Fnv1a(&n, sizeof(n), gh);
      gh = Fnv1a(group.unit_ids.data(), group.unit_ids.size() * sizeof(int),
                 gh);
    }
    key += std::to_string(gh);
    key += '|';
  }
  std::optional<uint64_t> dataset_fp = DatasetFingerprintFor(request, catalog);
  if (!dataset_fp) return std::nullopt;
  key += std::to_string(*dataset_fp);
  // Scan-shaping options: jobs with different block sequences would never
  // share cached blocks anyway, so keep their groups separate.
  key += '|';
  key += std::to_string(options.block_size);
  key += ':';
  key += std::to_string(options.shuffle_seed);
  key += ':';
  key += options.streaming ? 's' : 'm';
  key += ':';
  key += std::to_string(options.passes);
  return key;
}

// ---------------------------------------------------------------------------
// ResultCache.
// ---------------------------------------------------------------------------

std::optional<ResultTable> ResultCache::Lookup(uint64_t fingerprint,
                                               uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find({fingerprint, version});
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->table;
}

void ResultCache::Insert(uint64_t fingerprint, uint64_t version,
                         ResultTable table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find({fingerprint, version});
  if (it != index_.end()) EraseLocked(it->second);
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.version = version;
  entry.bytes = EstimateBytes(table);
  entry.table = std::move(table);
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[{fingerprint, version}] = lru_.begin();
  while (bytes_ > budget_ && lru_.size() > 1) {
    ++evictions_;
    EraseLocked(std::prev(lru_.end()));
  }
  if (bytes_ > budget_ && lru_.size() == 1) {
    // A single oversized result never fits; don't pin it.
    ++evictions_;
    EraseLocked(lru_.begin());
  }
}

void ResultCache::InvalidateBelow(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    if (it->version < version) {
      ++invalidations_;
      EraseLocked(it);
    }
    it = next;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase({it->fingerprint, it->version});
  lru_.erase(it);
}

size_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
size_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
size_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
size_t ResultCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}
size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}
size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

// ---------------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------------

Scheduler::Scheduler(InspectionSession* session)
    : session_(session),
      result_cache_(session->config_.result_cache_budget_bytes) {}

std::optional<Scheduler::GroupHandle> Scheduler::AttachToGroup(
    const InspectRequest& request) {
  if (!session_->config_.enable_shared_scan) return std::nullopt;
  std::optional<std::string> key =
      BatchKeyFor(request, session_->catalog_,
                  request.options.value_or(session_->config_.options));
  if (!key) return std::nullopt;
  GroupHandle handle;
  handle.key = *key;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<SharedScan>& scan = groups_[*key];
  if (scan == nullptr) {
    scan = std::make_shared<SharedScan>(
        session_->config_.shared_scan_budget_bytes);
    ++groups_formed_;
  } else {
    ++jobs_coscheduled_;
  }
  handle.scan = scan;
  handle.client = std::make_shared<SharedScanClient>(scan);
  return handle;
}

void Scheduler::ReleaseGroup(GroupHandle* group) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    scan_extractions_ += group->client->extractions();
    scan_shared_hits_ += group->client->shared_hits();
  }
  group->client.reset();  // detaches this job from the scan
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group->key);
  if (it != groups_.end() && it->second == group->scan &&
      it->second->attached() == 0) {
    groups_.erase(it);
  }
  group->scan.reset();
}

Result<ResultTable> Scheduler::Execute(const InspectRequest& request,
                                       std::optional<GroupHandle> group,
                                       std::optional<uint64_t> fingerprint,
                                       uint64_t version,
                                       const std::atomic<bool>* cancel,
                                       RuntimeStats* stats) {
  InspectRequest effective = request;
  InspectOptions options = session_->EffectiveOptions(request);
  if (cancel != nullptr) options.cancel = cancel;
  if (group) options.shared_scan = group->client.get();
  effective.options = options;
  RuntimeStats local;
  Result<ResultTable> result = RunInspectRequest(
      effective, session_->catalog_, session_->config_.options, &local);
  if (group) ReleaseGroup(&*group);
  if (fingerprint) {
    local.result_cache_misses = 1;
    // Only complete, deterministic runs are cacheable: a cancelled or
    // budget-truncated result depends on wall-clock timing.
    const bool complete =
        result.ok() && !local.cancelled &&
        options.max_blocks == std::numeric_limits<size_t>::max() &&
        std::isinf(options.time_budget_s);
    if (complete && session_->catalog_.version() == version) {
      result_cache_.Insert(*fingerprint, version, *result);
    }
  }
  if (stats != nullptr) *stats = local;
  return result;
}

Result<ResultTable> Scheduler::RunSync(const InspectRequest& request,
                                       RuntimeStats* stats) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++jobs_scheduled_;
  }
  const uint64_t version = session_->catalog_.version();
  std::optional<uint64_t> fingerprint;
  if (session_->config_.enable_result_cache) {
    fingerprint = InspectRequestFingerprint(
        request, session_->catalog_,
        request.options.value_or(session_->config_.options));
    if (fingerprint) {
      result_cache_.InvalidateBelow(version);
      if (std::optional<ResultTable> hit =
              result_cache_.Lookup(*fingerprint, version)) {
        if (stats != nullptr) {
          *stats = RuntimeStats{};
          stats->result_cache_hits = 1;
        }
        return std::move(*hit);
      }
    }
  }
  return Execute(request, AttachToGroup(request), fingerprint, version,
                 /*cancel=*/nullptr, stats);
}

JobHandle Scheduler::Submit(InspectRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++jobs_scheduled_;
  }
  const uint64_t version = session_->catalog_.version();
  std::optional<uint64_t> fingerprint;
  if (session_->config_.enable_result_cache) {
    fingerprint = InspectRequestFingerprint(
        request, session_->catalog_,
        request.options.value_or(session_->config_.options));
    if (fingerprint) {
      result_cache_.InvalidateBelow(version);
      if (std::optional<ResultTable> hit =
              result_cache_.Lookup(*fingerprint, version)) {
        // Served without touching the engine: the job is born done.
        auto state = session_->NewJobState();
        std::lock_guard<std::mutex> lock(state->mu);
        state->status = JobStatus::kDone;
        state->stats.result_cache_hits = 1;
        state->result = std::move(*hit);
        state->cv.notify_all();
        return JobHandle(state);
      }
    }
  }

  ThreadPool* pool = session_->EnsurePool();
  auto state = session_->NewJobState();
  // Group membership is claimed at submit time (not when the worker picks
  // the job up), so every job queued in one burst lands in one group.
  std::optional<GroupHandle> group = AttachToGroup(request);
  pool->Submit([this, state, fingerprint, version, group = std::move(group),
                request = std::move(request)]() mutable {
    bool dropped = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->cancel.load(std::memory_order_relaxed)) {
        state->status = JobStatus::kCancelled;
        state->result =
            Status::Cancelled("job " + std::to_string(state->id) +
                              " cancelled before execution");
        state->cv.notify_all();
        dropped = true;
      } else {
        state->status = JobStatus::kRunning;
      }
    }
    if (dropped) {
      // Detach so the fused group's pending-block accounting does not
      // wait on a job that will never read anything.
      if (group) ReleaseGroup(&*group);
      return;
    }
    RuntimeStats stats;
    Result<ResultTable> result = Execute(request, std::move(group),
                                         fingerprint, version,
                                         &state->cancel, &stats);
    std::lock_guard<std::mutex> lock(state->mu);
    state->stats = stats;
    // Key off what the engine actually observed (stats.cancelled), not a
    // re-read of the atomic: a Cancel() racing with completion must not
    // discard a fully computed result.
    if (stats.cancelled) {
      state->status = JobStatus::kCancelled;
      state->result =
          Status::Cancelled("job " + std::to_string(state->id) +
                            " cancelled after " +
                            std::to_string(stats.blocks_processed) +
                            " blocks");
    } else {
      state->status = JobStatus::kDone;
      state->result = std::move(result);
    }
    state->cv.notify_all();
  });
  return JobHandle(state);
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.jobs_scheduled = jobs_scheduled_;
    s.groups_formed = groups_formed_;
    s.jobs_coscheduled = jobs_coscheduled_;
    s.scan_extractions = scan_extractions_;
    s.scan_shared_hits = scan_shared_hits_;
  }
  s.result_cache_hits = result_cache_.hits();
  s.result_cache_misses = result_cache_.misses();
  s.result_cache_evictions = result_cache_.evictions();
  s.result_cache_invalidations = result_cache_.invalidations();
  s.result_cache_bytes = result_cache_.bytes();
  s.result_cache_entries = result_cache_.entries();
  return s;
}

size_t Scheduler::active_groups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_.size();
}

}  // namespace deepbase
