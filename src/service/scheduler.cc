#include "service/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "core/behavior_store.h"
#include "util/failpoint.h"
#include "util/fnv.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace deepbase {

namespace {

// Drift guard for the SchedulerStats X-macro (see engine.cc for the
// RuntimeStats twin): every cumulative counter is a size_t, so a field
// added to the struct but not the macro changes sizeof and fails here.
#define DEEPBASE_COUNT_FIELD(type, name) +1
constexpr size_t kSchedulerCounterFieldCount =
    0 DEEPBASE_SCHEDULER_STATS_COUNTER_FIELDS(DEEPBASE_COUNT_FIELD);
#undef DEEPBASE_COUNT_FIELD
static_assert(kSchedulerCounterFieldCount == 15,
              "SchedulerStats counter list changed; update the X-macro and "
              "this count together");
static_assert(sizeof(SchedulerStats) ==
                  kSchedulerCounterFieldCount * 8 +
                      sizeof(SchedulerStats::Snapshot),
              "SchedulerStats has a counter missing from "
              "DEEPBASE_SCHEDULER_STATS_COUNTER_FIELDS");

// Process-global job metrics, registered once and cached (handles are
// stable; every hit after that is a relaxed atomic add).
struct JobMetrics {
  Counter* submitted;
  Counter* ok;
  Counter* error;
  Counter* cancelled;
  Counter* slow;
  Counter* dedup_followers;
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* admission_rejections;
  Counter* trace_spans_dropped;
  Gauge* queue_depth;
  Histogram* latency;
};

JobMetrics& Metrics() {
  static JobMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new JobMetrics();
    m->submitted = reg.GetCounter("deepbase_jobs_submitted_total");
    m->ok = reg.GetCounter("deepbase_jobs_total{status=\"ok\"}");
    m->error = reg.GetCounter("deepbase_jobs_total{status=\"error\"}");
    m->cancelled = reg.GetCounter("deepbase_jobs_total{status=\"cancelled\"}");
    m->slow = reg.GetCounter("deepbase_slow_jobs_total");
    m->dedup_followers = reg.GetCounter("deepbase_dedup_followers_total");
    m->cache_hits = reg.GetCounter("deepbase_result_cache_hits_total");
    m->cache_misses = reg.GetCounter("deepbase_result_cache_misses_total");
    m->admission_rejections =
        reg.GetCounter("deepbase_admission_rejections_total");
    m->trace_spans_dropped =
        reg.GetCounter("deepbase_trace_spans_dropped_total");
    m->queue_depth = reg.GetGauge("deepbase_queue_depth");
    m->latency = reg.GetHistogram("deepbase_job_latency_seconds",
                                  DefaultLatencyBounds());
    return m;
  }();
  return *metrics;
}

/// Count one job reaching a terminal state. `wall_s` < 0 skips the
/// latency histogram (callers without a submission timestamp).
void CountJobTerminal(const char* status, double wall_s) {
  JobMetrics& m = Metrics();
  if (std::strcmp(status, "ok") == 0) {
    m.ok->Inc();
  } else if (std::strcmp(status, "cancelled") == 0) {
    m.cancelled->Inc();
  } else {
    m.error->Inc();
  }
  if (wall_s >= 0) m.latency->Observe(wall_s);
}

void HashStr(const std::string& s, uint64_t* h) {
  *h = Fnv1a(s.data(), s.size(), *h);
  *h = Fnv1a(";", 1, *h);
}

template <typename T>
void HashPod(const T& value, uint64_t* h) {
  *h = Fnv1a(&value, sizeof(value), *h);
}

/// The option values that can change scores or row sets; pointers
/// (store, caches, pool, cancel) and purely observational fields never
/// participate.
void HashOptions(const InspectOptions& o, uint64_t* h) {
  HashPod(o.block_size, h);
  HashPod(o.shuffle_seed, h);
  HashPod(o.passes, h);
  HashPod(o.streaming, h);
  HashPod(o.early_stopping, h);
  HashPod(o.model_merging, h);
  HashPod(o.corr_epsilon, h);
  HashPod(o.logreg_epsilon, h);
  HashPod(o.default_epsilon, h);
  // The shard count participates only under early stopping. Full sweeps
  // are shard-count-invariant: every mergeable measure's shard merge is
  // kExact (integer counts) or kBitExact (canonical pairwise-tree
  // reduction of per-block moments), and non-mergeable measures run on
  // the sequential lane regardless of shard count — so one cached result
  // serves every shard count. Early stopping breaks the invariance (each
  // shard lane truncates at its own convergence point, so the set of
  // processed blocks depends on the dealing), hence those runs stay
  // keyed by the resolved count.
  if (o.early_stopping) HashPod(o.num_shards, h);
  HashPod(o.time_budget_s, h);
  HashPod(o.max_blocks, h);
}

/// Resolved dataset fingerprint of a request: the catalog's registration
/// snapshot for named datasets, a live content hash for inline ones.
std::optional<uint64_t> DatasetFingerprintFor(const InspectRequest& request,
                                              const Catalog& catalog) {
  if (request.dataset != nullptr) {
    return DatasetFingerprint(*request.dataset);
  }
  if (!request.dataset_name.empty()) {
    Result<CatalogDataset> entry = catalog.GetDataset(request.dataset_name);
    if (!entry.ok()) return std::nullopt;
    return entry->fingerprint;
  }
  return std::nullopt;
}

/// Parse the catalog-version field out of a "cache:<fp>:<version>:<ds>"
/// blob key; false when the key is not a result-cache entry.
bool ParseBlobKeyVersion(const std::string& key, uint64_t* version) {
  constexpr char kPrefix[] = "cache:";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (key.rfind(kPrefix, 0) != 0) return false;
  const size_t fp_end = key.find(':', kPrefixLen);
  if (fp_end == std::string::npos) return false;
  const size_t version_end = key.find(':', fp_end + 1);
  if (version_end == std::string::npos) return false;
  uint64_t v = 0;
  for (size_t i = fp_end + 1; i < version_end; ++i) {
    const char c = key[i];
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *version = v;
  return true;
}

/// Shared deadline gate for both admission paths: a request whose
/// deadline has already passed is rejected up front with the typed error
/// instead of occupying a queue slot it can never use.
Status CheckAdmissionDeadline(const InspectOptions& options) {
  if (options.deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= options.deadline) {
    return Status::DeadlineExceeded(
        "job deadline expired before admission");
  }
  return Status::OK();
}

}  // namespace

// Only complete, deterministic runs are cacheable/dedupable: a cancelled
// or budget-truncated result depends on wall-clock timing. A deadline is
// the same hazard as a finite time budget (whether the run completes
// depends on the clock), so deadline-bearing requests are excluded too —
// a no-deadline waiter must never inherit a leader's kDeadlineExceeded.
bool DeterministicOptions(const InspectOptions& options) {
  return options.max_blocks == std::numeric_limits<size_t>::max() &&
         std::isinf(options.time_budget_s) &&
         options.deadline == std::chrono::steady_clock::time_point::max();
}

// Fingerprints hash this resolved value for early-stopping requests —
// never the raw option: a raw 0 resolves per-session, so a persisted
// result must not be served to a session whose engine would deal (and
// therefore truncate) blocks differently.
size_t ResolvedShardCountFor(const InspectOptions& options,
                             const SessionConfig& config) {
  size_t shards = options.num_shards;
  if (shards == 0 && options.pool != nullptr) {
    shards = options.pool->num_threads();
  }
  if (shards == 0) {
    // The session pool the scheduler would attach (ThreadPool's own
    // 0 = hardware-concurrency rule).
    shards = config.num_threads != 0
                 ? config.num_threads
                 : std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return std::min<size_t>(std::max<size_t>(shards, 1), 64);
}

std::optional<uint64_t> InspectRequestFingerprint(
    const InspectRequest& request, const Catalog& catalog,
    const InspectOptions& options) {
  // Cacheable requests are fully name-resolved: inline extractor,
  // hypothesis, or measure objects have no stable identity to key on.
  if (request.models.empty()) return std::nullopt;
  for (const InspectRequest::ModelRef& ref : request.models) {
    if (ref.extractor != nullptr || ref.name.empty()) return std::nullopt;
  }
  if (!request.hypotheses.empty()) return std::nullopt;
  if (!request.measures.empty()) return std::nullopt;

  uint64_t h = kFnvOffsetBasis;
  for (const InspectRequest::ModelRef& ref : request.models) {
    HashStr(ref.name, &h);
    HashPod(ref.group_by_layer, &h);
    for (const UnitGroupSpec& group : ref.groups) {
      HashStr(group.group_id, &h);
      h = Fnv1a(group.unit_ids.data(), group.unit_ids.size() * sizeof(int),
                h);
    }
  }
  for (const std::string& set : request.hypothesis_sets) HashStr(set, &h);
  HashStr("|filter", &h);
  for (const std::string& name : request.hypothesis_filter) HashStr(name, &h);
  std::optional<uint64_t> dataset_fp = DatasetFingerprintFor(request, catalog);
  if (!dataset_fp) return std::nullopt;
  HashPod(*dataset_fp, &h);
  HashStr("|measures", &h);
  for (const std::string& name : request.measure_names) HashStr(name, &h);
  const bool has_min = request.min_abs_unit_score.has_value();
  HashPod(has_min, &h);
  if (has_min) HashPod(*request.min_abs_unit_score, &h);
  HashOptions(options, &h);
  return h;
}

std::optional<std::string> BatchKeyFor(const InspectRequest& request,
                                       const Catalog& catalog,
                                       const InspectOptions& options) {
  if (request.models.empty()) return std::nullopt;
  std::string key;
  for (const InspectRequest::ModelRef& ref : request.models) {
    const Extractor* extractor = ref.extractor;
    if (extractor == nullptr) {
      if (ref.name.empty()) return std::nullopt;
      Result<CatalogModel> entry = catalog.GetModel(ref.name);
      if (!entry.ok() || entry->extractor == nullptr) return std::nullopt;
      extractor = entry->extractor;
    }
    key += extractor->model_id();
    key += '@';
    // The unit-group footprint: blocks are keyed by the unit *union* in
    // the scan, so only jobs with identical footprints can share cached
    // blocks — keeping different footprints in different groups stops a
    // layer-0 job's blocks from being held pending for a layer-1 job
    // that will never read them.
    uint64_t gh = kFnvOffsetBasis;
    gh = Fnv1a(&ref.group_by_layer, sizeof(ref.group_by_layer), gh);
    for (const UnitGroupSpec& group : ref.groups) {
      const uint64_t n = group.unit_ids.size();
      gh = Fnv1a(&n, sizeof(n), gh);
      gh = Fnv1a(group.unit_ids.data(), group.unit_ids.size() * sizeof(int),
                 gh);
    }
    key += std::to_string(gh);
    key += '|';
  }
  std::optional<uint64_t> dataset_fp = DatasetFingerprintFor(request, catalog);
  if (!dataset_fp) return std::nullopt;
  key += std::to_string(*dataset_fp);
  // Scan-shaping options: jobs with different block sequences would never
  // share cached blocks anyway, so keep their groups separate.
  key += '|';
  key += std::to_string(options.block_size);
  key += ':';
  key += std::to_string(options.shuffle_seed);
  key += ':';
  key += options.streaming ? 's' : 'm';
  key += ':';
  key += std::to_string(options.passes);
  return key;
}

std::string ResultCacheBlobKey(uint64_t fingerprint, uint64_t version,
                               uint64_t dataset_fingerprint) {
  return "cache:" + HexU64(fingerprint) + ":" + HexU64(version) + ":" +
         HexU64(dataset_fingerprint);
}

// ---------------------------------------------------------------------------
// ResultCache.
// ---------------------------------------------------------------------------

std::optional<ResultTable> ResultCache::Lookup(uint64_t fingerprint,
                                               uint64_t version,
                                               uint64_t dataset_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version < floor_version_) {
    // Below the admission floor: the catalog has already invalidated this
    // version; never serve it even if a late admission slipped an entry in.
    ++misses_;
    return std::nullopt;
  }
  auto it = index_.find({fingerprint, version});
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->table;
  }
  if (persist_) {
    Result<std::string> blob = store_->GetBlob(
        ResultCacheBlobKey(fingerprint, version, dataset_fingerprint));
    if (blob.ok()) {
      Result<ResultTable> table = ResultTable::DeserializeFromString(*blob);
      if (table.ok()) {
        // Revalidated by construction: the blob key carries the catalog
        // version and dataset fingerprint this lookup asked for.
        ++hits_;
        ++persistent_hits_;
        ResultTable value = std::move(table).ValueOrDie();
        ResultTable copy = value;
        AdmitLocked(fingerprint, version, std::move(value));
        return copy;
      }
    }
  }
  ++misses_;
  return std::nullopt;
}

void ResultCache::Insert(uint64_t fingerprint, uint64_t version,
                         uint64_t dataset_fingerprint, ResultTable table) {
  // Serialization does not depend on cache state; keep it off the lock.
  std::string serialized;
  if (persist_) serialized = table.SerializeToString();
  std::lock_guard<std::mutex> lock(mu_);
  if (version < floor_version_) {
    // The stale-admission window, closed: this result was computed under
    // a catalog version that a Register* has already invalidated. Had it
    // been admitted, no later InvalidateBelow would sweep it (the sweep
    // already ran) and a restarted session whose version counter re-
    // reaches `version` could be served a stale table.
    ++stale_rejections_;
    return;
  }
  if (persist_) {
    ++persistent_writes_;
    // Best-effort: a full disk fails the Put, the memory tier still
    // works. The write stays under mu_ deliberately — the floor check
    // above and the blob write must be atomic against InvalidateBelow's
    // purge, or a racing Register* could sweep the directory *before*
    // this stale blob lands and it would survive on disk.
    store_->PutBlob(
        ResultCacheBlobKey(fingerprint, version, dataset_fingerprint),
        serialized);
  }
  AdmitLocked(fingerprint, version, std::move(table));
}

void ResultCache::AdmitLocked(uint64_t fingerprint, uint64_t version,
                              ResultTable table) {
  auto it = index_.find({fingerprint, version});
  if (it != index_.end()) EraseLocked(it->second);
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.version = version;
  entry.bytes = table.EstimatedBytes();
  entry.table = std::move(table);
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[{fingerprint, version}] = lru_.begin();
  while (bytes_ > budget_ && lru_.size() > 1) {
    ++evictions_;
    EraseLocked(std::prev(lru_.end()));
  }
  if (bytes_ > budget_ && lru_.size() == 1) {
    // A single oversized result never fits; don't pin it.
    ++evictions_;
    EraseLocked(lru_.begin());
  }
}

void ResultCache::InvalidateBelow(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version <= floor_version_) return;  // already invalidated up to here
  floor_version_ = version;
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    if (it->version < version) {
      ++invalidations_;
      EraseLocked(it);
    }
    it = next;
  }
  if (persist_) {
    // Purge stale persisted entries too: a restarted session re-reaches
    // old version numbers (the counter starts at 0), so leaving them on
    // disk would let a different catalog at the same version be served a
    // stale table.
    for (const std::string& key : store_->BlobKeys()) {
      uint64_t blob_version = 0;
      if (!ParseBlobKeyVersion(key, &blob_version)) continue;
      if (blob_version < version) {
        store_->RemoveBlob(key);
        ++invalidations_;
      }
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase({it->fingerprint, it->version});
  lru_.erase(it);
}

std::string ResultCache::PeekTier(uint64_t fingerprint, uint64_t version,
                                  uint64_t dataset_fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (version < floor_version_) return "";
  if (index_.count({fingerprint, version}) > 0) return "memory";
  if (persist_ && store_->ContainsBlob(ResultCacheBlobKey(
                      fingerprint, version, dataset_fingerprint))) {
    return "persistent";
  }
  return "";
}

size_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
size_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
size_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
size_t ResultCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}
size_t ResultCache::persistent_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return persistent_writes_;
}
size_t ResultCache::persistent_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return persistent_hits_;
}
size_t ResultCache::stale_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_rejections_;
}
size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}
size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

// ---------------------------------------------------------------------------
// SchedulerStats.
// ---------------------------------------------------------------------------

void SchedulerStats::Accumulate(const SchedulerStats& other) {
#define DEEPBASE_SUM_FIELD(type, name) name += other.name;
  DEEPBASE_SCHEDULER_STATS_COUNTER_FIELDS(DEEPBASE_SUM_FIELD)
#undef DEEPBASE_SUM_FIELD
  // Gauges are point-in-time, not additive: the most recent poll wins.
  snapshot = other.snapshot;
}

// ---------------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------------

Scheduler::Scheduler(InspectionSession* session)
    : session_(session),
      result_cache_(session->config_.result_cache_budget_bytes,
                    session->store_.get(),
                    session->config_.persist_result_cache) {
  if (session->store_ != nullptr && session->config_.persist_result_cache &&
      session->config_.result_cache_disk_quota_bytes > 0) {
    session->store_->SetBlobNamespaceQuota(
        "cache", session->config_.result_cache_disk_quota_bytes);
  }
}

void Scheduler::OnCatalogMutation(uint64_t version) {
  result_cache_.InvalidateBelow(version);
}

std::optional<Scheduler::GroupHandle> Scheduler::AttachToGroup(
    const InspectRequest& request) {
  if (!session_->config_.enable_shared_scan) return std::nullopt;
  std::optional<std::string> key =
      BatchKeyFor(request, session_->catalog_,
                  request.options.value_or(session_->config_.options));
  if (!key) return std::nullopt;
  GroupHandle handle;
  handle.key = *key;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<SharedScan>& scan = groups_[*key];
  if (scan == nullptr) {
    scan = std::make_shared<SharedScan>(
        session_->config_.shared_scan_budget_bytes);
    ++groups_formed_;
  } else {
    ++jobs_coscheduled_;
  }
  handle.scan = scan;
  handle.client = std::make_shared<SharedScanClient>(scan);
  return handle;
}

void Scheduler::ReleaseGroup(GroupHandle* group) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    scan_extractions_ += group->client->extractions();
    scan_shared_hits_ += group->client->shared_hits();
  }
  group->client.reset();  // detaches this job from the scan
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group->key);
  if (it != groups_.end() && it->second == group->scan &&
      it->second->attached() == 0) {
    groups_.erase(it);
  }
  group->scan.reset();
}

size_t Scheduler::EstimateQueuedBytes(const InspectRequest& request) const {
  const Catalog& catalog = session_->catalog_;
  size_t units = 0;
  for (const InspectRequest::ModelRef& ref : request.models) {
    const Extractor* extractor = ref.extractor;
    if (extractor == nullptr && !ref.name.empty()) {
      Result<CatalogModel> entry = catalog.GetModel(ref.name);
      if (entry.ok()) extractor = entry->extractor;
    }
    if (extractor != nullptr) units += extractor->num_units();
  }
  const Dataset* dataset = request.dataset;
  if (dataset == nullptr && !request.dataset_name.empty()) {
    Result<CatalogDataset> entry = catalog.GetDataset(request.dataset_name);
    if (entry.ok()) dataset = entry->dataset;
  }
  const size_t symbols =
      dataset != nullptr ? dataset->num_records() * dataset->ns() : 0;
  const size_t estimate =
      symbols * std::max<size_t>(units, 1) * sizeof(float);
  // Unresolvable requests still occupy a queue slot; charge a floor.
  return std::max<size_t>(estimate, size_t{1} << 10);
}

void Scheduler::OnJobStarted(size_t queued_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_jobs_ > 0) --queued_jobs_;
  queued_bytes_ -= std::min(queued_bytes_, queued_bytes);
}

void Scheduler::OnJobFinished() {
  Metrics().queue_depth->Sub(1);
  std::lock_guard<std::mutex> lock(mu_);
  if (active_jobs_ > 0) --active_jobs_;
}

void Scheduler::ResolveCancelled(
    const std::shared_ptr<internal::JobState>& state, std::string message) {
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->status == JobStatus::kDone ||
      state->status == JobStatus::kCancelled) {
    return;
  }
  state->on_cancel = nullptr;
  state->status = JobStatus::kCancelled;
  state->result = Status::Cancelled(std::move(message));
  state->cv.notify_all();
}

void Scheduler::DeliverToWaiter(
    const std::shared_ptr<internal::JobState>& state,
    const Result<ResultTable>& result, const RuntimeStats& stats) {
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->status == JobStatus::kDone ||
      state->status == JobStatus::kCancelled) {
    return;  // already resolved (e.g. a concurrent CancelWaiter)
  }
  // A waiter whose Cancel() hook lost the race with this delivery still
  // gets the result: it is complete, the same rule as a Cancel() racing
  // a leader's completion.
  state->on_cancel = nullptr;
  RuntimeStats waiter_stats;
  waiter_stats.dedup_hits = 1;
  waiter_stats.total_s = stats.total_s;  // the leader's wall clock
  state->stats = waiter_stats;
  state->status = JobStatus::kDone;
  state->result = result;
  state->cv.notify_all();
}

void Scheduler::CancelWaiter(const std::shared_ptr<InflightJob>& job,
                             const std::shared_ptr<internal::JobState>& state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(job->waiters.begin(), job->waiters.end(), state);
    if (it == job->waiters.end()) {
      // Already delivered to, or promoted to leader (its run polls the
      // cancel flag): nothing to resolve here, and the leader is
      // untouched either way.
      return;
    }
    job->waiters.erase(it);
  }
  ResolveCancelled(state,
                   "job " + std::to_string(state->id) +
                       " cancelled while waiting on an identical in-flight "
                       "job");
  FinalizeJob(state, "cancelled");
}

void Scheduler::FinishInflight(const std::shared_ptr<InflightJob>& job,
                               Result<ResultTable> result,
                               const RuntimeStats& stats,
                               bool leader_cancelled) {
  RuntimeStats current_stats = stats;
  bool cancelled = leader_cancelled;
  // A promoted waiter whose run completed is resolved only after the
  // registry entry is retired, so "every handle resolved" implies "the
  // registry is clean" — no transiently observable in-flight entry.
  std::shared_ptr<internal::JobState> pending;
  RuntimeStats pending_stats;
  while (true) {
    std::vector<std::shared_ptr<internal::JobState>> to_cancel;
    std::vector<std::shared_ptr<internal::JobState>> to_deliver;
    std::shared_ptr<internal::JobState> promoted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled) {
        // The leader died without a complete result: promote the first
        // waiter that has not itself been cancelled; it re-runs the
        // request on this thread. Cancelled waiters resolve as cancelled.
        while (!job->waiters.empty()) {
          std::shared_ptr<internal::JobState> candidate =
              job->waiters.front();
          job->waiters.erase(job->waiters.begin());
          if (candidate->cancel.load(std::memory_order_relaxed)) {
            to_cancel.push_back(std::move(candidate));
          } else {
            promoted = std::move(candidate);
            break;
          }
        }
        if (promoted != nullptr) ++dedup_promotions_;
      }
      if (promoted == nullptr) {
        // Terminal: retire the registry entry, then deliver (the result
        // or the leader's cancellation) to every remaining waiter.
        job->done = true;
        to_deliver.swap(job->waiters);
        auto it = inflight_.find({job->fingerprint, job->version});
        if (it != inflight_.end() && it->second == job) inflight_.erase(it);
      }
    }
    for (const auto& state : to_cancel) {
      ResolveCancelled(state,
                       "job " + std::to_string(state->id) +
                           " cancelled while waiting on an identical "
                           "in-flight job");
      FinalizeJob(state, "cancelled");
    }
    if (promoted == nullptr) {
      if (pending != nullptr) {
        // The promoted ex-waiter that produced `result`: its terminal
        // state was held back until the registry retirement above.
        {
          std::lock_guard<std::mutex> lock(pending->mu);
          pending->stats = pending_stats;
          pending->status = JobStatus::kDone;
          pending->result = result;
          pending->cv.notify_all();
        }
        FinalizeJob(pending, result.ok() ? "ok" : "error");
      }
      for (const auto& state : to_deliver) {
        if (cancelled) {
          ResolveCancelled(state,
                           "leader of the deduplicated job was cancelled "
                           "and no waiter could be promoted");
          FinalizeJob(state, "cancelled");
        } else {
          DeliverToWaiter(state, result, current_stats);
          FinalizeJob(state, result.ok() ? "ok" : "error");
        }
      }
      return;
    }
    // Promotion: the ex-waiter becomes the leader and re-runs on this
    // thread with its own cancellation; later waiters stay attached (the
    // registry entry survives) and are served by this run.
    std::shared_ptr<Tracer> promoted_tracer;
    uint64_t promoted_root = 0;
    {
      std::lock_guard<std::mutex> lock(promoted->mu);
      promoted->on_cancel = nullptr;
      promoted->status = JobStatus::kRunning;
      promoted_tracer = promoted->tracer;
      promoted_root = promoted->root_span;
    }
    RuntimeStats promoted_stats;
    Result<ResultTable> promoted_result =
        Execute(job->request, AttachToGroup(job->request), job->fingerprint,
                job->version, job->dataset_fingerprint, &promoted->cancel,
                promoted->progress.get(), &promoted_stats,
                promoted_tracer.get(), promoted_root);
    pending.reset();
    if (promoted_stats.cancelled) {
      // Cancelled promotions resolve immediately (the next loop turn may
      // promote someone else; this handle's fate is already sealed).
      {
        std::lock_guard<std::mutex> lock(promoted->mu);
        promoted->stats = promoted_stats;
        promoted->status = JobStatus::kCancelled;
        promoted->result = Status::Cancelled(
            "job " + std::to_string(promoted->id) + " cancelled after " +
            std::to_string(promoted_stats.blocks_processed) + " blocks");
        promoted->cv.notify_all();
      }
      FinalizeJob(promoted, "cancelled");
    } else {
      // Completed (or errored): defer resolution until the registry
      // entry is retired on the next loop turn.
      pending = promoted;
      pending_stats = promoted_stats;
    }
    result = std::move(promoted_result);
    current_stats = promoted_stats;
    cancelled = promoted_stats.cancelled;
  }
}

void Scheduler::SetEngine(EngineFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  engine_fn_ = std::move(fn);
}

void Scheduler::FinalizeJob(const std::shared_ptr<internal::JobState>& state,
                            const char* status) {
  std::shared_ptr<Tracer> tracer;
  uint64_t root_span = 0;
  int64_t submit_ns = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->finalized) return;
    state->finalized = true;
    tracer = state->tracer;
    root_span = state->root_span;
    submit_ns = state->submit_ns;
  }
  const int64_t now_ns = TraceNowNs();
  const double wall_s =
      submit_ns > 0 ? static_cast<double>(now_ns - submit_ns) * 1e-9 : -1;
  CountJobTerminal(status, wall_s);
  if (tracer == nullptr) return;
  // The root span is recorded here, at the terminal transition, so the
  // slow-job dump below always sees a complete tree.
  TraceSpan root;
  root.span_id = root_span;
  root.parent_id = 0;
  root.name = "sched.job";
  root.start_ns = submit_ns;
  root.duration_ns = now_ns - submit_ns;
  root.tags = std::string("status=") + status;
  tracer->Record(std::move(root));
  // Per-job ring overflow, exported once at the terminal transition (the
  // `finalized` latch above guarantees exactly one count per job).
  if (tracer->dropped() > 0) {
    Metrics().trace_spans_dropped->Inc(tracer->dropped());
  }
  const double threshold = session_->config_.slow_job_threshold_s;
  if (threshold > 0 && wall_s > threshold) {
    Metrics().slow->Inc();
    DB_LOG(Warn) << "slow job trace=" << HexU64(tracer->trace_id())
                 << " wall_s=" << wall_s << " threshold_s=" << threshold
                 << " status=" << status << " dropped_spans="
                 << tracer->dropped() << " — span tree follows";
    for (const TraceSpan& span : tracer->Spans()) {
      DB_LOG(Warn) << FormatSpanLogLine(tracer->trace_id(), span, submit_ns);
    }
  }
}

Result<ResultTable> Scheduler::Execute(const InspectRequest& request,
                                       std::optional<GroupHandle> group,
                                       std::optional<uint64_t> fingerprint,
                                       uint64_t version,
                                       uint64_t dataset_fingerprint,
                                       const std::atomic<bool>* cancel,
                                       ProgressCounter* progress,
                                       RuntimeStats* stats, Tracer* tracer,
                                       uint64_t parent_span) {
  InspectRequest effective = request;
  InspectOptions options = session_->EffectiveOptions(request);
  if (cancel != nullptr) options.cancel = cancel;
  if (progress != nullptr) options.progress = progress;
  if (group) options.shared_scan = group->client.get();
  if (options.tracer == nullptr && tracer != nullptr) {
    // A request that already carries its own tracer (a worker replaying
    // a coordinator assignment) keeps it; otherwise the job's tracer
    // rides into the engine here.
    options.tracer = tracer;
    options.trace_parent_span = parent_span;
  }
  effective.options = options;
  RuntimeStats local;
  EngineFn engine;
  {
    std::lock_guard<std::mutex> lock(mu_);
    engine = engine_fn_;
  }
  Result<ResultTable> result =
      engine ? engine(effective, session_->config_.options, &local)
             : RunInspectRequest(effective, session_->catalog_,
                                 session_->config_.options, &local);
  if (group) ReleaseGroup(&*group);
  // A fingerprint may exist purely for dedup; only admit to the cache
  // when the result cache itself is enabled.
  if (fingerprint && session_->config_.enable_result_cache) {
    local.result_cache_misses = 1;
    Metrics().cache_misses->Inc();
    // Only complete, deterministic runs are cacheable. Staleness is
    // handled inside Insert: its admission floor was raised synchronously
    // by any Register* that happened while this job ran, so a result
    // computed under an invalidated catalog version is rejected there —
    // no check-then-insert race against the catalog here.
    const bool complete =
        result.ok() && !local.cancelled && DeterministicOptions(options);
    if (complete) {
      result_cache_.Insert(*fingerprint, version, dataset_fingerprint,
                           *result);
    }
  }
  if (stats != nullptr) *stats = local;
  return result;
}

Result<ResultTable> Scheduler::RunSync(const InspectRequest& request,
                                       RuntimeStats* stats) {
  const int64_t submit_ns = TraceNowNs();
  Metrics().submitted->Inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++jobs_scheduled_;
  }
  const uint64_t version = session_->catalog_.version();
  const InspectOptions request_options =
      request.options.value_or(session_->config_.options);
  DB_RETURN_NOT_OK(CheckAdmissionDeadline(request_options));
  DB_FAILPOINT("scheduler.admit");
  std::optional<uint64_t> fingerprint;
  uint64_t dataset_fp = 0;
  // The fingerprint keys both the result cache and the dedup registry;
  // either feature alone needs it. Bit-exact shard merges make full
  // sweeps shard-count-invariant, so only early-stopping requests pin
  // the *resolved* shard count (see ResolvedShardCountFor/HashOptions).
  if (session_->config_.enable_result_cache ||
      session_->config_.enable_inflight_dedup) {
    InspectOptions fp_options = request_options;
    if (request_options.early_stopping) {
      fp_options.num_shards =
          ResolvedShardCountFor(request_options, session_->config_);
    }
    fingerprint = InspectRequestFingerprint(request, session_->catalog_,
                                            fp_options);
    if (fingerprint) {
      dataset_fp =
          DatasetFingerprintFor(request, session_->catalog_).value_or(0);
    }
  }
  if (fingerprint && session_->config_.enable_result_cache) {
    result_cache_.InvalidateBelow(version);
    if (std::optional<ResultTable> hit =
            result_cache_.Lookup(*fingerprint, version, dataset_fp)) {
      if (stats != nullptr) {
        *stats = RuntimeStats{};
        stats->result_cache_hits = 1;
      }
      Metrics().cache_hits->Inc();
      CountJobTerminal(
          "ok", static_cast<double>(TraceNowNs() - submit_ns) * 1e-9);
      return std::move(*hit);
    }
  }

  const bool dedupable = fingerprint.has_value() &&
                         session_->config_.enable_inflight_dedup &&
                         DeterministicOptions(request_options);
  std::shared_ptr<InflightJob> inflight;
  std::shared_ptr<internal::JobState> waiter;
  Status admitted = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dedupable ? inflight_.find({*fingerprint, version})
                        : inflight_.end();
    if (dedupable && it != inflight_.end() && !it->second->done) {
      // Identical request already in flight: park this caller on it.
      waiter = std::make_shared<internal::JobState>();
      waiter->progress = it->second->progress;  // poll the leader's run
      waiter->submit_ns = submit_ns;
      it->second->waiters.push_back(waiter);
      ++dedup_followers_;
      Metrics().dedup_followers->Inc();
    } else {
      // Admission first, leader registration second, atomically: a
      // rejected request must leave no registry entry behind. The sync
      // path runs immediately, so only the concurrent-job quota applies
      // (nothing ever sits in a queue).
      const SessionConfig& config = session_->config_;
      if (config.max_concurrent_jobs > 0 &&
          active_jobs_ >= config.max_concurrent_jobs) {
        ++admission_rejections_;
        Metrics().admission_rejections->Inc();
        admitted = Status::ResourceExhausted(
            "concurrent-job quota exhausted: " +
            std::to_string(active_jobs_) + " active, quota " +
            std::to_string(config.max_concurrent_jobs));
      } else {
        ++active_jobs_;
        Metrics().queue_depth->Add(1);
        if (dedupable) {
          inflight = std::make_shared<InflightJob>();
          inflight->fingerprint = *fingerprint;
          inflight->version = version;
          inflight->dataset_fingerprint = dataset_fp;
          inflight->request = request;
          inflight->progress = std::make_shared<ProgressCounter>();
          inflight_[{*fingerprint, version}] = inflight;
        }
      }
    }
  }
  if (waiter != nullptr) {
    std::unique_lock<std::mutex> lock(waiter->mu);
    waiter->cv.wait(lock, [&waiter] {
      return waiter->status == JobStatus::kDone ||
             waiter->status == JobStatus::kCancelled;
    });
    if (stats != nullptr) *stats = waiter->stats;
    return *waiter->result;
  }
  if (!admitted.ok()) {
    CountJobTerminal("error", -1);
    return admitted;
  }

  RuntimeStats local;
  Result<ResultTable> result =
      Execute(request, AttachToGroup(request), fingerprint, version,
              dataset_fp, /*cancel=*/nullptr,
              inflight ? inflight->progress.get() : nullptr, &local);
  if (inflight) {
    FinishInflight(inflight, result, local, /*leader_cancelled=*/false);
  }
  OnJobFinished();
  CountJobTerminal(local.cancelled ? "cancelled"
                                   : (result.ok() ? "ok" : "error"),
                   static_cast<double>(TraceNowNs() - submit_ns) * 1e-9);
  if (stats != nullptr) *stats = local;
  return result;
}

JobHandle Scheduler::Submit(InspectRequest request, uint64_t trace_id) {
  const int64_t submit_ns = TraceNowNs();
  Metrics().submitted->Inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++jobs_scheduled_;
  }
  // The job's tracer exists before any admission decision, so even
  // born-terminal handles carry a (tiny) trace. An inbound trace_id (the
  // serving layer) is adopted; 0 mints a fresh one.
  std::shared_ptr<Tracer> tracer;
  uint64_t root_span = 0;
  if (session_->config_.enable_tracing) {
    tracer = std::make_shared<Tracer>(
        trace_id != 0 ? trace_id : NewTraceId(),
        session_->config_.trace_ring_capacity);
    root_span = NewSpanId();
  }
  auto attach_trace = [&](const std::shared_ptr<internal::JobState>& state) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->tracer = tracer;
    state->root_span = root_span;
    state->submit_ns = submit_ns;
  };
  const uint64_t version = session_->catalog_.version();
  const InspectOptions request_options =
      request.options.value_or(session_->config_.options);
  {
    // Same admission gates as RunSync, surfaced as a born-terminal handle
    // (Submit has no Status channel).
    Status admit = CheckAdmissionDeadline(request_options);
    if (admit.ok() && failpoint::Armed()) {
      admit = failpoint::Evaluate("scheduler.admit");
    }
    if (!admit.ok()) {
      auto state = session_->NewJobState();
      attach_trace(state);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->status = JobStatus::kDone;
        state->result = admit;
        state->cv.notify_all();
      }
      FinalizeJob(state, "error");
      return JobHandle(state);
    }
  }
  std::optional<uint64_t> fingerprint;
  uint64_t dataset_fp = 0;
  // The fingerprint keys both the result cache and the dedup registry;
  // either feature alone needs it. Bit-exact shard merges make full
  // sweeps shard-count-invariant, so only early-stopping requests pin
  // the *resolved* shard count (see ResolvedShardCountFor/HashOptions).
  if (session_->config_.enable_result_cache ||
      session_->config_.enable_inflight_dedup) {
    InspectOptions fp_options = request_options;
    if (request_options.early_stopping) {
      fp_options.num_shards =
          ResolvedShardCountFor(request_options, session_->config_);
    }
    fingerprint = InspectRequestFingerprint(request, session_->catalog_,
                                            fp_options);
    if (fingerprint) {
      dataset_fp =
          DatasetFingerprintFor(request, session_->catalog_).value_or(0);
    }
  }
  if (fingerprint && session_->config_.enable_result_cache) {
    result_cache_.InvalidateBelow(version);
    if (std::optional<ResultTable> hit =
            result_cache_.Lookup(*fingerprint, version, dataset_fp)) {
      // Served without touching the engine: the job is born done.
      auto state = session_->NewJobState();
      attach_trace(state);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->status = JobStatus::kDone;
        state->stats.result_cache_hits = 1;
        state->result = std::move(*hit);
        state->cv.notify_all();
      }
      Metrics().cache_hits->Inc();
      FinalizeJob(state, "ok");
      return JobHandle(state);
    }
  }

  // One critical section decides the job's role: waiter on an identical
  // in-flight job (bypasses admission — it consumes no engine
  // resources), rejected over quota, or admitted leader.
  const SessionConfig& config = session_->config_;
  const bool dedupable = fingerprint.has_value() &&
                         config.enable_inflight_dedup &&
                         DeterministicOptions(request_options);
  const bool quota_enabled =
      config.max_concurrent_jobs > 0 || config.max_queued_bytes > 0;
  const size_t estimate =
      config.max_queued_bytes > 0 ? EstimateQueuedBytes(request) : 0;
  std::shared_ptr<InflightJob> inflight;
  Status admitted = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dedupable) {
      auto it = inflight_.find({*fingerprint, version});
      if (it != inflight_.end() && !it->second->done) {
        std::shared_ptr<InflightJob> job = it->second;
        auto state = session_->NewJobState();
        attach_trace(state);
        state->progress = job->progress;  // poll the leader's run
        job->waiters.push_back(state);
        ++dedup_followers_;
        Metrics().dedup_followers->Inc();
        {
          // Cancel on a waiter resolves the waiter, never the leader.
          std::lock_guard<std::mutex> state_lock(state->mu);
          std::weak_ptr<internal::JobState> weak_state = state;
          state->on_cancel = [this, job, weak_state] {
            if (auto locked = weak_state.lock()) CancelWaiter(job, locked);
          };
        }
        return JobHandle(state);
      }
    }
    if (quota_enabled) {
      if (config.max_concurrent_jobs > 0 &&
          active_jobs_ >= config.max_concurrent_jobs) {
        ++admission_rejections_;
        Metrics().admission_rejections->Inc();
        admitted = Status::ResourceExhausted(
            "concurrent-job quota exhausted: " +
            std::to_string(active_jobs_) + " active, quota " +
            std::to_string(config.max_concurrent_jobs));
      } else if (config.max_queued_bytes > 0 && queued_jobs_ > 0 &&
                 queued_bytes_ + estimate > config.max_queued_bytes) {
        // Keyed on queued (not running) jobs: the first job into an
        // empty queue is always admitted, even over-size, so a single
        // large request cannot wedge the session.
        ++admission_rejections_;
        Metrics().admission_rejections->Inc();
        admitted = Status::ResourceExhausted(
            "queued-bytes quota exhausted: " +
            std::to_string(queued_bytes_) + " queued + " +
            std::to_string(estimate) + " requested > quota " +
            std::to_string(config.max_queued_bytes));
      }
    }
    if (admitted.ok()) {
      ++active_jobs_;
      Metrics().queue_depth->Add(1);
      ++queued_jobs_;
      queued_bytes_ += estimate;
      if (dedupable) {
        inflight = std::make_shared<InflightJob>();
        inflight->fingerprint = *fingerprint;
        inflight->version = version;
        inflight->dataset_fingerprint = dataset_fp;
        inflight->request = request;
        inflight->progress = std::make_shared<ProgressCounter>();
        inflight_[{*fingerprint, version}] = inflight;
      }
    }
  }
  if (!admitted.ok()) {
    auto state = session_->NewJobState();
    attach_trace(state);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->status = JobStatus::kDone;
      state->result = admitted;
      state->cv.notify_all();
    }
    FinalizeJob(state, "error");
    return JobHandle(state);
  }

  if (tracer != nullptr) {
    // Admission is over: one span covers the deadline gate, fingerprint,
    // cache probe, and the dedup/quota critical section.
    TraceSpan admit_span;
    admit_span.span_id = NewSpanId();
    admit_span.parent_id = root_span;
    admit_span.name = "sched.admit";
    admit_span.start_ns = submit_ns;
    admit_span.duration_ns = TraceNowNs() - submit_ns;
    if (inflight != nullptr) admit_span.tags = "dedup=leader";
    tracer->Record(std::move(admit_span));
  }

  ThreadPool* pool = session_->EnsurePool();
  auto state = session_->NewJobState();
  attach_trace(state);
  // The leader's handle and the in-flight registry share one progress
  // counter, so waiters attached later poll this run's live counters.
  if (inflight) state->progress = inflight->progress;
  // Group membership is claimed at submit time (not when the worker picks
  // the job up), so every job queued in one burst lands in one group.
  std::optional<GroupHandle> group = AttachToGroup(request);
  pool->Submit([this, state, fingerprint, version, dataset_fp, estimate,
                inflight, submit_ns, group = std::move(group),
                request = std::move(request)]() mutable {
    OnJobStarted(estimate);
    const int64_t start_ns = TraceNowNs();
    std::shared_ptr<Tracer> job_tracer;
    uint64_t job_root = 0;
    bool dropped = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->queue_s = static_cast<double>(start_ns - submit_ns) * 1e-9;
      job_tracer = state->tracer;
      job_root = state->root_span;
      if (state->cancel.load(std::memory_order_relaxed)) {
        state->status = JobStatus::kCancelled;
        state->result =
            Status::Cancelled("job " + std::to_string(state->id) +
                              " cancelled before execution");
        state->cv.notify_all();
        dropped = true;
      } else {
        state->status = JobStatus::kRunning;
      }
    }
    if (job_tracer != nullptr) {
      TraceSpan queue_span;
      queue_span.span_id = NewSpanId();
      queue_span.parent_id = job_root;
      queue_span.name = "sched.queue";
      queue_span.start_ns = submit_ns;
      queue_span.duration_ns = start_ns - submit_ns;
      job_tracer->Record(std::move(queue_span));
    }
    if (dropped) {
      // Detach so the fused group's pending-block accounting does not
      // wait on a job that will never read anything.
      if (group) ReleaseGroup(&*group);
      if (inflight) {
        // The leader never ran: promote a waiter (it re-runs here, on
        // the thread the leader would have used) or fail them cleanly.
        FinishInflight(inflight, Status::Cancelled("leader cancelled"),
                       RuntimeStats{}, /*leader_cancelled=*/true);
      }
      OnJobFinished();
      FinalizeJob(state, "cancelled");
      return;
    }
    RuntimeStats stats;
    Result<ResultTable> result =
        Execute(request, std::move(group), fingerprint, version, dataset_fp,
                &state->cancel, state->progress.get(), &stats,
                job_tracer.get(), job_root);
    auto resolve_leader = [&] {
      std::lock_guard<std::mutex> lock(state->mu);
      state->stats = stats;
      // Key off what the engine actually observed (stats.cancelled), not a
      // re-read of the atomic: a Cancel() racing with completion must not
      // discard a fully computed result.
      if (stats.cancelled) {
        state->status = JobStatus::kCancelled;
        state->result =
            Status::Cancelled("job " + std::to_string(state->id) +
                              " cancelled after " +
                              std::to_string(stats.blocks_processed) +
                              " blocks");
      } else {
        state->status = JobStatus::kDone;
        state->result = result;
      }
      state->cv.notify_all();
    };
    const char* final_status =
        stats.cancelled ? "cancelled" : (result.ok() ? "ok" : "error");
    if (inflight && stats.cancelled) {
      // A cancelled leader resolves promptly — FinishInflight may spend a
      // while re-running the request for a promoted waiter.
      resolve_leader();
      FinalizeJob(state, final_status);
      FinishInflight(inflight, std::move(result), stats, true);
    } else if (inflight) {
      // Retire the registry entry before the leader's own handle resolves
      // so "all handles done" always implies "registry clean".
      FinishInflight(inflight, result, stats, false);
      resolve_leader();
      FinalizeJob(state, final_status);
    } else {
      resolve_leader();
      FinalizeJob(state, final_status);
    }
    OnJobFinished();
  });
  return JobHandle(state);
}

SchedulerProbe Scheduler::Probe(const InspectRequest& request) const {
  SchedulerProbe p;
  const Catalog& catalog = session_->catalog_;
  const SessionConfig& config = session_->config_;
  p.catalog_version = catalog.version();
  const InspectOptions options =
      request.options.value_or(config.options);
  p.deterministic = DeterministicOptions(options);
  p.resolved_shard_count = ResolvedShardCountFor(options, config);
  // Same fingerprint the Submit paths compute: early-stopping requests
  // pin the resolved shard count (see HashOptions).
  if (config.enable_result_cache || config.enable_inflight_dedup) {
    InspectOptions fp_options = options;
    if (options.early_stopping) {
      fp_options.num_shards = p.resolved_shard_count;
    }
    p.fingerprint = InspectRequestFingerprint(request, catalog, fp_options);
    if (p.fingerprint) {
      p.dataset_fingerprint =
          DatasetFingerprintFor(request, catalog).value_or(0);
    }
  }
  p.cacheable = p.fingerprint.has_value() && config.enable_result_cache;
  if (p.cacheable) {
    p.cache_tier = result_cache_.PeekTier(*p.fingerprint, p.catalog_version,
                                          p.dataset_fingerprint);
  }
  p.dedupable = p.fingerprint.has_value() && config.enable_inflight_dedup &&
                p.deterministic;
  p.shared_scan_enabled = config.enable_shared_scan;
  p.group_key = BatchKeyFor(request, catalog, options);
  p.estimated_queued_bytes = EstimateQueuedBytes(request);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (p.dedupable) {
      auto it = inflight_.find({*p.fingerprint, p.catalog_version});
      p.dedup_inflight = it != inflight_.end() && !it->second->done;
    }
    if (p.shared_scan_enabled && p.group_key) {
      p.group_exists = groups_.count(*p.group_key) > 0;
    }
    p.active_jobs = active_jobs_;
    p.queued_bytes = queued_bytes_;
    // A dedup waiter bypasses admission entirely; otherwise mirror the
    // quota gates Submit would apply right now.
    if (!p.dedup_inflight) {
      if (config.max_concurrent_jobs > 0 &&
          active_jobs_ >= config.max_concurrent_jobs) {
        p.would_admit = false;
        p.admission_detail =
            "concurrent-job quota exhausted: " + std::to_string(active_jobs_) +
            " active, quota " + std::to_string(config.max_concurrent_jobs);
      } else if (config.max_queued_bytes > 0 && queued_jobs_ > 0 &&
                 queued_bytes_ + p.estimated_queued_bytes >
                     config.max_queued_bytes) {
        p.would_admit = false;
        p.admission_detail =
            "queued-bytes quota exhausted: " + std::to_string(queued_bytes_) +
            " queued + " + std::to_string(p.estimated_queued_bytes) +
            " requested > quota " + std::to_string(config.max_queued_bytes);
      }
    }
  }
  if (p.would_admit && !CheckAdmissionDeadline(options).ok()) {
    p.would_admit = false;
    p.admission_detail = "job deadline expired before admission";
  }
  return p;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.jobs_scheduled = jobs_scheduled_;
    s.groups_formed = groups_formed_;
    s.jobs_coscheduled = jobs_coscheduled_;
    s.scan_extractions = scan_extractions_;
    s.scan_shared_hits = scan_shared_hits_;
    s.dedup_followers = dedup_followers_;
    s.dedup_promotions = dedup_promotions_;
    s.admission_rejections = admission_rejections_;
    s.snapshot.inflight_jobs = inflight_.size();
    s.snapshot.active_jobs = active_jobs_;
    s.snapshot.queued_bytes = queued_bytes_;
  }
  s.result_cache_hits = result_cache_.hits();
  s.result_cache_misses = result_cache_.misses();
  s.result_cache_evictions = result_cache_.evictions();
  s.result_cache_invalidations = result_cache_.invalidations();
  s.result_cache_persistent_hits = result_cache_.persistent_hits();
  s.result_cache_persistent_writes = result_cache_.persistent_writes();
  s.result_cache_stale_rejections = result_cache_.stale_rejections();
  s.snapshot.result_cache_bytes = result_cache_.bytes();
  s.snapshot.result_cache_entries = result_cache_.entries();
  return s;
}

size_t Scheduler::active_groups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_.size();
}

size_t Scheduler::inflight_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

}  // namespace deepbase
