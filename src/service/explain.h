// EXPLAIN / EXPLAIN ANALYZE for inspection jobs: the plan-introspection
// layer (ISSUE: the system picks the plan — cache, shared scan, shards,
// store tiers, cluster placement — and this module makes that plan
// visible before the job runs, and reconciles it against what actually
// happened after).
//
// An InspectionPlan is a tree of PlanNodes assembled from strictly
// non-mutating probes (Scheduler::Probe, ResultCache::PeekTier,
// BehaviorStore::PeekTier, InspectionSession::ProbeCluster): a dry-run
// Explain() executes zero blocks and leaves every cache, counter, and
// LRU byte-identical. ExplainAnalyze() runs the job through the normal
// Submit path and annotates each node with actual phase seconds and
// counters from RuntimeStats + the job's trace spans, flagging
// plan-vs-actual divergences (a predicted cache hit that missed, a
// cluster dispatch that degraded to local, reassigned shard ranges).
//
// Rendering is deterministic by contract: the same request against the
// same session state renders byte-identical text (fixed-precision
// floats, no timestamps, no pointers, no per-run ids) — the test suite
// asserts on plans instead of reverse-engineering counters. The only
// build-varying line is the kernel node (SIMD lanes vs scalar).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "util/status.h"

namespace deepbase {

class InspectionSession;

/// \brief One node of an inspection plan tree. `fields` are ordered
/// key=value pairs rendered on the node's line (an empty key renders the
/// bare value first — the node's verdict, e.g. "hit (memory)").
/// `actuals` are filled only by ExplainAnalyze; `divergences` are
/// human-readable plan-vs-actual contradictions.
struct PlanNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> fields;
  std::vector<std::pair<std::string, std::string>> actuals;
  std::vector<std::string> divergences;
  std::vector<PlanNode> children;

  void Add(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
  }
  void AddActual(std::string key, std::string value) {
    actuals.emplace_back(std::move(key), std::move(value));
  }
  /// First direct child with this name; nullptr when absent.
  PlanNode* Child(const std::string& child_name);
};

/// \brief A full inspection plan (dry run) or reconciled plan (analyze).
struct InspectionPlan {
  PlanNode root;
  bool analyzed = false;

  /// \brief Deterministic text tree (two-space indent, one node per
  /// line, `!!` prefix on divergence lines).
  std::string ToText() const;
  /// \brief The same tree as JSON (field order preserved via arrays).
  std::string ToJson() const;
  /// \brief Every divergence in the tree, depth-first.
  std::vector<std::string> AllDivergences() const;
};

/// \brief Strip a leading `EXPLAIN [ANALYZE]` keyword pair (case
/// insensitive) off `statement`. Returns true when EXPLAIN was present;
/// `*analyze` reports the ANALYZE variant.
bool StripExplainInspectPrefix(std::string* statement, bool* analyze);

/// \brief Parse a textual INSPECT statement (core/inspect_parser.h
/// grammar, without the EXPLAIN prefix) and explain it through
/// `session` — the textual-frontend entry shared by SqlSession and the
/// serving layer.
Result<InspectionPlan> ExplainInspectStatement(InspectionSession* session,
                                               const std::string& statement,
                                               bool analyze);

/// \brief Live system introspection (the statusz dump): live jobs with
/// current phase + progress, scheduler counters, result-cache and
/// store occupancy per namespace, cluster worker liveness, and armed
/// failpoints. Text (json=false) or a JSON object.
std::string RenderStatusz(InspectionSession* session, bool json);

/// \brief Push the session store's occupancy gauges and mmap-hit counter
/// into the global MetricsRegistry (deepbase_store_mmap_hits_total,
/// deepbase_store_memory_bytes, per-namespace occupancy gauges). Called
/// at scrape/statusz time; no-op for storeless sessions.
void PublishStoreMetrics(InspectionSession* session);

}  // namespace deepbase
