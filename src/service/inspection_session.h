// InspectionSession: the single front door for Deep Neural Inspection.
// A session owns the shared Catalog (models, hypothesis sets, datasets,
// measures), an optional disk-backed BehaviorStore, a HypothesisCache, and
// a ThreadPool, and exposes the one inspect() verb of the paper both
// synchronously and as async jobs:
//
//   InspectionSession session({.store_dir = "/tmp/deepbase"});
//   session.catalog().RegisterModel("toy_lm", &extractor);
//   session.catalog().RegisterHypotheses("vowels", {is_vowel});
//   session.catalog().RegisterDataset("words", &dataset);
//
//   InspectRequest req;
//   req.models.push_back({.name = "toy_lm"});
//   req.hypothesis_sets = {"vowels"};
//   req.dataset_name = "words";
//   Result<ResultTable> r = session.Inspect(req);      // sync
//
//   JobHandle job = session.Submit(req);               // async
//   ... job.Poll() / job.Cancel() ...
//   const Result<ResultTable>& rr = job.Wait();
//
// Every frontend (InspectQuery, the textual INSPECT parser, SqlSession)
// compiles to an InspectRequest against the session's catalog, so results,
// the behavior store, and the hypothesis cache are shared across all of
// them — the prerequisite for multi-tenant serving (ROADMAP north star).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/behavior_store.h"
#include "core/cache.h"
#include "core/catalog.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace deepbase {

/// \brief Session construction knobs.
struct SessionConfig {
  /// Default engine options for requests that don't carry their own.
  InspectOptions options;
  /// Worker threads for async jobs (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Directory for the disk-backed behavior store; empty disables it.
  /// With a store, re-inspecting a (model, dataset) pair serves unit
  /// behaviors from memory/disk instead of re-running the model (§6.3).
  /// Store entries are keyed by (model_id, dataset fingerprint): register
  /// a retrained model under a fresh id (e.g. "lm@epoch6") so its stale
  /// behaviors are never served.
  std::string store_dir;
  size_t store_memory_budget_bytes = 64ull << 20;
  /// Per-namespace memory-tier quotas for the store ("unit:" and "hyp:"
  /// keys); 0 = no quota beyond the global budget. Evicted entries stay
  /// on disk.
  size_t store_unit_quota_bytes = 0;
  size_t store_hyp_quota_bytes = 0;
  /// Shared hypothesis-behavior cache (Figure 9); 0 values disables it.
  size_t hypothesis_cache_values = size_t{1} << 26;

  // --- Multi-query scheduler (service/scheduler.h). ---
  /// Completed results are cached by (request fingerprint, catalog
  /// version) and identical re-submissions skip the engine entirely.
  bool enable_result_cache = true;
  size_t result_cache_budget_bytes = 8ull << 20;
  /// Concurrent jobs over one (model, dataset) fuse their block
  /// extraction through a SharedScan (one extraction pass per group).
  bool enable_shared_scan = true;
  /// Bytes of extracted blocks a fused group may keep in flight; blocks
  /// over budget are re-extracted per job instead of cached.
  size_t shared_scan_budget_bytes = 128ull << 20;

  /// In-flight dedup: an identical concurrent Submit()/Inspect() (same
  /// request fingerprint, same catalog version) attaches as a waiter on
  /// the running job and receives its ResultTable — one extraction pass,
  /// one measure run, bit-identical scores. Cancelling a waiter never
  /// kills the leader; cancelling the leader promotes a live waiter to
  /// re-run.
  bool enable_inflight_dedup = true;

  /// Persist result-cache entries through the behavior store's blob tier
  /// ("cache:" namespace), keyed by (fingerprint, catalog version,
  /// dataset fingerprint), so a restarted session answers repeat queries
  /// with zero engine work. Requires store_dir; entries are revalidated
  /// against the current catalog version at load time, and stale versions
  /// are purged when the catalog mutates. Caveat: across restarts,
  /// hypothesis/model *names* are their identity (functions and weights
  /// cannot be content-fingerprinted — the store tiers' existing
  /// contract); register changed definitions under fresh names or
  /// disable this flag when definitions churn under fixed names.
  bool persist_result_cache = true;
  /// On-disk byte quota for the "cache:" blob namespace (0 = unlimited).
  size_t result_cache_disk_quota_bytes = 32ull << 20;

  // --- Admission control (per-tenant quotas; this session is the
  // tenant). Over-quota submissions are rejected with a typed
  // kResourceExhausted status instead of queueing without bound. Result
  // cache hits and dedup waiters consume no engine resources and are
  // always admitted.
  /// Max jobs queued or running at once (0 = unlimited).
  size_t max_concurrent_jobs = 0;
  /// Max estimated bytes of extraction work sitting in the queue
  /// (0 = unlimited). A submission that would overflow a non-empty queue
  /// is rejected; the first job in an empty queue is always admitted so
  /// the session cannot wedge.
  size_t max_queued_bytes = 0;

  // --- Observability (util/trace.h, util/metrics.h). ---
  /// Per-job span tracing: every async job gets a Tracer whose spans
  /// (scheduler queue, engine phases, cluster hops) are readable through
  /// JobHandle::TraceSpans(). Runtime switch; the compile-time kill is
  /// -DDEEPBASE_TRACE_DISABLED.
  bool enable_tracing = true;
  /// Span ring capacity per job (oldest spans drop beyond this).
  size_t trace_ring_capacity = 256;
  /// Jobs whose submit→terminal wall time exceeds this log their full
  /// span tree (one structured line per span, level Warn) exactly once
  /// and count into deepbase_slow_jobs_total. 0 disables the slow-job
  /// log.
  double slow_job_threshold_s = 0;
};

/// \brief Lifecycle of an async inspection job.
enum class JobStatus { kQueued, kRunning, kDone, kCancelled };

/// \brief Snapshot of a job's live progress (JobHandle::Poll overload).
/// `blocks_total` is the engine's planned dispatch count — 0 until the
/// block loop has planned (and forever, for jobs served without the
/// engine: result-cache hits and dedup waiters report the leader's
/// counters or 0/0). Early stopping may complete a job below
/// `blocks_total`. The network serving layer streams exactly these
/// numbers, so local and remote polling always agree.
struct JobProgress {
  JobStatus status = JobStatus::kQueued;
  uint64_t blocks_completed = 0;
  uint64_t blocks_total = 0;
  uint64_t records_processed = 0;
};

namespace internal {
struct JobState {
  uint64_t id = 0;
  mutable std::mutex mu;
  std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;
  std::atomic<bool> cancel{false};
  std::optional<Result<ResultTable>> result;
  RuntimeStats stats;
  /// Live engine progress, shared with the scheduler (and, for dedup
  /// waiters, with the leader's run — a waiter's Poll reports the
  /// leader's live counters). Never null.
  std::shared_ptr<ProgressCounter> progress =
      std::make_shared<ProgressCounter>();
  /// Invoked by JobHandle::Cancel() after the cancel flag is set (read
  /// under mu, run outside it). The scheduler installs it on dedup
  /// waiters so cancelling a waiter resolves it immediately instead of
  /// leaving it parked until the leader finishes; cleared (under mu) when
  /// the job reaches a terminal state.
  std::function<void()> on_cancel;

  // --- Observability (set by the scheduler at submission; all guarded
  // by mu except the Tracer, which is internally synchronized).
  std::shared_ptr<Tracer> tracer;  ///< null = tracing off for this job
  uint64_t root_span = 0;          ///< span id of the "sched.job" root
  int64_t submit_ns = 0;           ///< TraceNowNs() at submission
  double queue_s = 0;              ///< admission → execution start
  /// Terminal bookkeeping (root span, job metrics, slow-job log) already
  /// ran — it must run exactly once per job.
  bool finalized = false;
};
}  // namespace internal

/// \brief Critical-path breakdown of one finished job: where its wall
/// time went, phase by phase. extract/score are CPU-second sums across
/// lanes (== wall on one core); wire_s is filled by the serving layer
/// for remote jobs and stays 0 locally; worker_hop_s is the distributed
/// dispatch overhead beyond worker compute.
struct JobSummary {
  uint64_t trace_id = 0;
  double queue_s = 0;       ///< admission → execution start
  double extract_s = 0;     ///< unit + hypothesis extraction
  double score_s = 0;       ///< measure inspection
  double merge_s = 0;       ///< replica / coordinator merge
  double wire_s = 0;        ///< serialization + socket writes (remote)
  double worker_hop_s = 0;  ///< cluster dispatch beyond worker run time
  double total_s = 0;       ///< engine wall clock
};

/// \brief Shared handle to an async job submitted via
/// InspectionSession::Submit. Cheap to copy; all members are safe to call
/// from any thread.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const;

  /// \brief Non-blocking status probe.
  JobStatus Poll() const;
  /// \brief Non-blocking status + progress probe: blocks completed /
  /// total planned (live while running, final once done), the same
  /// numbers the serving layer streams to remote clients.
  JobStatus Poll(JobProgress* progress) const;
  bool Done() const;

  /// \brief Block until the job finishes (or is cancelled) and return its
  /// result. Cancelled jobs yield Status kCancelled.
  const Result<ResultTable>& Wait() const;

  /// \brief Request cooperative cancellation. Queued jobs are dropped;
  /// running jobs stop at the next block boundary (the same plumbing as
  /// InspectOptions::time_budget_s / max_blocks).
  void Cancel();

  /// \brief Per-job engine stats; complete once Done().
  RuntimeStats Stats() const;

  /// \brief Critical-path phase breakdown; complete once Done().
  JobSummary Summary() const;

  /// \brief Snapshot of the job's recorded trace spans (empty when
  /// tracing is disabled). Ordered by start time; safe while running.
  std::vector<TraceSpan> TraceSpans() const;

 private:
  friend class InspectionSession;
  friend class Scheduler;
  explicit JobHandle(std::shared_ptr<internal::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::JobState> state_;
};

class InspectQuery;
class Scheduler;
struct InspectionPlan;

/// \brief What a cluster coordinator attached to this session would do
/// with the next job — the cluster half of an EXPLAIN plan. Registered by
/// ClusterCoordinator::Start (cleared on Shutdown) through
/// InspectionSession::SetClusterProbe, so the service layer can render
/// cluster placement without a layering cycle onto src/cluster.
struct ClusterPlanProbe {
  bool active = false;          ///< a coordinator engine is installed
  uint32_t total_shards = 0;    ///< coordinator default shard count
  bool degrade_to_local = false;
  std::vector<std::string> live_workers;  ///< sorted live worker ids
};

/// \brief The facade. Thread-safe: Submit/Inspect may be called
/// concurrently; jobs share the catalog, store, hypothesis cache, result
/// cache, and the multi-query scheduler's shared scans.
class InspectionSession {
 public:
  explicit InspectionSession(SessionConfig config = {});
  /// Waits for all outstanding jobs.
  ~InspectionSession();

  InspectionSession(const InspectionSession&) = delete;
  InspectionSession& operator=(const InspectionSession&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  /// \brief The catalog's monotonic mutation counter (bumped by every
  /// Register*). Keys the result cache; handy for debugging staleness.
  uint64_t catalog_version() const;

  /// \brief The multi-query scheduler every Inspect()/Submit() routes
  /// through (result cache, shared-scan job batching; see
  /// service/scheduler.h for its stats and knobs).
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }

  /// \brief Session-default engine options (used by requests without their
  /// own). Mutate between queries, not concurrently with running jobs.
  InspectOptions* mutable_default_options() { return &config_.options; }
  const InspectOptions& default_options() const { return config_.options; }

  /// \brief The session's behavior store (nullptr when store_dir was
  /// empty).
  BehaviorStore* store() { return store_.get(); }
  HypothesisCache* hypothesis_cache() { return hyp_cache_.get(); }
  /// \brief The async worker pool, created lazily by the first Submit()
  /// (sync-only sessions never spawn threads).
  ThreadPool* thread_pool() { return EnsurePool(); }

  /// \brief Synchronous inspection: compile against the catalog, serve
  /// behaviors through the session store/cache, run the engine.
  Result<ResultTable> Inspect(const InspectRequest& request,
                              RuntimeStats* stats = nullptr);
  /// \brief Convenience: run a fluent-builder query through the session.
  Result<ResultTable> Inspect(const InspectQuery& query,
                              RuntimeStats* stats = nullptr);

  /// \brief Asynchronous inspection: enqueue on the session pool and
  /// return a handle with Poll()/Wait()/Cancel() and per-job stats.
  /// Inline pointers inside the request (extractors, datasets) must stay
  /// valid until the job completes.
  JobHandle Submit(InspectRequest request);
  JobHandle Submit(const InspectQuery& query);
  /// \brief Submit under an externally assigned trace id (the serving
  /// layer's path: the client mints the id, the server adopts it, so one
  /// id names the job on both sides of the wire). trace_id == 0 mints a
  /// fresh id.
  JobHandle Submit(InspectRequest request, uint64_t trace_id);

  /// \brief Handles of all jobs ever submitted (newest last).
  std::vector<JobHandle> Jobs() const;

  // --- EXPLAIN / EXPLAIN ANALYZE (service/explain.h; defined in
  // explain.cc). Explain() is a pure dry run: it renders the plan the
  // scheduler/cluster/store would execute without running a single block
  // or mutating any cache/counter. ExplainAnalyze() submits the job,
  // waits, and annotates every plan node with actual phase seconds and
  // counters, flagging plan-vs-actual divergences.
  Result<InspectionPlan> Explain(const InspectRequest& request);
  Result<InspectionPlan> ExplainAnalyze(const InspectRequest& request);

  /// \brief Install (or clear, with nullptr) the cluster-coordinator
  /// probe feeding EXPLAIN's placement plan. Called by
  /// ClusterCoordinator::Start/Shutdown.
  void SetClusterProbe(std::function<ClusterPlanProbe()> probe);
  /// \brief Snapshot of the attached cluster (active = false when no
  /// coordinator is installed).
  ClusterPlanProbe ProbeCluster() const;

 private:
  friend class Scheduler;

  /// Apply the session substrate (store, cache, thread pool) to a
  /// request's options. Requests that shard their block loop
  /// (num_shards != 1, including the pool-sized default of 0) get the
  /// session pool: jobs and shards share it with a fair budget —
  /// ParallelFor is cooperative, so each job's own thread always makes
  /// progress and idle workers accelerate whoever queued first.
  InspectOptions EffectiveOptions(const InspectRequest& request);
  /// Create the worker pool on first use.
  ThreadPool* EnsurePool();
  /// Allocate + register the state of a new job (any status).
  std::shared_ptr<internal::JobState> NewJobState();

  SessionConfig config_;
  Catalog catalog_;
  std::unique_ptr<BehaviorStore> store_;
  std::unique_ptr<HypothesisCache> hyp_cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Scheduler> scheduler_;

  mutable std::mutex jobs_mu_;
  uint64_t next_job_id_ = 1;
  std::vector<std::shared_ptr<internal::JobState>> jobs_;

  mutable std::mutex cluster_probe_mu_;
  std::function<ClusterPlanProbe()> cluster_probe_;  // guarded by ^
};

}  // namespace deepbase
