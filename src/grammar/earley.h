// Earley chart parser over character strings with multi-character
// terminals. Replaces NLTK's chart parser in the hypothesis-generation
// pipeline (paper §4.2 / §6.1).
//
// A scan step at position i matches a terminal's full surface string
// against text[i..], advancing by its length; chart positions are therefore
// character positions and the resulting parse-tree spans align exactly with
// per-symbol unit behaviors.

#pragma once

#include <string>

#include "grammar/cfg.h"
#include "util/status.h"

namespace deepbase {

/// \brief Earley parser for a fixed grammar.
class EarleyParser {
 public:
  explicit EarleyParser(const Cfg* cfg) : cfg_(cfg) {}

  /// \brief Parse `text` from the grammar's start symbol.
  ///
  /// Returns the first complete parse found (the grammars used here are
  /// nearly unambiguous; any parse yields the same hypothesis spans for the
  /// rule occurrences we inspect), or Invalid if the text is not in the
  /// language.
  Result<ParseTree> Parse(const std::string& text) const;

  /// \brief Recognition only (no tree construction).
  bool Recognizes(const std::string& text) const;

 private:
  const Cfg* cfg_;
};

}  // namespace deepbase
