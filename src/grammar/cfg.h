// Context-free grammar with rule weights (PCFG), a depth-bounded weighted
// sampler, and parse-tree structures. Substitutes for the NLTK grammar
// tooling the paper uses to generate SQL corpora and hypothesis functions.
//
// Terminals are strings; at the character level a terminal may span several
// input symbols (e.g. the keyword "SELECT "), and parse-tree spans are
// expressed in *symbol* (character) positions so they align 1:1 with unit
// behaviors.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace deepbase {

/// \brief A grammar symbol id. Nonterminals and terminals share one id
/// space; Cfg tracks which is which.
using SymbolId = int;

/// \brief One production lhs -> rhs with a sampling weight.
struct Rule {
  SymbolId lhs;
  std::vector<SymbolId> rhs;  ///< empty = epsilon production
  double weight = 1.0;
};

/// \brief A weighted context-free grammar.
class Cfg {
 public:
  /// \brief Intern a nonterminal by name (idempotent).
  SymbolId Nonterminal(const std::string& name);
  /// \brief Intern a terminal by its surface string (idempotent).
  SymbolId Terminal(const std::string& text);

  bool IsTerminal(SymbolId id) const { return terminal_[id]; }
  const std::string& Name(SymbolId id) const { return names_[id]; }
  /// \brief Id of a nonterminal if it exists, else -1.
  SymbolId FindNonterminal(const std::string& name) const;

  /// \brief Add a production. Symbols must already be interned.
  void AddRule(SymbolId lhs, std::vector<SymbolId> rhs, double weight = 1.0);

  /// \brief Convenience: lhs by name, rhs as a mixed list where each element
  /// is either `nt("name")`-style nonterminal (marked by leading '<' and
  /// trailing '>') or a literal terminal string.
  void AddRuleSpec(const std::string& lhs, const std::vector<std::string>& rhs,
                   double weight = 1.0);

  void SetStart(SymbolId s) { start_ = s; }
  SymbolId start() const { return start_; }

  size_t num_rules() const { return rules_.size(); }
  const std::vector<Rule>& rules() const { return rules_; }
  const std::vector<size_t>& RulesFor(SymbolId lhs) const;

  /// \brief All nonterminal ids, in interning order.
  std::vector<SymbolId> Nonterminals() const;

  /// \brief Minimal derivation depth per symbol (used by the sampler to
  /// terminate recursion). Computed lazily.
  int MinDepth(SymbolId id) const;

 private:
  void ComputeMinDepths() const;

  std::vector<std::string> names_;
  std::vector<bool> terminal_;
  std::map<std::string, SymbolId> nonterminal_index_;
  std::map<std::string, SymbolId> terminal_index_;
  std::vector<Rule> rules_;
  std::map<SymbolId, std::vector<size_t>> rules_by_lhs_;
  SymbolId start_ = -1;

  mutable std::vector<int> min_depth_;  // lazily computed
};

/// \brief A node in a parse tree. Spans are half-open [begin, end) over
/// *symbol* positions (characters for char-level grammars).
struct ParseNode {
  SymbolId symbol;
  size_t begin = 0;
  size_t end = 0;
  std::vector<std::unique_ptr<ParseNode>> children;

  bool IsLeaf() const { return children.empty(); }
};

/// \brief An owned parse tree plus the text it parses.
struct ParseTree {
  std::unique_ptr<ParseNode> root;
  std::string text;

  /// \brief Collect spans of every node labeled `symbol` (pre-order).
  std::vector<std::pair<size_t, size_t>> SpansOf(SymbolId symbol) const;
  /// \brief Visit all nodes pre-order.
  void Visit(const std::function<void(const ParseNode&)>& fn) const;
};

/// \brief Depth-bounded weighted sampling from a PCFG.
class GrammarSampler {
 public:
  GrammarSampler(const Cfg* cfg, uint64_t seed) : cfg_(cfg), rng_(seed) {}

  /// \brief Sample one string from the start symbol. Beyond `soft_depth`,
  /// only minimal-depth rules are chosen, guaranteeing termination.
  std::string Sample(int soft_depth = 24);

  /// \brief Sample a string together with its derivation tree (spans are
  /// exact by construction; no parsing needed).
  ParseTree SampleTree(int soft_depth = 24);

 private:
  std::unique_ptr<ParseNode> Expand(SymbolId sym, int depth, int soft_depth,
                                    std::string* out);

  const Cfg* cfg_;
  Rng rng_;
};

}  // namespace deepbase
