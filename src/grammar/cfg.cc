#include "grammar/cfg.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "util/logging.h"

namespace deepbase {

SymbolId Cfg::Nonterminal(const std::string& name) {
  auto it = nonterminal_index_.find(name);
  if (it != nonterminal_index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.push_back(name);
  terminal_.push_back(false);
  nonterminal_index_.emplace(name, id);
  min_depth_.clear();
  return id;
}

SymbolId Cfg::Terminal(const std::string& text) {
  auto it = terminal_index_.find(text);
  if (it != terminal_index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.push_back(text);
  terminal_.push_back(true);
  terminal_index_.emplace(text, id);
  min_depth_.clear();
  return id;
}

SymbolId Cfg::FindNonterminal(const std::string& name) const {
  auto it = nonterminal_index_.find(name);
  return it == nonterminal_index_.end() ? -1 : it->second;
}

void Cfg::AddRule(SymbolId lhs, std::vector<SymbolId> rhs, double weight) {
  DB_DCHECK(!IsTerminal(lhs));
  size_t idx = rules_.size();
  rules_.push_back(Rule{lhs, std::move(rhs), weight});
  rules_by_lhs_[lhs].push_back(idx);
  min_depth_.clear();
}

void Cfg::AddRuleSpec(const std::string& lhs,
                      const std::vector<std::string>& rhs, double weight) {
  SymbolId lhs_id = Nonterminal(lhs);
  std::vector<SymbolId> rhs_ids;
  for (const auto& item : rhs) {
    if (item.size() >= 2 && item.front() == '<' && item.back() == '>') {
      rhs_ids.push_back(Nonterminal(item.substr(1, item.size() - 2)));
    } else {
      rhs_ids.push_back(Terminal(item));
    }
  }
  AddRule(lhs_id, std::move(rhs_ids), weight);
  if (start_ < 0) start_ = lhs_id;
}

const std::vector<size_t>& Cfg::RulesFor(SymbolId lhs) const {
  static const std::vector<size_t> kEmpty;
  auto it = rules_by_lhs_.find(lhs);
  return it == rules_by_lhs_.end() ? kEmpty : it->second;
}

std::vector<SymbolId> Cfg::Nonterminals() const {
  std::vector<SymbolId> out;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (!terminal_[i]) out.push_back(static_cast<SymbolId>(i));
  }
  return out;
}

void Cfg::ComputeMinDepths() const {
  const int kInf = std::numeric_limits<int>::max() / 4;
  min_depth_.assign(names_.size(), kInf);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (terminal_[i]) min_depth_[i] = 0;
  }
  // Bellman-Ford style relaxation over rules.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules_) {
      int depth = 0;
      for (SymbolId s : rule.rhs) depth = std::max(depth, min_depth_[s]);
      if (depth < kInf && depth + 1 < min_depth_[rule.lhs]) {
        min_depth_[rule.lhs] = depth + 1;
        changed = true;
      }
    }
  }
}

int Cfg::MinDepth(SymbolId id) const {
  if (min_depth_.empty()) ComputeMinDepths();
  return min_depth_[id];
}

std::vector<std::pair<size_t, size_t>> ParseTree::SpansOf(
    SymbolId symbol) const {
  std::vector<std::pair<size_t, size_t>> spans;
  Visit([&](const ParseNode& node) {
    if (node.symbol == symbol) spans.emplace_back(node.begin, node.end);
  });
  return spans;
}

void ParseTree::Visit(
    const std::function<void(const ParseNode&)>& fn) const {
  if (!root) return;
  std::function<void(const ParseNode&)> rec = [&](const ParseNode& node) {
    fn(node);
    for (const auto& child : node.children) rec(*child);
  };
  rec(*root);
}

std::string GrammarSampler::Sample(int soft_depth) {
  std::string out;
  Expand(cfg_->start(), 0, soft_depth, &out);
  return out;
}

ParseTree GrammarSampler::SampleTree(int soft_depth) {
  ParseTree tree;
  tree.root = Expand(cfg_->start(), 0, soft_depth, &tree.text);
  return tree;
}

std::unique_ptr<ParseNode> GrammarSampler::Expand(SymbolId sym, int depth,
                                                  int soft_depth,
                                                  std::string* out) {
  auto node = std::make_unique<ParseNode>();
  node->symbol = sym;
  node->begin = out->size();
  if (cfg_->IsTerminal(sym)) {
    out->append(cfg_->Name(sym));
    node->end = out->size();
    return node;
  }
  const auto& rule_ids = cfg_->RulesFor(sym);
  DB_DCHECK(!rule_ids.empty());
  size_t chosen;
  if (depth >= soft_depth) {
    // Force termination: among this nonterminal's rules, take the one whose
    // deepest RHS symbol has minimal derivation depth.
    chosen = rule_ids[0];
    int best = std::numeric_limits<int>::max();
    for (size_t ri : rule_ids) {
      int d = 0;
      for (SymbolId s : cfg_->rules()[ri].rhs) {
        d = std::max(d, cfg_->MinDepth(s));
      }
      if (d < best) {
        best = d;
        chosen = ri;
      }
    }
  } else {
    std::vector<double> weights;
    weights.reserve(rule_ids.size());
    for (size_t ri : rule_ids) weights.push_back(cfg_->rules()[ri].weight);
    chosen = rule_ids[rng_.Categorical(weights)];
  }
  for (SymbolId child_sym : cfg_->rules()[chosen].rhs) {
    node->children.push_back(Expand(child_sym, depth + 1, soft_depth, out));
  }
  node->end = out->size();
  return node;
}

}  // namespace deepbase
