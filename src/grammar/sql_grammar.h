// The SQL subset grammar used by the paper's scalability benchmark (§6.1):
// a character-level PCFG of SELECT queries whose complexity (number of
// production rules, 95-171 in the paper) is controlled by a level knob.

#pragma once

#include "grammar/cfg.h"

namespace deepbase {

/// \brief Build the SQL PCFG at the given complexity level.
///
/// Level 0: SELECT ... FROM lists; level 1 adds WHERE predicates;
/// level 2 adds ORDER BY / LIMIT; level 3 adds aggregates, GROUP BY /
/// HAVING, DISTINCT and JOIN. Rule counts grow roughly from ~50 to ~170;
/// use `Cfg::num_rules()` for the exact count reported by benchmarks.
Cfg MakeSqlGrammar(int level);

/// \brief The nesting-parenthesis PCFG from the accuracy benchmark
/// (Appendix C): r_i -> i r_i | ( r_{i+1} ) for i < 4, r_4 -> ε | 4 r_4,
/// generating strings like "0(1(2((44))))".
Cfg MakeParenGrammar();

}  // namespace deepbase
