#include "grammar/earley.h"

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "util/logging.h"

namespace deepbase {

namespace {

// Internal parse node with shared children so Earley items can be copied
// cheaply; converted to the public unique_ptr tree on success.
struct SNode {
  SymbolId symbol;
  size_t begin, end;
  std::vector<std::shared_ptr<SNode>> children;
};

std::unique_ptr<ParseNode> ToParseNode(const SNode& n) {
  auto out = std::make_unique<ParseNode>();
  out->symbol = n.symbol;
  out->begin = n.begin;
  out->end = n.end;
  for (const auto& c : n.children) out->children.push_back(ToParseNode(*c));
  return out;
}

struct EItem {
  size_t rule;
  size_t dot;
  size_t origin;
  std::vector<std::shared_ptr<SNode>> kids;
};

using ItemKey = std::tuple<size_t, size_t, size_t>;

// Nullable nonterminals (can derive the empty string).
std::set<SymbolId> NullableSet(const Cfg& cfg) {
  std::set<SymbolId> nullable;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : cfg.rules()) {
      if (nullable.count(rule.lhs)) continue;
      bool all = true;
      for (SymbolId s : rule.rhs) {
        if (cfg.IsTerminal(s) || !nullable.count(s)) {
          all = false;
          break;
        }
      }
      if (all) {
        nullable.insert(rule.lhs);
        changed = true;
      }
    }
  }
  return nullable;
}

class Chart {
 public:
  explicit Chart(size_t n) : items_(n + 1), seen_(n + 1) {}

  // Returns true if the item was new at `pos`.
  bool Add(size_t pos, EItem item) {
    ItemKey key{item.rule, item.dot, item.origin};
    if (!seen_[pos].insert(key).second) return false;
    items_[pos].push_back(std::move(item));
    return true;
  }

  std::vector<EItem>& At(size_t pos) { return items_[pos]; }

 private:
  std::vector<std::vector<EItem>> items_;
  std::vector<std::set<ItemKey>> seen_;
};

// Shared recognizer/parser driver. On success (if build_tree), returns the
// root SNode of the first complete parse.
Result<std::shared_ptr<SNode>> Run(const Cfg& cfg, const std::string& text,
                                   bool build_tree) {
  const size_t n = text.size();
  Chart chart(n);
  const std::set<SymbolId> nullable = NullableSet(cfg);

  for (size_t ri : cfg.RulesFor(cfg.start())) {
    chart.Add(0, EItem{ri, 0, 0, {}});
  }

  for (size_t pos = 0; pos <= n; ++pos) {
    // Index-based loop: completion/prediction may append to chart.At(pos).
    for (size_t i = 0; i < chart.At(pos).size(); ++i) {
      EItem item = chart.At(pos)[i];  // copy: vector may reallocate
      const Rule& rule = cfg.rules()[item.rule];
      if (item.dot < rule.rhs.size()) {
        SymbolId sym = rule.rhs[item.dot];
        if (cfg.IsTerminal(sym)) {
          // Scan: match the terminal's full surface string.
          const std::string& surface = cfg.Name(sym);
          if (!surface.empty() &&
              text.compare(pos, surface.size(), surface) == 0) {
            EItem advanced = item;
            advanced.dot++;
            if (build_tree) {
              auto leaf = std::make_shared<SNode>();
              leaf->symbol = sym;
              leaf->begin = pos;
              leaf->end = pos + surface.size();
              advanced.kids.push_back(std::move(leaf));
            }
            chart.Add(pos + surface.size(), std::move(advanced));
          }
        } else {
          // Predict.
          for (size_t ri : cfg.RulesFor(sym)) {
            chart.Add(pos, EItem{ri, 0, pos, {}});
          }
          // Aycock-Horspool nullable fix: advance over a nullable
          // nonterminal immediately with an empty constituent.
          if (nullable.count(sym)) {
            EItem advanced = item;
            advanced.dot++;
            if (build_tree) {
              auto empty = std::make_shared<SNode>();
              empty->symbol = sym;
              empty->begin = pos;
              empty->end = pos;
              advanced.kids.push_back(std::move(empty));
            }
            chart.Add(pos, std::move(advanced));
          }
        }
      } else {
        // Complete: attach this constituent to items waiting at origin.
        std::shared_ptr<SNode> node;
        if (build_tree) {
          node = std::make_shared<SNode>();
          node->symbol = rule.lhs;
          node->begin = item.origin;
          node->end = pos;
          node->children = item.kids;
        }
        // Iterate a snapshot of the origin set; additions to it with the
        // searched dot-symbol will themselves be completed when reached.
        for (size_t j = 0; j < chart.At(item.origin).size(); ++j) {
          // Copy: Add() may reallocate the vector when origin == pos.
          EItem waiting = chart.At(item.origin)[j];
          const Rule& wrule = cfg.rules()[waiting.rule];
          if (waiting.dot < wrule.rhs.size() &&
              wrule.rhs[waiting.dot] == rule.lhs) {
            EItem advanced = waiting;
            advanced.dot++;
            if (build_tree) advanced.kids.push_back(node);
            chart.Add(pos, std::move(advanced));
          }
        }
      }
    }
  }

  for (const EItem& item : chart.At(n)) {
    const Rule& rule = cfg.rules()[item.rule];
    if (rule.lhs == cfg.start() && item.dot == rule.rhs.size() &&
        item.origin == 0) {
      if (!build_tree) return std::shared_ptr<SNode>();
      auto root = std::make_shared<SNode>();
      root->symbol = rule.lhs;
      root->begin = 0;
      root->end = n;
      root->children = item.kids;
      return root;
    }
  }
  return Status::Invalid("text is not in the language");
}

}  // namespace

Result<ParseTree> EarleyParser::Parse(const std::string& text) const {
  DB_ASSIGN_OR_RETURN(std::shared_ptr<SNode> root,
                      Run(*cfg_, text, /*build_tree=*/true));
  ParseTree tree;
  tree.text = text;
  tree.root = ToParseNode(*root);
  return tree;
}

bool EarleyParser::Recognizes(const std::string& text) const {
  return Run(*cfg_, text, /*build_tree=*/false).ok();
}

}  // namespace deepbase
