#include "grammar/sql_grammar.h"

#include <string>

namespace deepbase {

namespace {

// Adds `name -> "0" | ... | "9"` (10 rules). Each syntactic context gets
// its own digit nonterminal, mirroring how generated SQL grammars spell out
// lexical rules per token class; this is also what scales the rule count
// across complexity levels.
void AddDigits(Cfg* cfg, const std::string& name) {
  for (int d = 0; d <= 9; ++d) {
    cfg->AddRuleSpec(name, {std::string(1, static_cast<char>('0' + d))});
  }
}

}  // namespace

Cfg MakeSqlGrammar(int level) {
  Cfg cfg;
  // ---- Level 0: SELECT core ------------------------------------------
  cfg.AddRuleSpec("query", {"<select_core>"}, 2.0);
  cfg.AddRuleSpec("select_core", {"<select_clause>", "<from_clause>"});
  cfg.AddRuleSpec("select_clause", {"SELECT ", "<select_list>"});
  cfg.AddRuleSpec("select_list", {"<result_column>"}, 3.0);
  cfg.AddRuleSpec("select_list", {"<result_column>", ", ", "<select_list>"});
  cfg.AddRuleSpec("result_column", {"<column_ref>"});
  cfg.AddRuleSpec("column_ref", {"<table_name>", ".", "<column_name>"});
  cfg.AddRuleSpec("table_name", {"table_", "<table_digit>"});
  cfg.AddRuleSpec("column_name",
                  {"col_", "<col_digit>", "<col_digit>", "<col_digit>",
                   "<col_digit>", "<col_digit>"});
  cfg.AddRuleSpec("from_clause", {" FROM ", "<table_list>"});
  cfg.AddRuleSpec("table_list", {"<table_name>"}, 3.0);
  cfg.AddRuleSpec("table_list", {"<table_name>", ", ", "<table_list>"});
  AddDigits(&cfg, "table_digit");
  AddDigits(&cfg, "col_digit");
  cfg.SetStart(cfg.FindNonterminal("query"));
  if (level == 0) return cfg;

  // ---- Level 1: WHERE predicates --------------------------------------
  cfg.AddRuleSpec("query", {"<select_core>", "<where_clause>"}, 2.0);
  cfg.AddRuleSpec("where_clause", {" WHERE ", "<predicate>"});
  cfg.AddRuleSpec("predicate", {"<comparison>"}, 4.0);
  cfg.AddRuleSpec("predicate", {"<comparison>", " AND ", "<predicate>"});
  cfg.AddRuleSpec("predicate", {"<comparison>", " OR ", "<predicate>"});
  cfg.AddRuleSpec("comparison", {"<column_ref>", "<cmp_op>", "<value>"});
  cfg.AddRuleSpec("cmp_op", {" = "}, 3.0);
  cfg.AddRuleSpec("cmp_op", {" > "});
  cfg.AddRuleSpec("cmp_op", {" < "});
  cfg.AddRuleSpec("cmp_op", {" >= "});
  cfg.AddRuleSpec("cmp_op", {" <= "});
  cfg.AddRuleSpec("cmp_op", {" <> "});
  cfg.AddRuleSpec("value", {"<number>"}, 2.0);
  cfg.AddRuleSpec("value", {"<string_literal>"});
  cfg.AddRuleSpec("value", {"<column_ref>"});
  cfg.AddRuleSpec("number", {"<num_digit>"}, 2.0);
  cfg.AddRuleSpec("number", {"<num_digit>", "<num_digit>"}, 2.0);
  cfg.AddRuleSpec("number", {"<num_digit>", "<num_digit>", "<num_digit>"});
  cfg.AddRuleSpec("string_literal", {"'str_", "<str_digit>", "'"});
  AddDigits(&cfg, "num_digit");
  AddDigits(&cfg, "str_digit");
  if (level == 1) return cfg;

  // ---- Level 2: ORDER BY / LIMIT --------------------------------------
  cfg.AddRuleSpec("query", {"<select_core>", "<order_clause>"});
  cfg.AddRuleSpec("query",
                  {"<select_core>", "<where_clause>", "<order_clause>"});
  cfg.AddRuleSpec("query", {"<select_core>", "<where_clause>",
                            "<limit_clause>"});
  cfg.AddRuleSpec("query", {"<select_core>", "<order_clause>",
                            "<limit_clause>"});
  cfg.AddRuleSpec("query", {"<select_core>", "<where_clause>",
                            "<order_clause>", "<limit_clause>"});
  cfg.AddRuleSpec("order_clause", {" ORDER BY ", "<ordering_term>"});
  cfg.AddRuleSpec("ordering_term", {"<column_ref>"}, 2.0);
  cfg.AddRuleSpec("ordering_term", {"<column_ref>", " ASC"});
  cfg.AddRuleSpec("ordering_term", {"<column_ref>", " DESC"});
  cfg.AddRuleSpec("limit_clause", {" LIMIT ", "<number>"});
  if (level == 2) return cfg;

  // ---- Level 3: aggregates, GROUP BY / HAVING, DISTINCT, JOIN ---------
  cfg.AddRuleSpec("result_column", {"<agg_expr>"});
  cfg.AddRuleSpec("agg_expr", {"<agg_fn>", "(", "<column_ref>", ")"});
  cfg.AddRuleSpec("agg_fn", {"COUNT"}, 2.0);
  cfg.AddRuleSpec("agg_fn", {"SUM"});
  cfg.AddRuleSpec("agg_fn", {"AVG"});
  cfg.AddRuleSpec("agg_fn", {"MIN"});
  cfg.AddRuleSpec("agg_fn", {"MAX"});
  cfg.AddRuleSpec("group_clause", {" GROUP BY ", "<group_list>"});
  cfg.AddRuleSpec("group_list", {"<column_ref>"}, 2.0);
  cfg.AddRuleSpec("group_list", {"<column_ref>", ", ", "<group_list>"});
  cfg.AddRuleSpec("having_clause", {" HAVING ", "<comparison>"});
  cfg.AddRuleSpec("query", {"<select_core>", "<group_clause>"});
  cfg.AddRuleSpec("query",
                  {"<select_core>", "<where_clause>", "<group_clause>"});
  cfg.AddRuleSpec("query",
                  {"<select_core>", "<group_clause>", "<having_clause>"});
  cfg.AddRuleSpec("query", {"<select_core>", "<where_clause>",
                            "<group_clause>", "<having_clause>"});
  cfg.AddRuleSpec("query", {"<select_core>", "<where_clause>",
                            "<group_clause>", "<order_clause>"});
  cfg.AddRuleSpec("select_clause",
                  {"SELECT ", "DISTINCT ", "<select_list>"}, 0.3);
  cfg.AddRuleSpec("from_clause",
                  {" FROM ", "<table_name>", "<join_clause>"}, 0.5);
  cfg.AddRuleSpec("join_clause", {" JOIN ", "<table_name>", " ON ",
                                  "<column_ref>", " = ", "<column_ref>"});
  return cfg;
}

Cfg MakeParenGrammar() {
  Cfg cfg;
  // r_i -> i r_i | ( r_{i+1} ) for i < 4; r_4 -> ε | 4 r_4.
  for (int i = 0; i < 4; ++i) {
    std::string ri = "r" + std::to_string(i);
    std::string rn = "r" + std::to_string(i + 1);
    cfg.AddRuleSpec(ri, {std::to_string(i), "<" + ri + ">"});
    cfg.AddRuleSpec(ri, {"(", "<" + rn + ">", ")"});
  }
  SymbolId r4 = cfg.Nonterminal("r4");
  cfg.AddRule(r4, {});  // epsilon
  cfg.AddRuleSpec("r4", {"4", "<r4>"});
  cfg.SetStart(cfg.FindNonterminal("r0"));
  return cfg;
}

}  // namespace deepbase
